"""Base class for framework-aware component-language services.

A framework-aware service speaks the ``log:`` protocol natively
(Sec. 4.4: "for framework-aware services, the incoming requests can just
be forwarded").  Subclasses override the hooks for the request kinds
their language family supports; anything else is answered with
``log:error`` — errors travel as messages, never as exceptions across
the service boundary.
"""

from __future__ import annotations

import time

from ..bindings import Relation, relation_to_answers
from ..grh.messages import (MessageError, Request, error_message, is_error,
                            ok_message, xml_to_request)
from ..obs.trace import (current_span_sink, next_annotation_id,
                         parse_traceparent, spans_to_xml,
                         traceparent_sampled)
from ..xmlmodel import Element

__all__ = ["LanguageService", "ServiceError"]


class ServiceError(RuntimeError):
    """Raised by service hooks to report a clean protocol error."""


class LanguageService:
    """Dispatches ``log:request`` messages to per-kind hooks.

    Action requests carrying a ``dedup`` idempotency key are executed at
    most once per key: a repeated key answers ``log:ok`` without calling
    the :meth:`action` hook again.  A durable engine stamps these keys
    so that crash-replay cannot double-execute an effect even when the
    journal cannot tell whether the original dispatch completed
    (PROTOCOL.md §7).  The memory is a bounded FIFO of recent keys.
    """

    #: human-readable name used in error messages
    service_name = "service"
    #: how many completed action idempotency keys to remember
    dedup_memory = 10_000

    def _action_key_seen(self, key: str) -> bool:
        seen = getattr(self, "_completed_actions", None)
        return seen is not None and key in seen

    def _action_key_done(self, key: str) -> None:
        seen = getattr(self, "_completed_actions", None)
        if seen is None:
            # lazily created: subclasses are not required to call
            # super().__init__()
            from collections import OrderedDict
            seen = self._completed_actions = OrderedDict()
        seen[key] = True
        while len(seen) > self.dedup_memory:
            seen.popitem(last=False)

    def handle(self, message: Element) -> Element:
        try:
            request = xml_to_request(message)
        except MessageError as exc:
            return error_message(f"{self.service_name}: {exc}")
        sink = current_span_sink()
        if sink is not None:
            # co-located traced caller (same thread): time the dispatch
            # and hand a minimal record straight to the dispatching GRH,
            # which anchors it under its own request span — no envelope
            # work, no ids, no markup
            started = time.perf_counter()
            response = self._dispatch(request)
            sink.append(("service:" + request.kind, self.service_name,
                         "error" if is_error(response) else "ok",
                         time.perf_counter() - started))
            return response
        # an unsampled caller (traceparent flags ``-00``, PROTOCOL.md §9)
        # is treated like an untraced one: nobody will keep the trace, so
        # capturing and shipping a server-side span would be pure waste
        context = parse_traceparent(request.traceparent) \
            if request.traceparent is not None \
            and traceparent_sampled(request.traceparent) else None
        if context is None:
            return self._dispatch(request)
        # a remote tracing caller: time the dispatch and annotate the
        # response with this service's server-side span, parented under
        # the GRH request span named by the traceparent — the caller's
        # tracer adopts it, stitching the round-trip into one trace
        # (PROTOCOL.md §8)
        started = time.perf_counter()
        response = self._dispatch(request)
        response.append(spans_to_xml([{
            "trace": context[0], "id": next_annotation_id(),
            "parent": context[1], "name": "service:" + request.kind,
            "status": "error" if is_error(response) else "ok",
            "duration": time.perf_counter() - started,
            "attributes": {"service": self.service_name}}]))
        return response

    def _dispatch(self, request: Request) -> Element:
        try:
            if request.kind == "register-event":
                self.register_event(request)
                return ok_message()
            if request.kind == "unregister-event":
                self.unregister_event(request)
                return ok_message()
            if request.kind == "query":
                result = self.query(request)
                # functional services build the log:answers element
                # themselves (log:result per answer, Fig. 8); LP-style
                # services return a plain relation
                if isinstance(result, Element):
                    return result
                return relation_to_answers(result)
            if request.kind == "test":
                return relation_to_answers(self.test(request))
            if request.kind == "action":
                if request.dedup is not None and \
                        self._action_key_seen(request.dedup):
                    return ok_message()
                self.action(request)
                if request.dedup is not None:
                    self._action_key_done(request.dedup)
                return ok_message()
            return error_message(
                f"{self.service_name}: unsupported request kind "
                f"{request.kind!r}")
        except Exception as exc:
            return error_message(f"{self.service_name}: {exc}")

    # -- hooks (override per language family) --------------------------------

    def register_event(self, request: Request) -> None:
        raise ServiceError("this service does not detect events")

    def unregister_event(self, request: Request) -> None:
        raise ServiceError("this service does not detect events")

    def query(self, request: Request) -> "Relation | Element":
        raise ServiceError("this service does not answer queries")

    def test(self, request: Request) -> Relation:
        raise ServiceError("this service does not evaluate tests")

    def action(self, request: Request) -> None:
        raise ServiceError("this service does not execute actions")

    @staticmethod
    def component_text(request: Request) -> str:
        """The textual body of the component (markup text or opaque)."""
        if request.content is None:
            raise ServiceError("request carries no component")
        return request.content.text()
