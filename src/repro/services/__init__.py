"""Component-language services and transports (Fig. 3's right-hand side)."""

from .action_service import ActionExecutionService
from .base import LanguageService, ServiceError
from .defaults import Deployment, standard_deployment
from .event_service import (AtomicEventService, EventDetectionService,
                            SnoopService, XChangeService)
from .query_services import (DATALOG_LANG, DatalogService, EXIST_LANG,
                             ExistLikeService, SPARQL_LANG, SparqlService,
                             XQ_LANG, XQService)
from .test_service import TestLanguageService
from .transports import (HttpServiceServer, HttpTransport, HybridTransport,
                         InProcessTransport, PooledHttpTransport,
                         ServiceStatusError, TransportError)

__all__ = [
    "LanguageService", "ServiceError",
    "EventDetectionService", "AtomicEventService", "SnoopService",
    "XChangeService",
    "XQService", "ExistLikeService", "SparqlService", "DatalogService",
    "XQ_LANG", "EXIST_LANG", "SPARQL_LANG", "DATALOG_LANG",
    "TestLanguageService", "ActionExecutionService",
    "InProcessTransport", "HttpTransport", "HybridTransport",
    "PooledHttpTransport",
    "HttpServiceServer",
    "TransportError", "ServiceStatusError",
    "Deployment", "standard_deployment",
]
