"""Query-component services: XQ-lite, eXist-like, SPARQL, Datalog.

Four services demonstrating the paper's two query-language styles
(Sec. 3) and both integration modes (Sec. 4.4):

* :class:`XQService` — *functional-style*, **framework-aware**: the
  wrapped Saxon node of Fig. 8.  Evaluates the query once per input
  tuple (external variables = the tuple) and returns one ``log:result``
  per item of the result sequence.
* :class:`ExistLikeService` — *functional-style*, **framework-UNaware**:
  the eXist node of Fig. 9.  Plain query string in, raw serialized
  results out; all adaptation happens in the GRH.
* :class:`SparqlService` — *LP-style* over an RDF graph: returns a
  relation of variable bindings which the engine joins.
* :class:`DatalogService` — *LP-style* over a Datalog program: goal in,
  relation of substitutions out.
"""

from __future__ import annotations

from ..bindings import Binding, Relation, Uri, binding_to_answer
from ..datalog import DatalogEngine, DatalogError
from ..grh.messages import Request
from ..rdf import Graph, Literal, URIRef
from ..rdf import select as sparql_select
from ..xmlmodel import Element, LOG_NS, QName
from ..xq import XQEvaluationError, XQSyntaxError, evaluate_query
from .base import LanguageService, ServiceError

__all__ = ["XQService", "ExistLikeService", "SparqlService",
           "DatalogService", "XQ_LANG", "EXIST_LANG", "SPARQL_LANG",
           "DATALOG_LANG"]

#: Language URIs (the resources of Fig. 1's language model).
XQ_LANG = "http://www.semwebtech.org/languages/2006/xquery-lite"
EXIST_LANG = "http://www.semwebtech.org/languages/2006/exist-like"
SPARQL_LANG = "http://www.semwebtech.org/languages/2006/sparql-lite"
DATALOG_LANG = "http://www.semwebtech.org/languages/2006/datalog"


_PLACEHOLDER_RE = __import__("re").compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


def _substitute(text: str, binding: Binding) -> str:
    """Replace ``{Var}`` placeholders with the tuple's values.

    Framework-aware LP-style services receive the input bindings in the
    request (Sec. 4.4); placeholders let a query mention them inline the
    same way opaque components do.
    """
    from ..bindings import value_to_text

    def replace(match):
        name = match.group(1)
        if name not in binding:
            raise ServiceError(f"unbound input variable {name!r}")
        return value_to_text(binding[name])

    return _PLACEHOLDER_RE.sub(replace, text)


def _per_tuple_lp_evaluation(source: str, bindings: Relation,
                             evaluate_once) -> Relation:
    """Evaluate an LP-style query, per input tuple when it uses
    placeholders, once otherwise; merge solutions with their input tuple."""
    if not _PLACEHOLDER_RE.search(source):
        return evaluate_once(source)
    out = []
    for binding in bindings:
        for solution in evaluate_once(_substitute(source, binding)):
            if binding.compatible(solution):
                out.append(binding.merged(solution))
    return Relation(out)


def _xq_variables(binding: Binding) -> dict:
    """Convert a binding tuple to XQ-lite external variables."""
    variables = {}
    for name, value in binding.items():
        if isinstance(value, Element):
            variables[name] = [value]
        elif isinstance(value, Uri):
            variables[name] = str(value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            variables[name] = float(value)
        else:
            variables[name] = value
    return variables


class XQService(LanguageService):
    """Framework-aware XQ-lite processor over named documents."""

    service_name = "xq-lite"

    def __init__(self, documents: dict[str, Element] | None = None) -> None:
        self.documents = dict(documents or {})

    def add_document(self, name: str, root: Element) -> None:
        self.documents[name] = root

    def query(self, request: Request) -> Element:
        source = self.component_text(request)
        answers = Element(QName(LOG_NS, "answers"), nsdecls={"log": LOG_NS})
        for binding in request.bindings:
            try:
                sequence = evaluate_query(source,
                                          variables=_xq_variables(binding),
                                          documents=self.documents)
            except (XQSyntaxError, XQEvaluationError) as exc:
                raise ServiceError(str(exc)) from exc
            results = [item if isinstance(item, Element)
                       else _atomize(item) for item in sequence]
            answers.append(binding_to_answer(binding, results=results))
        return answers


def _atomize(item) -> object:
    if isinstance(item, float) and item.is_integer():
        return int(item)
    if hasattr(item, "owner"):      # attribute node
        return item.value
    if hasattr(item, "value") and not isinstance(item, (str, int, float,
                                                        bool)):
        return item.value           # text node
    return item


class ExistLikeService:
    """Framework-UNaware XML query node, reached like Fig. 9's eXist.

    Not a :class:`LanguageService`: it has no notion of the ``log:``
    protocol.  ``execute`` takes a plain (already variable-substituted)
    query string and returns the serialized result sequence.
    """

    def __init__(self, documents: dict[str, Element] | None = None) -> None:
        self.documents = dict(documents or {})
        self.request_log: list[str] = []

    def add_document(self, name: str, root: Element) -> None:
        self.documents[name] = root

    def execute(self, query: str) -> str:
        from ..xmlmodel import serialize
        self.request_log.append(query)
        sequence = evaluate_query(query, documents=self.documents)
        parts = []
        for item in sequence:
            if isinstance(item, Element):
                parts.append(serialize(item))
            else:
                parts.append(str(_atomize(item)))
        return "\n".join(parts)


class SparqlService(LanguageService):
    """LP-style query service over an RDF graph."""

    service_name = "sparql-lite"

    def __init__(self, graph: Graph | None = None,
                 prefixes: dict[str, str] | None = None) -> None:
        self.graph = graph if graph is not None else Graph()
        self.prefixes = dict(prefixes or {})

    def query(self, request: Request) -> Relation:
        source = self.component_text(request)
        prologue = "".join(f"PREFIX {prefix}: <{uri}>\n"
                           for prefix, uri in self.prefixes.items())

        def evaluate_once(query_text: str) -> Relation:
            try:
                solutions = sparql_select(self.graph, prologue + query_text)
            except Exception as exc:
                raise ServiceError(str(exc)) from exc
            tuples = []
            for solution in solutions:
                data = {}
                for name, term in solution.items():
                    if term is None:
                        continue
                    if isinstance(term, URIRef):
                        data[name] = Uri(str(term))
                    elif isinstance(term, Literal):
                        data[name] = term.to_python()
                    else:
                        data[name] = str(term)
                tuples.append(data)
            return Relation(tuples)

        return _per_tuple_lp_evaluation(source, request.bindings,
                                        evaluate_once)


class DatalogService(LanguageService):
    """LP-style query service over a Datalog program."""

    service_name = "datalog"

    def __init__(self, program: str = "") -> None:
        self._source = program
        self._engine: DatalogEngine | None = None

    def load(self, program: str) -> None:
        """Replace the program (facts + rules) served by this node."""
        self._source = program
        self._engine = None

    def add_facts(self, facts: str) -> None:
        self._source += "\n" + facts
        self._engine = None

    def query(self, request: Request) -> Relation:
        if self._engine is None:
            self._engine = DatalogEngine(self._source)
        goal = self.component_text(request).strip()

        def evaluate_once(goal_text: str) -> Relation:
            try:
                return Relation(self._engine.query(goal_text))
            except DatalogError as exc:
                raise ServiceError(str(exc)) from exc

        return _per_tuple_lp_evaluation(goal, request.bindings,
                                        evaluate_once)
