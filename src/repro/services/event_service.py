"""Event-detection services (Figs. 5/6).

One service per event language: the Atomic Event Matcher, a SNOOP
detection service ([Spa06]-style) and an XChange-style service.  All
three share the same machinery: they keep one detector per registered
component id, subscribe to an event stream, and signal each detection to
the GRH as a ``log:detection`` message carrying the component id, the
occurrence interval and the variable bindings.

Since PROTOCOL.md §13 the shared machinery routes events through a
Rete-style :class:`~repro.match.DiscriminationNetwork`: each incoming
event is offered only to the detectors one of whose leaf patterns can
match it (plus the non-indexable fallback bucket), so per-event cost
tracks the *affected* components rather than the registered population.
The delivered detection sequence — ordering, intervals, bindings,
constituents and detection ids — is byte-for-byte what the preserved
linear path (``use_network=False``) produces.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable

from ..events import (Detector, Event, EventStream, parse_atomic,
                      parse_snoop, parse_xchange)
from ..events.snoop import Atomic
from ..grh.messages import Request, detection_to_xml, Detection
from ..match import DiscriminationNetwork, install_match_metrics
from ..xmlmodel import Element
from .base import LanguageService, ServiceError

__all__ = ["EventDetectionService", "AtomicEventService", "SnoopService",
           "XChangeService"]


#: distinguishes service objects within one process; combined with the
#: process boot time below it makes detection-id namespaces unique
#: across both fresh deployments and process restarts
_incarnations = itertools.count(1)
_BOOT = f"{time.time_ns():x}"


class EventDetectionService(LanguageService):
    """Shared base of the three event-language services.

    ``use_network=False`` keeps the seed's linear scan — every event
    offered to every detector — as the differential/bench baseline.
    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) installs
    the §13 match instruments; without it routing is uninstrumented.

    Registration churn and stream delivery are serialized under one
    re-entrant lock, so ``register_event``/``unregister_event`` racing a
    ``feed``/``poll`` can neither miss nor double-deliver a component:
    a registration either happens-before an event (and is offered it)
    or after (and is not) — never half-indexed.
    """

    service_name = "event-detection"

    def __init__(self, notify: Callable[[Element], None], *,
                 incarnation: str | None = None,
                 use_network: bool = True,
                 metrics=None) -> None:
        self._notify = notify
        self._detectors: dict[str, Detector] = {}
        self._lock = threading.RLock()
        self._network = (DiscriminationNetwork(self.service_name)
                         if use_network else None)
        self._instruments = (install_match_metrics(metrics)
                             if metrics is not None else None)
        #: per-service monotonic detection sequence; stamped on every
        #: log:detection as ``detection-id`` so a durable engine can
        #: deduplicate at-least-once redelivery (PROTOCOL.md §7).
        #: Ids are namespaced by an *incarnation* nonce: a recovered
        #: engine remembers completed ids, so a restarted service that
        #: restarted its sequence would otherwise collide with them and
        #: have its fresh detections dropped as redelivery.  A service
        #: that really does survive an engine crash (the paper's
        #: autonomous-service model) keeps its object and therefore its
        #: namespace; pass ``incarnation=""`` for bare deterministic ids
        #: when a test controls the service lifetime itself.
        if incarnation is None:
            incarnation = f"{_BOOT}.{next(_incarnations)}"
        self._id_prefix = (f"{self.service_name}:{incarnation}:"
                           if incarnation else f"{self.service_name}:")
        self._detection_seq = itertools.count(1)

    def _next_detection_id(self) -> str:
        return self._id_prefix + str(next(self._detection_seq))

    # -- language-specific parsing -------------------------------------------

    def build_detector(self, content: Element) -> Detector:
        raise NotImplementedError

    # -- protocol hooks ----------------------------------------------------------

    def register_event(self, request: Request) -> None:
        if request.content is None:
            raise ServiceError("event registration carries no pattern")
        detector = self.build_detector(request.content)
        with self._lock:
            if request.component_id in self._detectors:
                raise ServiceError(
                    f"component {request.component_id!r} already registered")
            self._detectors[request.component_id] = detector
            if self._network is not None:
                self._network.insert(request.component_id, detector)

    def unregister_event(self, request: Request) -> None:
        with self._lock:
            self._detectors.pop(request.component_id, None)
            if self._network is not None:
                self._network.remove(request.component_id)

    # -- stream side ----------------------------------------------------------------

    def attach(self, stream: EventStream) -> None:
        stream.subscribe(self.feed)

    def feed(self, event: Event) -> None:
        """Process one event; signal every detection to the GRH.

        The detection message carries the matched event sequence along
        with the bindings (Fig. 6 (1) of the paper).  With the
        discrimination network the event is offered only to affected
        detectors; a component whose whole pattern is one indexed leaf
        reuses the network's shared alpha memory instead of re-matching.
        """
        with self._lock:
            if self._network is None:
                candidates = [(component_id, detector, None)
                              for component_id, detector
                              in self._detectors.items()]
            else:
                candidates = self._network.route(event)
            if self._instruments is not None:
                self._instruments.observe(self.service_name,
                                          len(candidates))
            for component_id, detector, shared in candidates:
                occurrences = (shared if shared is not None
                               else detector.feed(event))
                for occurrence in occurrences:
                    self._notify(detection_to_xml(Detection(
                        component_id, occurrence.start, occurrence.end,
                        occurrence.bindings,
                        tuple(constituent.payload
                              for constituent in occurrence.constituents),
                        detection_id=self._next_detection_id())))

    def poll(self, now: float) -> None:
        """Drive time-based operators (snoop:periodic).

        Only time-driven (and fallback) detectors are polled through the
        network — every other built-in operator's ``poll`` provably
        yields nothing.  Like ``feed``, the emitted detection carries
        the matched constituent events alongside the bindings.
        """
        with self._lock:
            if self._network is None:
                pollable = list(self._detectors.items())
            else:
                pollable = self._network.pollable()
            for component_id, detector in pollable:
                for occurrence in detector.poll(now):
                    self._notify(detection_to_xml(Detection(
                        component_id, occurrence.start, occurrence.end,
                        occurrence.bindings,
                        tuple(constituent.payload
                              for constituent in occurrence.constituents),
                        detection_id=self._next_detection_id())))

    @property
    def registered_ids(self) -> list[str]:
        with self._lock:
            return list(self._detectors)

    @property
    def network(self) -> DiscriminationNetwork | None:
        """The discrimination network, or None on the linear path."""
        return self._network


class AtomicEventService(EventDetectionService):
    """The Atomic Event Matcher of Fig. 5: bare domain patterns."""

    service_name = "atomic-event-matcher"

    def build_detector(self, content: Element) -> Detector:
        return Atomic(parse_atomic(content))


class SnoopService(EventDetectionService):
    """Composite event detection following SNOOP [CKAK94]/[Spa06]."""

    service_name = "snoop-detector"

    def build_detector(self, content: Element) -> Detector:
        return parse_snoop(content)


class XChangeService(EventDetectionService):
    """Composite event detection in the style of XChange [BP05]."""

    service_name = "xchange-detector"

    def build_detector(self, content: Element) -> Detector:
        return parse_xchange(content)
