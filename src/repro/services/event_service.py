"""Event-detection services (Figs. 5/6).

One service per event language: the Atomic Event Matcher, a SNOOP
detection service ([Spa06]-style) and an XChange-style service.  All
three share the same machinery: they keep one detector per registered
component id, subscribe to an event stream, and signal each detection to
the GRH as a ``log:detection`` message carrying the component id, the
occurrence interval and the variable bindings.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable

from ..events import (Detector, Event, EventStream, parse_atomic,
                      parse_snoop, parse_xchange)
from ..events.snoop import Atomic
from ..grh.messages import Request, detection_to_xml, Detection
from ..xmlmodel import Element
from .base import LanguageService, ServiceError

__all__ = ["EventDetectionService", "AtomicEventService", "SnoopService",
           "XChangeService"]


#: distinguishes service objects within one process; combined with the
#: process boot time below it makes detection-id namespaces unique
#: across both fresh deployments and process restarts
_incarnations = itertools.count(1)
_BOOT = f"{time.time_ns():x}"


class EventDetectionService(LanguageService):
    """Shared base of the three event-language services."""

    service_name = "event-detection"

    def __init__(self, notify: Callable[[Element], None], *,
                 incarnation: str | None = None) -> None:
        self._notify = notify
        self._detectors: dict[str, Detector] = {}
        #: per-service monotonic detection sequence; stamped on every
        #: log:detection as ``detection-id`` so a durable engine can
        #: deduplicate at-least-once redelivery (PROTOCOL.md §7).
        #: Ids are namespaced by an *incarnation* nonce: a recovered
        #: engine remembers completed ids, so a restarted service that
        #: restarted its sequence would otherwise collide with them and
        #: have its fresh detections dropped as redelivery.  A service
        #: that really does survive an engine crash (the paper's
        #: autonomous-service model) keeps its object and therefore its
        #: namespace; pass ``incarnation=""`` for bare deterministic ids
        #: when a test controls the service lifetime itself.
        if incarnation is None:
            incarnation = f"{_BOOT}.{next(_incarnations)}"
        self._id_prefix = (f"{self.service_name}:{incarnation}:"
                           if incarnation else f"{self.service_name}:")
        self._detection_seq = itertools.count(1)

    def _next_detection_id(self) -> str:
        return self._id_prefix + str(next(self._detection_seq))

    # -- language-specific parsing -------------------------------------------

    def build_detector(self, content: Element) -> Detector:
        raise NotImplementedError

    # -- protocol hooks ----------------------------------------------------------

    def register_event(self, request: Request) -> None:
        if request.content is None:
            raise ServiceError("event registration carries no pattern")
        if request.component_id in self._detectors:
            raise ServiceError(
                f"component {request.component_id!r} already registered")
        self._detectors[request.component_id] = self.build_detector(
            request.content)

    def unregister_event(self, request: Request) -> None:
        self._detectors.pop(request.component_id, None)

    # -- stream side ----------------------------------------------------------------

    def attach(self, stream: EventStream) -> None:
        stream.subscribe(self.feed)

    def feed(self, event: Event) -> None:
        """Process one event; signal every detection to the GRH.

        The detection message carries the matched event sequence along
        with the bindings (Fig. 6 (1) of the paper).
        """
        for component_id, detector in list(self._detectors.items()):
            for occurrence in detector.feed(event):
                self._notify(detection_to_xml(Detection(
                    component_id, occurrence.start, occurrence.end,
                    occurrence.bindings,
                    tuple(constituent.payload
                          for constituent in occurrence.constituents),
                    detection_id=self._next_detection_id())))

    def poll(self, now: float) -> None:
        """Drive time-based operators (snoop:periodic)."""
        for component_id, detector in list(self._detectors.items()):
            for occurrence in detector.poll(now):
                self._notify(detection_to_xml(Detection(
                    component_id, occurrence.start, occurrence.end,
                    occurrence.bindings,
                    detection_id=self._next_detection_id())))

    @property
    def registered_ids(self) -> list[str]:
        return list(self._detectors)


class AtomicEventService(EventDetectionService):
    """The Atomic Event Matcher of Fig. 5: bare domain patterns."""

    service_name = "atomic-event-matcher"

    def build_detector(self, content: Element) -> Detector:
        return Atomic(parse_atomic(content))


class SnoopService(EventDetectionService):
    """Composite event detection following SNOOP [CKAK94]/[Spa06]."""

    service_name = "snoop-detector"

    def build_detector(self, content: Element) -> Detector:
        return parse_snoop(content)


class XChangeService(EventDetectionService):
    """Composite event detection in the style of XChange [BP05]."""

    service_name = "xchange-detector"

    def build_detector(self, content: Element) -> Detector:
        return parse_xchange(content)
