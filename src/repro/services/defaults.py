"""A standard deployment: every built-in service wired behind one GRH.

This is the "variety of such engines, including sample domain services"
the paper's conclusion mentions, assembled in one call: three event
languages, five query languages (two functional — one aware, one unaware
— and three LP-style, including the planned/indexed SPARQL backend),
the test language and the action language, all reachable only through
the Generic Request Handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..actions import ACTION_NS, ActionRuntime
from ..conditions import TEST_NS
from ..events import ATOMIC_NS, EventStream, SNOOP_NS, XCHANGE_NS
from ..grh import (GenericRequestHandler, LanguageDescriptor,
                   LanguageRegistry, ResilienceManager)
from ..rdf import Graph
from ..sparql import RDF_SPARQL_LANG, SparqlQueryService, TripleStore
from ..xmlmodel import Element
from .action_service import ActionExecutionService
from .event_service import (AtomicEventService, SnoopService, XChangeService)
from .query_services import (DATALOG_LANG, DatalogService, EXIST_LANG,
                             ExistLikeService, SPARQL_LANG, SparqlService,
                             XQ_LANG, XQService)
from .test_service import TestLanguageService
from .transports import InProcessTransport

__all__ = ["Deployment", "standard_deployment"]


@dataclass
class Deployment:
    """All moving parts of a wired framework instance."""

    registry: LanguageRegistry
    transport: InProcessTransport
    grh: GenericRequestHandler
    stream: EventStream
    runtime: ActionRuntime
    atomic_events: AtomicEventService
    snoop: SnoopService
    xchange: XChangeService
    xq: XQService
    exist: ExistLikeService
    sparql: SparqlService
    rdf_sparql: SparqlQueryService
    datalog: DatalogService
    tests: TestLanguageService
    actions: ActionExecutionService

    def add_document(self, name: str, root: Element) -> None:
        """Publish an XML document to both XML query services and the
        action runtime (one shared mutable world)."""
        self.xq.add_document(name, root)
        self.exist.add_document(name, root)
        self.runtime.register_document(name, root)

    def tick(self, delta: float = 1.0) -> None:
        """Advance the stream clock and drive time-based event operators
        (``snoop:periodic``) without emitting a domain event."""
        self.stream.advance(delta)
        now = self.stream.now
        self.snoop.poll(now)
        self.xchange.poll(now)
        self.atomic_events.poll(now)


def standard_deployment(serialize_messages: bool = True,
                        graph: Graph | None = None,
                        datalog_program: str = "",
                        resilience: ResilienceManager | None = None
                        ) -> Deployment:
    """Wire the full service landscape over an in-process transport.

    ``serialize_messages=True`` (default) round-trips every message
    through markup, making the in-process broker byte-equivalent to the
    HTTP transport.  ``resilience`` configures retry policies, circuit
    breakers and the dead letter queue of the GRH.
    """
    registry = LanguageRegistry()
    transport = InProcessTransport(serialize_messages=serialize_messages)
    grh = GenericRequestHandler(registry, transport, resilience=resilience)
    stream = EventStream()
    runtime = ActionRuntime(event_stream=stream)

    atomic_events = AtomicEventService(grh.notify)
    snoop = SnoopService(grh.notify)
    xchange = XChangeService(grh.notify)
    for service in (atomic_events, snoop, xchange):
        service.attach(stream)

    xq = XQService()
    exist = ExistLikeService()
    # one shared RDF world: the naive sparql-lite service, the planned
    # rdf-sparql service and the action runtime all mutate/query the
    # same object — a plain Graph is upgraded in place (identity
    # preserved, so caller-held references stay live); a TripleStore
    # passes through; an exotic Graph subclass is copied as a last
    # resort (its mutations would then not reach the SPARQL services)
    if graph is None:
        store = TripleStore()
    elif isinstance(graph, TripleStore):
        store = graph
    elif type(graph) is Graph:
        store = TripleStore.adopt(graph)
    else:
        store = TripleStore.from_graph(graph)
    sparql = SparqlService(store)
    rdf_sparql = SparqlQueryService(store)
    datalog = DatalogService(datalog_program)
    tests = TestLanguageService()
    actions = ActionExecutionService(runtime)

    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event",
                                       "atomic-events"), atomic_events)
    grh.add_service(LanguageDescriptor(SNOOP_NS, "event", "snoop"), snoop)
    grh.add_service(LanguageDescriptor(XCHANGE_NS, "event", "xchange"),
                    xchange)
    grh.add_service(LanguageDescriptor(XQ_LANG, "query", "xquery-lite"), xq)
    grh.add_service(LanguageDescriptor(EXIST_LANG, "query", "exist-like",
                                       framework_aware=False), exist)
    grh.add_service(LanguageDescriptor(SPARQL_LANG, "query", "sparql-lite"),
                    sparql)
    grh.add_service(LanguageDescriptor(RDF_SPARQL_LANG, "query",
                                       "rdf-sparql"), rdf_sparql)
    grh.add_service(LanguageDescriptor(DATALOG_LANG, "query", "datalog"),
                    datalog)
    grh.add_service(LanguageDescriptor(TEST_NS, "test", "test"), tests)
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    actions)

    return Deployment(registry, transport, grh, stream, runtime,
                      atomic_events, snoop, xchange, xq, exist, sparql,
                      rdf_sparql, datalog, tests, actions)
