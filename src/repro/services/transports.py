"""Transports: how the GRH reaches component-language services.

Two interchangeable implementations of the same contract (Fig. 3's arrows
between the GRH and the services):

* :class:`InProcessTransport` — services run in the same process; by
  default every message is still serialized to markup and re-parsed, so
  the bytes a service sees are identical to the HTTP case (the paper's
  services are autonomous remote processors; we keep that property
  observable).
* :class:`HttpTransport` — services run behind real HTTP endpoints on
  localhost (stdlib ``http.server``), POSTing ``log:`` messages; plain
  GET with a ``query`` parameter reaches framework-UNaware services the
  way the paper's eXist node is reached (Fig. 9).
* :class:`PooledHttpTransport` — the same wire protocol over per-origin
  keep-alive connection pools (bounded size, idle reaping, broken-
  connection retirement and one transparent reconnect on a stale
  socket).  This is the production HTTP path: per-request TCP setup is
  the dominant cost of the sync transport under load (PROTOCOL.md §11).

Failure taxonomy (PROTOCOL.md §11): a *connection-level* failure — the
endpoint could not be reached, or the socket died before a response —
raises plain :class:`TransportError` (transient, retryable,
breaker-counted by the GRH).  An HTTP *error status* means a live
service answered and refused: it raises :class:`ServiceStatusError`
(``service_reported``), which the GRH maps onto its non-retryable
``ServiceReportedError`` path.  Gateway statuses (502/503/504) are the
exception — they signal infrastructure trouble in front of the
service and stay transient.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from ..grh.messages import (batch_results_to_xml, error_message, error_text,
                            is_batch, is_error, xml_to_batch)
from ..obs.attribution import record_wait
from ..xmlmodel import Element, parse, serialize

__all__ = ["TransportError", "ServiceStatusError", "InProcessTransport",
           "HttpServiceServer", "HttpTransport", "PooledHttpTransport",
           "HybridTransport", "AwareHandler", "OpaqueHandler",
           "handle_batch"]

#: A framework-aware service endpoint: XML message in, XML message out.
AwareHandler = Callable[[Element], Element]

#: A framework-unaware service endpoint: query string in, raw text out.
OpaqueHandler = Callable[[str], str]


class TransportError(RuntimeError):
    """Raised when an endpoint is unknown or unreachable."""


class ServiceStatusError(TransportError):
    """A live service answered an HTTP error status.

    Unlike a connection-level :class:`TransportError`, the HTTP
    conversation itself succeeded — the failure is the *service's own
    report*, deterministic for the request that provoked it.  The GRH
    reads ``service_reported`` and routes it onto the
    ``ServiceReportedError`` path: not retried unless the policy opts
    in via ``retry_on_service_errors``, and never counted against the
    endpoint's circuit breaker (PROTOCOL.md §6/§11).
    """

    #: duck-typed marker the GRH checks (no import cycle with repro.grh)
    service_reported = True

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


#: HTTP statuses that signal trouble *in front of* the service (load
#: balancer, gateway, overload shedding) rather than a service verdict
#: on the request — kept transient/retryable like connection failures.
_TRANSIENT_HTTP_STATUSES = frozenset({502, 503, 504})


def _raise_for_status(address: str, status: int, reason: str,
                      body: str) -> None:
    """Classify a non-2xx HTTP response (PROTOCOL.md §11).

    A ``log:error`` body carries the service's own message and is
    surfaced verbatim; gateway statuses stay transient
    (:class:`TransportError`); everything else is a deterministic
    service report (:class:`ServiceStatusError`).
    """
    if status in _TRANSIENT_HTTP_STATUSES:
        raise TransportError(
            f"cannot reach {address!r}: HTTP {status} {reason}")
    message = f"HTTP {status} {reason} from {address!r}"
    text = body.strip()
    if text.startswith("<"):
        try:
            element = parse(text)
        except Exception:
            element = None
        if element is not None and is_error(element):
            message = error_text(element)
    raise ServiceStatusError(status, message)


def handle_batch(handler: AwareHandler, envelope: Element) -> Element:
    """Apply *handler* to each request of a ``log:batch`` envelope.

    The service-side half of PROTOCOL.md §10: requests are handled in
    order, a per-request exception becomes that request's ``log:error``
    result (the rest of the batch still runs), and the responses ride
    back positionally in one ``log:batchresults``.  Any existing aware
    handler becomes batch-capable through this shim — services need no
    batching code of their own.
    """
    results = []
    for request in xml_to_batch(envelope):
        try:
            results.append(handler(request))
        except Exception as exc:
            results.append(error_message(str(exc)))
    return batch_results_to_xml(results)


class InProcessTransport:
    """Directly invokes handlers registered under string addresses."""

    def dispatches_inline(self, address: str) -> bool:
        """Handlers run synchronously on the caller's thread, so they
        see the caller's thread-local state (e.g. the GRH's span sink) —
        trace context need not ride the envelope (PROTOCOL.md §8)."""
        return True

    def __init__(self, serialize_messages: bool = True) -> None:
        self.serialize_messages = serialize_messages
        self._aware: dict[str, AwareHandler] = {}
        self._opaque: dict[str, OpaqueHandler] = {}

    def bind(self, address: str, handler: AwareHandler) -> str:
        self._aware[address] = handler
        return address

    def bind_opaque(self, address: str, handler: OpaqueHandler) -> str:
        self._opaque[address] = handler
        return address

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        # in-process calls cannot be interrupted; ``timeout`` is accepted
        # for contract compatibility with the HTTP transport
        if address not in self._aware:
            raise TransportError(f"no service bound at {address!r}")
        handler = self._aware[address]
        if not self.serialize_messages:
            return handler(message)
        wire_out = serialize(message)
        response = handler(parse(wire_out))
        return parse(serialize(response))

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        if address not in self._opaque:
            raise TransportError(f"no opaque service bound at {address!r}")
        return self._opaque[address](query)

    def supports_batch(self, address: str) -> bool:
        """Batching works against any aware handler via the shim."""
        return address in self._aware

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        """Dispatch a ``log:batch``; same wire-fidelity rules as send."""
        if address not in self._aware:
            raise TransportError(f"no service bound at {address!r}")
        handler = self._aware[address]
        if not self.serialize_messages:
            return handle_batch(handler, envelope)
        incoming = parse(serialize(envelope))
        return parse(serialize(handle_batch(handler, incoming)))


class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Serves one service: POST = aware protocol, GET ?query= = opaque.

    When the server was built with a metrics registry, ``GET /metrics``
    answers its Prometheus text exposition (scrape endpoint).  When it
    was built with an introspection surface
    (:class:`repro.obs.ops.IntrospectionSurface`), the health and
    ``/introspect/*`` routes answer JSON snapshots (PROTOCOL.md §9).
    """

    aware_handler: AwareHandler | None = None
    opaque_handler: OpaqueHandler | None = None
    metrics_registry = None
    introspection = None
    #: keep-alive: one TCP connection serves many requests, which is
    #: what :class:`PooledHttpTransport` amortizes (PROTOCOL.md §11)
    protocol_version = "HTTP/1.1"
    #: reap idle keep-alive connections server-side so abandoned
    #: clients do not pin handler threads forever
    timeout = 30.0
    #: without this, Nagle holds the response tail until the client's
    #: delayed ACK (~40 ms) — dwarfing the round-trip it rides on
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # silence stderr
        pass

    def do_POST(self) -> None:
        if self.aware_handler is None:
            self.send_error(405, "service is not framework-aware")
            return
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.send_error(400, "missing Content-Length")
            return
        try:
            length = int(length_header)
            if length < 0:
                raise ValueError(length_header)
        except ValueError:
            self.send_error(400, "invalid Content-Length")
            return
        raw = self.rfile.read(length)
        try:
            body = raw.decode("utf-8")
        except UnicodeDecodeError:
            self.send_error(400, "request body is not valid UTF-8")
            return
        try:
            message = parse(body)
            if is_batch(message):
                # batch envelope: fan out to the same handler per
                # request, per-request failures scoped to their slot
                response = handle_batch(self.aware_handler, message)
            else:
                response = self.aware_handler(message)
            payload = serialize(response).encode("utf-8")
        except ConnectionError:
            # a (simulated or real) crash that takes the connection
            # down with it: abort without answering, so the client
            # sees a socket-level failure — transient by taxonomy
            raise
        except Exception as exc:
            # a service exception is the service's own report, not a
            # transport fault: HTTP 500 with a log:error body, which
            # clients classify as ServiceStatusError/ServiceReported
            self._answer(500, serialize(error_message(str(exc)))
                         .encode("utf-8"))
            return
        self._answer(200, payload)

    def _answer(self, status: int, payload: bytes,
                content_type: str = "application/xml; charset=utf-8") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:
        parsed = urllib.parse.urlparse(self.path)
        introspection = self.introspection
        if introspection is not None and introspection.handles(parsed.path):
            params = {key: values[0] for key, values in
                      urllib.parse.parse_qs(parsed.query).items()}
            try:
                status, payload = introspection.handle(parsed.path, params)
                body = json.dumps(payload,
                                  separators=(",", ":")).encode("utf-8")
            except Exception as exc:
                self.send_error(500, str(exc))
                return
            self.send_response(status)
            self.send_header("Content-Type",
                             "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if parsed.path == "/metrics" and self.metrics_registry is not None:
            try:
                payload = self.metrics_registry.render_prometheus() \
                    .encode("utf-8")
            except Exception as exc:
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        if self.opaque_handler is None:
            self.send_error(405, "service has no opaque interface")
            return
        params = urllib.parse.parse_qs(parsed.query)
        query = params.get("query", [""])[0]
        try:
            payload = self.opaque_handler(query).encode("utf-8")
        except ConnectionError:
            raise  # crash takes the connection down: see do_POST
        except Exception as exc:
            self._answer(500, serialize(error_message(str(exc)))
                         .encode("utf-8"))
            return
        self._answer(200, payload)


class HttpServiceServer:
    """Hosts one service on a localhost HTTP port (own thread)."""

    def __init__(self, aware_handler: AwareHandler | None = None,
                 opaque_handler: OpaqueHandler | None = None,
                 metrics=None, introspection=None, port: int = 0) -> None:
        # ``metrics`` is a MetricsRegistry (or anything with a
        # ``render_prometheus()`` method); when given, the server also
        # answers ``GET /metrics``.  ``introspection`` is an
        # IntrospectionSurface (anything with ``handles(path)`` and
        # ``handle(path, params) -> (status, payload)``); when given,
        # the server also answers the health and /introspect/* routes.
        # ``port`` pins the listen port (0 = ephemeral): a killed
        # replica restarting on its *registered* address needs its old
        # port back (PROTOCOL.md §12; SO_REUSEADDR makes this safe)
        handler_class = type("BoundHandler", (_ServiceHTTPHandler,),
                             {"aware_handler": staticmethod(aware_handler)
                              if aware_handler else None,
                              "opaque_handler": staticmethod(opaque_handler)
                              if opaque_handler else None,
                              "metrics_registry": metrics,
                              "introspection": introspection})
        class _QuietServer(ThreadingHTTPServer):
            #: a pooled client warming its pool opens tens of
            #: connections in one burst; the stock backlog of 5 drops
            #: SYN-ACKs and each dropped one costs a ~1 s retransmit
            request_queue_size = 128

            def handle_error(self, request, client_address):
                # a client that timed out and hung up mid-response is
                # routine (per-request timeouts abandon slow requests);
                # everything else still gets the stock traceback
                import sys
                if isinstance(sys.exception(), ConnectionError):
                    return
                super().handle_error(request, client_address)

        self._server = _QuietServer(("127.0.0.1", port), handler_class)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)
        self._started = False
        self._stopped = False

    def start(self) -> str:
        self._thread.start()
        self._started = True
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/"

    def stop(self) -> None:
        """Stop the server.  Idempotent, and safe before :meth:`start`:
        ``shutdown()`` is only issued when ``serve_forever`` actually
        runs (it would otherwise block forever on its event)."""
        if self._stopped:
            return
        self._stopped = True
        if self._started:
            self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HybridTransport:
    """Routes by address: ``http(s)://`` endpoints over HTTP, everything
    else through an in-process broker.

    This matches real deployments of the framework: some language
    processors run remotely (the paper's autonomous Web Services), others
    are co-located with the engine.
    """

    def __init__(self, serialize_messages: bool = True,
                 timeout: float = 10.0, pooled: bool = True,
                 max_per_endpoint: int = 32,
                 idle_timeout: float = 30.0) -> None:
        #: pooled (the default) rides keep-alive connection pools; pass
        #: ``pooled=False`` for the stateless one-connection-per-request
        #: transport (the pre-§11 behavior)
        self.local = InProcessTransport(serialize_messages)
        self.http = PooledHttpTransport(
            timeout, max_per_endpoint=max_per_endpoint,
            idle_timeout=idle_timeout) if pooled else HttpTransport(timeout)

    def pool_stats(self) -> dict[str, dict]:
        """Per-origin connection counters ({} for the unpooled path)."""
        stats = getattr(self.http, "pool_stats", None)
        return stats() if stats is not None else {}

    def close(self) -> None:
        """Close pooled connections (no-op for the unpooled path)."""
        close = getattr(self.http, "close", None)
        if close is not None:
            close()

    @staticmethod
    def _is_http(address: str) -> bool:
        return address.startswith("http://") or address.startswith("https://")

    def dispatches_inline(self, address: str) -> bool:
        return not self._is_http(address)

    def bind(self, address: str, handler: AwareHandler) -> str:
        return self.local.bind(address, handler)

    def bind_opaque(self, address: str, handler: OpaqueHandler) -> str:
        return self.local.bind_opaque(address, handler)

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        if self._is_http(address):
            return self.http.send(address, message, timeout=timeout)
        return self.local.send(address, message, timeout=timeout)

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        if self._is_http(address):
            return self.http.fetch(address, query, timeout=timeout)
        return self.local.fetch(address, query, timeout=timeout)

    def supports_batch(self, address: str) -> bool:
        if self._is_http(address):
            return self.http.supports_batch(address)
        return self.local.supports_batch(address)

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        if self._is_http(address):
            return self.http.send_batch(address, envelope, timeout=timeout)
        return self.local.send_batch(address, envelope, timeout=timeout)


def _http_error_body(exc: "urllib.error.HTTPError") -> str:
    try:
        return exc.read().decode("utf-8", "replace")
    except Exception:
        return ""


class HttpTransport:
    """Reaches services over HTTP (POST for aware, GET for opaque).

    One fresh connection per request — simple and stateless, but each
    round-trip pays TCP setup; :class:`PooledHttpTransport` is the
    keep-alive path for request rates that matter.
    """

    def __init__(self, timeout: float = 10.0) -> None:
        #: default per-request timeout; a per-request ``timeout`` argument
        #: (e.g. from a language's resilience policy) overrides it
        self.timeout = timeout

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        body = serialize(message).encode("utf-8")
        request = urllib.request.Request(
            address, data=body,
            headers={"Content-Type": "application/xml; charset=utf-8"})
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request,
                                        timeout=effective) as response:
                return parse(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # an error *status* from a live service is not a connection
            # failure: classify before the OSError net (HTTPError is an
            # OSError subclass — the original misclassification bug)
            _raise_for_status(address, exc.code, str(exc.reason),
                              _http_error_body(exc))
        except OSError as exc:
            raise TransportError(f"cannot reach {address!r}: {exc}") from exc

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        url = f"{address}?{urllib.parse.urlencode({'query': query})}"
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(url, timeout=effective) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            _raise_for_status(address, exc.code, str(exc.reason),
                              _http_error_body(exc))
        except OSError as exc:
            raise TransportError(f"cannot reach {address!r}: {exc}") from exc

    def supports_batch(self, address: str) -> bool:
        """The HTTP service handler unwraps ``log:batch`` itself."""
        return True

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        """A batch is one POST; the server-side handler fans out."""
        return self.send(address, envelope, timeout=timeout)


class _PooledConnection:
    """One keep-alive connection plus its bookkeeping."""

    __slots__ = ("conn", "idle_since", "requests")

    def __init__(self, conn: http.client.HTTPConnection) -> None:
        self.conn = conn
        self.idle_since = 0.0
        self.requests = 0

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass


class _EndpointPool:
    """Bounded keep-alive connections for one ``scheme://host:port``.

    * acquire is LIFO — the most recently released (warmest) connection
      is reused first, so the cold end of the idle deque ages out;
    * idle connections past ``idle_timeout`` are reaped at acquire;
    * at capacity, acquire blocks until a connection is released (or
      its wait budget runs out → :class:`TransportError`), so the pool
      bound is also a client-side concurrency bound per endpoint.
    """

    def __init__(self, host: str, port: int, max_size: int,
                 idle_timeout: float) -> None:
        self.host = host
        self.port = port
        self.max_size = max_size
        self.idle_timeout = idle_timeout
        self._idle: deque[_PooledConnection] = deque()
        self._in_use = 0
        self._lock = threading.Lock()
        self._released = threading.Condition(self._lock)
        self._closed = False
        # lifetime counters (PROTOCOL.md §11 observability)
        self.created = 0
        self.reused = 0
        self.retired = 0
        self.reaped = 0

    def _reap_locked(self, now: float) -> None:
        # the deque is LIFO, so the left end holds the longest-idle
        # connections; everything past the idle budget is dead weight
        while self._idle and now - self._idle[0].idle_since \
                > self.idle_timeout:
            self._idle.popleft().close()
            self.reaped += 1

    def acquire(self, wait_timeout: float | None,
                fresh: bool = False) -> tuple[_PooledConnection, bool]:
        """A connection and whether it was reused.  ``fresh`` skips the
        idle stack (the transparent-reconnect path must not pick up
        another possibly-stale socket)."""
        deadline = None if wait_timeout is None \
            else time.monotonic() + wait_timeout
        with self._released:
            while True:
                if self._closed:
                    raise TransportError("connection pool is closed")
                now = time.monotonic()
                self._reap_locked(now)
                if not fresh and self._idle:
                    pooled = self._idle.pop()
                    self._in_use += 1
                    self.reused += 1
                    return pooled, True
                if self._in_use + len(self._idle) < self.max_size:
                    self._in_use += 1
                    self.created += 1
                    break
                if fresh and self._idle:
                    # make room for the fresh socket by closing the
                    # coldest idle one (likely stale for the same
                    # reason the one being replaced was)
                    self._idle.popleft().close()
                    self.retired += 1
                    continue
                remaining = None if deadline is None \
                    else deadline - now
                if remaining is not None and remaining <= 0:
                    raise TransportError(
                        f"connection pool for {self.host}:{self.port} "
                        f"exhausted ({self.max_size} in use)")
                self._released.wait(0.05 if remaining is None
                                    else min(remaining, 0.05))
        conn = http.client.HTTPConnection(self.host, self.port)
        return _PooledConnection(conn), False

    def release(self, pooled: _PooledConnection, reusable: bool) -> None:
        with self._released:
            self._in_use -= 1
            if reusable and not self._closed:
                pooled.idle_since = time.monotonic()
                self._idle.append(pooled)
            else:
                pooled.close()
                self.retired += 1
            self._released.notify()

    def discard(self, pooled: _PooledConnection) -> None:
        """Retire a broken connection (stale socket, protocol error)."""
        self.release(pooled, reusable=False)

    def close(self) -> None:
        with self._released:
            self._closed = True
            while self._idle:
                self._idle.pop().close()
            self._released.notify_all()

    def stats(self) -> dict:
        with self._lock:
            return {"idle": len(self._idle), "in_use": self._in_use,
                    "created": self.created, "reused": self.reused,
                    "retired": self.retired, "reaped": self.reaped}


class PooledHttpTransport:
    """HTTP transport over per-origin keep-alive connection pools.

    Same wire protocol and contract as :class:`HttpTransport`; the
    differences are operational (PROTOCOL.md §11):

    * each origin keeps up to ``max_per_endpoint`` warm connections —
      a request costs one round-trip, not TCP setup plus a round-trip;
    * connections idle past ``idle_timeout`` seconds are reaped;
    * a send on a *reused* connection that dies before any response
      byte is transparently retried once on a fresh connection (the
      server closed the keep-alive socket between requests — routine,
      not a service failure).  Fresh-connection failures and timeouts
      are never retried here; they surface to the §6 resilience layer.
    """

    def __init__(self, timeout: float = 10.0, max_per_endpoint: int = 32,
                 idle_timeout: float = 30.0) -> None:
        if max_per_endpoint < 1:
            raise ValueError("max_per_endpoint must be >= 1")
        self.timeout = timeout
        self.max_per_endpoint = max_per_endpoint
        self.idle_timeout = idle_timeout
        self._pools: dict[tuple[str, int], _EndpointPool] = {}
        self._lock = threading.Lock()

    def dispatches_inline(self, address: str) -> bool:
        return False

    # -- pool management -----------------------------------------------------

    def _pool_for(self, host: str, port: int) -> _EndpointPool:
        key = (host, port)
        pool = self._pools.get(key)
        if pool is None:
            with self._lock:
                pool = self._pools.setdefault(
                    key, _EndpointPool(host, port, self.max_per_endpoint,
                                       self.idle_timeout))
        return pool

    def pool_stats(self) -> dict[str, dict]:
        """Per-origin connection counters (monitoring snapshot)."""
        with self._lock:
            pools = dict(self._pools)
        return {f"{host}:{port}": pool.stats()
                for (host, port), pool in pools.items()}

    def close(self) -> None:
        """Close every pooled connection; the transport stays usable
        (new pools are built on demand)."""
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    # -- the round-trip ------------------------------------------------------

    def _roundtrip(self, address: str, method: str, body: bytes | None,
                   headers: dict, timeout: float | None
                   ) -> tuple[int, str, bytes]:
        parts = urllib.parse.urlsplit(address)
        if parts.scheme not in ("http", "https"):
            raise TransportError(f"unsupported address {address!r}")
        host = parts.hostname or ""
        port = parts.port or (443 if parts.scheme == "https" else 80)
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        effective = self.timeout if timeout is None else timeout
        pool = self._pool_for(host, port)
        fresh = False
        retried = False
        while True:
            waited_from = time.monotonic()
            pooled, reused = pool.acquire(effective, fresh=fresh)
            # pool-acquisition wait is not network time: attribute it
            # separately so the critical path names the real bottleneck
            # (an exhausted pool vs. a slow service) — PROTOCOL.md §14
            record_wait("pool_wait", time.monotonic() - waited_from)
            try:
                return self._once(pooled, method, path, body, headers,
                                  effective)
            except (OSError, http.client.HTTPException) as exc:
                pool.discard(pooled)
                if reused and not retried \
                        and not isinstance(exc, TimeoutError):
                    # stale keep-alive socket: the server hung up while
                    # the connection sat idle — one reconnect, max
                    retried = True
                    fresh = True
                    continue
                raise TransportError(
                    f"cannot reach {address!r}: {exc}") from exc
            # success: _once already decided reusability and released
            # the connection

    def _once(self, pooled: _PooledConnection, method: str, path: str,
              body: bytes | None, headers: dict,
              timeout: float | None) -> tuple[int, str, bytes]:
        conn = pooled.conn
        conn.timeout = timeout
        if conn.sock is None:
            conn.connect()
            # headers and body go out as separate small segments; with
            # Nagle on, the body waits for the server's delayed ACK
            # (~40 ms) — longer than the round-trip being amortized
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if conn.sock is not None:
            # per-request budget, also overwriting whatever timeout the
            # previous request left on this reused socket
            conn.sock.settimeout(timeout)
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        pooled.requests += 1
        reusable = not response.will_close
        # classification happens in the caller; the connection's fate
        # is already decided — a fully-read response leaves it clean
        pool = self._pool_for(conn.host, conn.port)
        pool.release(pooled, reusable=reusable)
        return response.status, response.reason or "", payload

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        body = serialize(message).encode("utf-8")
        status, reason, payload = self._roundtrip(
            address, "POST", body,
            {"Content-Type": "application/xml; charset=utf-8"}, timeout)
        if not 200 <= status < 300:
            _raise_for_status(address, status, reason,
                              payload.decode("utf-8", "replace"))
        return parse(payload.decode("utf-8"))

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        url = f"{address}?{urllib.parse.urlencode({'query': query})}"
        status, reason, payload = self._roundtrip(url, "GET", None, {},
                                                  timeout)
        if not 200 <= status < 300:
            _raise_for_status(address, status, reason,
                              payload.decode("utf-8", "replace"))
        return payload.decode("utf-8")

    def supports_batch(self, address: str) -> bool:
        """The HTTP service handler unwraps ``log:batch`` itself."""
        return True

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        """A batch is one POST over a warm connection; the server-side
        handler fans out (PROTOCOL.md §10)."""
        return self.send(address, envelope, timeout=timeout)
