"""Transports: how the GRH reaches component-language services.

Two interchangeable implementations of the same contract (Fig. 3's arrows
between the GRH and the services):

* :class:`InProcessTransport` — services run in the same process; by
  default every message is still serialized to markup and re-parsed, so
  the bytes a service sees are identical to the HTTP case (the paper's
  services are autonomous remote processors; we keep that property
  observable).
* :class:`HttpTransport` — services run behind real HTTP endpoints on
  localhost (stdlib ``http.server``), POSTing ``log:`` messages; plain
  GET with a ``query`` parameter reaches framework-UNaware services the
  way the paper's eXist node is reached (Fig. 9).
"""

from __future__ import annotations

import json
import threading
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from ..grh.messages import (batch_results_to_xml, error_message, is_batch,
                            xml_to_batch)
from ..xmlmodel import Element, parse, serialize

__all__ = ["TransportError", "InProcessTransport", "HttpServiceServer",
           "HttpTransport", "HybridTransport", "AwareHandler",
           "OpaqueHandler", "handle_batch"]

#: A framework-aware service endpoint: XML message in, XML message out.
AwareHandler = Callable[[Element], Element]

#: A framework-unaware service endpoint: query string in, raw text out.
OpaqueHandler = Callable[[str], str]


class TransportError(RuntimeError):
    """Raised when an endpoint is unknown or unreachable."""


def handle_batch(handler: AwareHandler, envelope: Element) -> Element:
    """Apply *handler* to each request of a ``log:batch`` envelope.

    The service-side half of PROTOCOL.md §10: requests are handled in
    order, a per-request exception becomes that request's ``log:error``
    result (the rest of the batch still runs), and the responses ride
    back positionally in one ``log:batchresults``.  Any existing aware
    handler becomes batch-capable through this shim — services need no
    batching code of their own.
    """
    results = []
    for request in xml_to_batch(envelope):
        try:
            results.append(handler(request))
        except Exception as exc:
            results.append(error_message(str(exc)))
    return batch_results_to_xml(results)


class InProcessTransport:
    """Directly invokes handlers registered under string addresses."""

    def dispatches_inline(self, address: str) -> bool:
        """Handlers run synchronously on the caller's thread, so they
        see the caller's thread-local state (e.g. the GRH's span sink) —
        trace context need not ride the envelope (PROTOCOL.md §8)."""
        return True

    def __init__(self, serialize_messages: bool = True) -> None:
        self.serialize_messages = serialize_messages
        self._aware: dict[str, AwareHandler] = {}
        self._opaque: dict[str, OpaqueHandler] = {}

    def bind(self, address: str, handler: AwareHandler) -> str:
        self._aware[address] = handler
        return address

    def bind_opaque(self, address: str, handler: OpaqueHandler) -> str:
        self._opaque[address] = handler
        return address

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        # in-process calls cannot be interrupted; ``timeout`` is accepted
        # for contract compatibility with the HTTP transport
        if address not in self._aware:
            raise TransportError(f"no service bound at {address!r}")
        handler = self._aware[address]
        if not self.serialize_messages:
            return handler(message)
        wire_out = serialize(message)
        response = handler(parse(wire_out))
        return parse(serialize(response))

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        if address not in self._opaque:
            raise TransportError(f"no opaque service bound at {address!r}")
        return self._opaque[address](query)

    def supports_batch(self, address: str) -> bool:
        """Batching works against any aware handler via the shim."""
        return address in self._aware

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        """Dispatch a ``log:batch``; same wire-fidelity rules as send."""
        if address not in self._aware:
            raise TransportError(f"no service bound at {address!r}")
        handler = self._aware[address]
        if not self.serialize_messages:
            return handle_batch(handler, envelope)
        incoming = parse(serialize(envelope))
        return parse(serialize(handle_batch(handler, incoming)))


class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Serves one service: POST = aware protocol, GET ?query= = opaque.

    When the server was built with a metrics registry, ``GET /metrics``
    answers its Prometheus text exposition (scrape endpoint).  When it
    was built with an introspection surface
    (:class:`repro.obs.ops.IntrospectionSurface`), the health and
    ``/introspect/*`` routes answer JSON snapshots (PROTOCOL.md §9).
    """

    aware_handler: AwareHandler | None = None
    opaque_handler: OpaqueHandler | None = None
    metrics_registry = None
    introspection = None

    def log_message(self, format: str, *args) -> None:  # silence stderr
        pass

    def do_POST(self) -> None:
        if self.aware_handler is None:
            self.send_error(405, "service is not framework-aware")
            return
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length).decode("utf-8")
        try:
            message = parse(body)
            if is_batch(message):
                # batch envelope: fan out to the same handler per
                # request, per-request failures scoped to their slot
                response = handle_batch(self.aware_handler, message)
            else:
                response = self.aware_handler(message)
            payload = serialize(response).encode("utf-8")
        except Exception as exc:  # service errors become HTTP 500
            self.send_error(500, str(exc))
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/xml; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:
        parsed = urllib.parse.urlparse(self.path)
        introspection = self.introspection
        if introspection is not None and introspection.handles(parsed.path):
            params = {key: values[0] for key, values in
                      urllib.parse.parse_qs(parsed.query).items()}
            try:
                status, payload = introspection.handle(parsed.path, params)
                body = json.dumps(payload,
                                  separators=(",", ":")).encode("utf-8")
            except Exception as exc:
                self.send_error(500, str(exc))
                return
            self.send_response(status)
            self.send_header("Content-Type",
                             "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if parsed.path == "/metrics" and self.metrics_registry is not None:
            try:
                payload = self.metrics_registry.render_prometheus() \
                    .encode("utf-8")
            except Exception as exc:
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        if self.opaque_handler is None:
            self.send_error(405, "service has no opaque interface")
            return
        params = urllib.parse.parse_qs(parsed.query)
        query = params.get("query", [""])[0]
        try:
            payload = self.opaque_handler(query).encode("utf-8")
        except Exception as exc:
            self.send_error(500, str(exc))
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/xml; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class HttpServiceServer:
    """Hosts one service on a localhost HTTP port (own thread)."""

    def __init__(self, aware_handler: AwareHandler | None = None,
                 opaque_handler: OpaqueHandler | None = None,
                 metrics=None, introspection=None) -> None:
        # ``metrics`` is a MetricsRegistry (or anything with a
        # ``render_prometheus()`` method); when given, the server also
        # answers ``GET /metrics``.  ``introspection`` is an
        # IntrospectionSurface (anything with ``handles(path)`` and
        # ``handle(path, params) -> (status, payload)``); when given,
        # the server also answers the health and /introspect/* routes
        handler_class = type("BoundHandler", (_ServiceHTTPHandler,),
                             {"aware_handler": staticmethod(aware_handler)
                              if aware_handler else None,
                              "opaque_handler": staticmethod(opaque_handler)
                              if opaque_handler else None,
                              "metrics_registry": metrics,
                              "introspection": introspection})
        class _QuietServer(ThreadingHTTPServer):
            def handle_error(self, request, client_address):
                # a client that timed out and hung up mid-response is
                # routine (per-request timeouts abandon slow requests);
                # everything else still gets the stock traceback
                import sys
                if isinstance(sys.exception(), ConnectionError):
                    return
                super().handle_error(request, client_address)

        self._server = _QuietServer(("127.0.0.1", 0), handler_class)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)
        self._started = False
        self._stopped = False

    def start(self) -> str:
        self._thread.start()
        self._started = True
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}/"

    def stop(self) -> None:
        """Stop the server.  Idempotent, and safe before :meth:`start`:
        ``shutdown()`` is only issued when ``serve_forever`` actually
        runs (it would otherwise block forever on its event)."""
        if self._stopped:
            return
        self._stopped = True
        if self._started:
            self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class HybridTransport:
    """Routes by address: ``http(s)://`` endpoints over HTTP, everything
    else through an in-process broker.

    This matches real deployments of the framework: some language
    processors run remotely (the paper's autonomous Web Services), others
    are co-located with the engine.
    """

    def __init__(self, serialize_messages: bool = True,
                 timeout: float = 10.0) -> None:
        self.local = InProcessTransport(serialize_messages)
        self.http = HttpTransport(timeout)

    @staticmethod
    def _is_http(address: str) -> bool:
        return address.startswith("http://") or address.startswith("https://")

    def dispatches_inline(self, address: str) -> bool:
        return not self._is_http(address)

    def bind(self, address: str, handler: AwareHandler) -> str:
        return self.local.bind(address, handler)

    def bind_opaque(self, address: str, handler: OpaqueHandler) -> str:
        return self.local.bind_opaque(address, handler)

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        if self._is_http(address):
            return self.http.send(address, message, timeout=timeout)
        return self.local.send(address, message, timeout=timeout)

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        if self._is_http(address):
            return self.http.fetch(address, query, timeout=timeout)
        return self.local.fetch(address, query, timeout=timeout)

    def supports_batch(self, address: str) -> bool:
        if self._is_http(address):
            return self.http.supports_batch(address)
        return self.local.supports_batch(address)

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        if self._is_http(address):
            return self.http.send_batch(address, envelope, timeout=timeout)
        return self.local.send_batch(address, envelope, timeout=timeout)


class HttpTransport:
    """Reaches services over HTTP (POST for aware, GET for opaque)."""

    def __init__(self, timeout: float = 10.0) -> None:
        #: default per-request timeout; a per-request ``timeout`` argument
        #: (e.g. from a language's resilience policy) overrides it
        self.timeout = timeout

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        body = serialize(message).encode("utf-8")
        request = urllib.request.Request(
            address, data=body,
            headers={"Content-Type": "application/xml; charset=utf-8"})
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(request,
                                        timeout=effective) as response:
                return parse(response.read().decode("utf-8"))
        except OSError as exc:
            raise TransportError(f"cannot reach {address!r}: {exc}") from exc

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        url = f"{address}?{urllib.parse.urlencode({'query': query})}"
        effective = self.timeout if timeout is None else timeout
        try:
            with urllib.request.urlopen(url, timeout=effective) as response:
                return response.read().decode("utf-8")
        except OSError as exc:
            raise TransportError(f"cannot reach {address!r}: {exc}") from exc

    def supports_batch(self, address: str) -> bool:
        """The HTTP service handler unwraps ``log:batch`` itself."""
        return True

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        """A batch is one POST; the server-side handler fans out."""
        return self.send(address, envelope, timeout=timeout)
