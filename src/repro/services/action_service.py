"""The action-execution service (Sec. 4.5).

Receives one ``log:request`` per binding tuple (the GRH iterates — "for
each tuple of variable bindings, the action component is executed, again
via the GRH") and carries the action out against its
:class:`~repro.actions.ActionRuntime`.
"""

from __future__ import annotations

from ..actions import (ACTION_NS, ActionError, ActionMarkupError,
                       ActionRuntime, TemplateError, parse_action_component)
from ..grh.messages import Request
from .base import LanguageService, ServiceError

__all__ = ["ActionExecutionService", "ACTION_NS"]


class ActionExecutionService(LanguageService):
    """Executes action components against a runtime."""

    service_name = "actions"

    def __init__(self, runtime: ActionRuntime | None = None) -> None:
        self.runtime = runtime if runtime is not None else ActionRuntime()
        self.executed = 0

    def action(self, request: Request) -> None:
        if request.content is None:
            raise ServiceError("action request carries no content")
        try:
            action = parse_action_component(request.content)
        except ActionMarkupError as exc:
            raise ServiceError(str(exc)) from exc
        try:
            for binding in request.bindings:
                action.perform(self.runtime, binding)
                self.executed += 1
        except (ActionError, TemplateError) as exc:
            raise ServiceError(str(exc)) from exc
