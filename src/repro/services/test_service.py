"""The test-language service (Sec. 4.5).

The paper notes tests are "in general evaluated locally" — the engine
does exactly that by default — but the test language is still a language
of the framework, so a service implementation exists for deployments
that outsource test evaluation (and for the architecture tests that
exercise all four component families over the wire).
"""

from __future__ import annotations

from ..bindings import Relation
from ..conditions import (TEST_NS, TestEvaluationError, TestExpression,
                          TestSyntaxError)
from ..grh.messages import Request
from .base import LanguageService, ServiceError

__all__ = ["TestLanguageService", "TEST_NS"]


class TestLanguageService(LanguageService):
    """Filters the input bindings by the component's boolean expression."""

    __test__ = False  # not a pytest class, despite the name
    service_name = "test"

    def test(self, request: Request) -> Relation:
        source = self.component_text(request)
        try:
            expression = TestExpression(source)
        except TestSyntaxError as exc:
            raise ServiceError(str(exc)) from exc
        try:
            return expression.filter(request.bindings)
        except TestEvaluationError as exc:
            raise ServiceError(str(exc)) from exc
