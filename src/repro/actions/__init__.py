"""Actions: atomic actions, CCS-lite combinators, runtime, markup.

The action-component substrate (Sec. 4.5 / Fig. 2): process-algebra
combinators applied to domain atomic actions, executed once per tuple of
variable bindings.
"""

from .markup import (ACTION_NS, ActionMarkupError, DEFAULT_MAILBOX,
                     parse_action_component)
from .process import (Action, AssertTriple, Delete, If, Insert, Parallel,
                      Raise, RetractTriple, Send, Sequence)
from .runtime import ActionError, ActionRuntime, Message
from .templates import TemplateError, instantiate, template_variables

__all__ = [
    "Action", "Send", "Insert", "Delete", "AssertTriple", "RetractTriple",
    "Raise", "Sequence", "Parallel", "If",
    "ActionRuntime", "Message", "ActionError",
    "instantiate", "template_variables", "TemplateError",
    "parse_action_component", "ACTION_NS", "DEFAULT_MAILBOX",
    "ActionMarkupError",
]
