"""The action runtime: the mutable world that atomic actions act upon.

The paper's action component "can include commands on the database level,
explicit message sending, or actions on the domain ontology level"
(Sec. 4.5).  The runtime therefore exposes:

* **mailboxes** — named message queues (explicit message sending; the
  running example's "inform the customer about suitable cars"),
* **documents** — named XML documents (database-level updates),
* **graphs** — named RDF graphs (domain-ontology-level facts),
* an optional **event stream** — raising new events from actions closes
  the reactivity loop (rules triggering rules).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf import Graph
from ..xmlmodel import Element
from ..xpath import as_nodeset, evaluate

__all__ = ["ActionRuntime", "Message", "ActionError"]


class ActionError(ValueError):
    """Raised when an action cannot be executed."""


@dataclass(frozen=True)
class Message:
    """One delivered message."""

    recipient: str
    content: Element

    def __repr__(self) -> str:
        return f"Message(to={self.recipient!r}, {self.content.name.clark})"


class ActionRuntime:
    """Holds the named resources actions operate on."""

    def __init__(self, event_stream=None) -> None:
        self.mailboxes: dict[str, list[Message]] = {}
        self.documents: dict[str, Element] = {}
        self.graphs: dict[str, Graph] = {}
        self.event_stream = event_stream
        self.trace: list[str] = []

    # -- resource registration --------------------------------------------------

    def register_document(self, name: str, root: Element) -> None:
        self.documents[name] = root

    def register_graph(self, name: str, graph: Graph) -> None:
        self.graphs[name] = graph

    # -- atomic operations ---------------------------------------------------------

    def send(self, recipient: str, content: Element) -> Message:
        """Deliver a message to a named mailbox."""
        message = Message(recipient, content)
        self.mailboxes.setdefault(recipient, []).append(message)
        self.trace.append(f"send to {recipient}")
        return message

    def insert(self, document: str, parent_path: str, content: Element) -> None:
        """Insert ``content`` under every node selected by ``parent_path``."""
        root = self._document(document)
        parents = as_nodeset(evaluate(parent_path, root))
        if not parents:
            raise ActionError(
                f"insert target {parent_path!r} selects nothing in "
                f"{document!r}")
        for index, parent in enumerate(parents):
            if not isinstance(parent, Element):
                raise ActionError("insert target must select elements")
            parent.append(content.copy() if index else content)
        self.trace.append(f"insert into {document} at {parent_path}")

    def delete(self, document: str, path: str) -> int:
        """Delete all elements selected by ``path``; returns the count."""
        root = self._document(document)
        victims = [node for node in as_nodeset(evaluate(path, root))
                   if isinstance(node, Element)]
        for victim in victims:
            if victim.parent is None:
                raise ActionError("cannot delete the document root")
            victim.detach()
        self.trace.append(f"delete {len(victims)} nodes from {document}")
        return len(victims)

    def assert_triple(self, graph: str, subject, predicate, obj) -> None:
        self._graph(graph).add(subject, predicate, obj)
        self.trace.append(f"assert in {graph}")

    def retract_triple(self, graph: str, subject, predicate, obj) -> bool:
        removed = self._graph(graph).remove(subject, predicate, obj)
        self.trace.append(f"retract from {graph}")
        return removed

    def raise_event(self, payload: Element) -> None:
        """Emit a new event (actions can trigger further rules)."""
        if self.event_stream is None:
            raise ActionError("no event stream attached to the runtime")
        self.event_stream.emit(payload)
        self.trace.append(f"raise {payload.name.local}")

    # -- helpers ------------------------------------------------------------------------

    def _document(self, name: str) -> Element:
        if name not in self.documents:
            raise ActionError(f"unknown document {name!r}")
        return self.documents[name]

    def _graph(self, name: str) -> Graph:
        if name not in self.graphs:
            raise ActionError(f"unknown graph {name!r}")
        return self.graphs[name]

    def messages(self, recipient: str) -> list[Message]:
        return list(self.mailboxes.get(recipient, []))
