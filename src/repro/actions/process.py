"""The action language: atomic actions composed by a CCS-lite algebra.

The framework's language hierarchy (Fig. 2) names *process algebras* as
the application-independent action formalism, applied to domain atomic
actions.  Accordingly this module provides atomic actions (send, insert,
delete, assert, retract, raise) and the combinators ``Sequence``,
``Parallel`` and ``If`` (guarded choice).

Every action is executed *per tuple of variable bindings* (Sec. 4.5);
templates inside actions are instantiated with the tuple first.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence as Seq

from ..bindings import Binding, value_to_text
from ..conditions import TestExpression
from ..rdf import Literal, URIRef
from ..xmlmodel import Element
from .runtime import ActionError, ActionRuntime
from .templates import TemplateError, instantiate, template_variables

__all__ = ["Action", "Send", "Insert", "Delete", "AssertTriple",
           "RetractTriple", "Raise", "Sequence", "Parallel", "If"]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


def _substitute_string(text: str, binding: Binding) -> str:
    def replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in binding:
            raise TemplateError(f"unbound template variable {name!r}")
        return value_to_text(binding[name])
    return _PLACEHOLDER_RE.sub(replace, text)


class Action:
    """Base class: an executable action component."""

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        raise NotImplementedError

    def variables(self) -> set[str]:
        """Variables the action consumes (for static rule validation)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Send(Action):
    """Deliver an instantiated message to a named mailbox."""

    recipient: str
    template: Element

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        recipient = _substitute_string(self.recipient, binding)
        runtime.send(recipient, instantiate(self.template, binding))

    def variables(self) -> set[str]:
        return (template_variables(self.template)
                | set(_PLACEHOLDER_RE.findall(self.recipient)))


@dataclass(frozen=True)
class Insert(Action):
    """Insert an instantiated fragment into a named XML document."""

    document: str
    parent_path: str
    template: Element

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        runtime.insert(self.document, self.parent_path,
                       instantiate(self.template, binding))

    def variables(self) -> set[str]:
        return template_variables(self.template)


@dataclass(frozen=True)
class Delete(Action):
    """Delete the nodes selected by an (instantiated) XPath."""

    document: str
    path: str

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        runtime.delete(self.document, _substitute_string(self.path, binding))

    def variables(self) -> set[str]:
        return set(_PLACEHOLDER_RE.findall(self.path))


def _rdf_term(raw: str, binding: Binding):
    text = _substitute_string(raw, binding)
    scheme, sep, _ = text.partition(":")
    if sep and scheme.isalnum() and not scheme.isdigit():
        return URIRef(text)
    return Literal(text)


@dataclass(frozen=True)
class AssertTriple(Action):
    """Add a triple to a named RDF graph (domain-ontology-level action)."""

    graph: str
    subject: str
    predicate: str
    obj: str

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        subject = _rdf_term(self.subject, binding)
        predicate = _rdf_term(self.predicate, binding)
        if not isinstance(subject, URIRef) or not isinstance(predicate,
                                                             URIRef):
            raise ActionError("triple subject/predicate must be URIs")
        runtime.assert_triple(self.graph, subject, predicate,
                              _rdf_term(self.obj, binding))

    def variables(self) -> set[str]:
        names: set[str] = set()
        for raw in (self.subject, self.predicate, self.obj):
            names.update(_PLACEHOLDER_RE.findall(raw))
        return names


@dataclass(frozen=True)
class RetractTriple(Action):
    """Remove a triple from a named RDF graph."""

    graph: str
    subject: str
    predicate: str
    obj: str

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        subject = _rdf_term(self.subject, binding)
        predicate = _rdf_term(self.predicate, binding)
        if not isinstance(subject, URIRef) or not isinstance(predicate,
                                                             URIRef):
            raise ActionError("triple subject/predicate must be URIs")
        runtime.retract_triple(self.graph, subject, predicate,
                               _rdf_term(self.obj, binding))

    variables = AssertTriple.variables


@dataclass(frozen=True)
class Raise(Action):
    """Emit a new (instantiated) event — rules may trigger rules."""

    template: Element

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        runtime.raise_event(instantiate(self.template, binding))

    def variables(self) -> set[str]:
        return template_variables(self.template)


@dataclass(frozen=True)
class Sequence(Action):
    """Sequential composition: a1 ; a2 ; ...."""

    actions: tuple[Action, ...]

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        for action in self.actions:
            action.perform(runtime, binding)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for action in self.actions:
            names |= action.variables()
        return names


@dataclass(frozen=True)
class Parallel(Action):
    """Concurrent composition a1 ‖ a2: all branches are executed; their
    relative order carries no meaning (the engine runs them in arbitrary
    order and clients must not rely on it)."""

    actions: tuple[Action, ...]

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        for action in self.actions:
            action.perform(runtime, binding)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for action in self.actions:
            names |= action.variables()
        return names


@dataclass(frozen=True)
class If(Action):
    """Guarded choice: run ``then`` when the test holds, else ``otherwise``."""

    test: TestExpression
    then: Action
    otherwise: Action | None = None

    def perform(self, runtime: ActionRuntime, binding: Binding) -> None:
        if self.test.holds(binding):
            self.then.perform(runtime, binding)
        elif self.otherwise is not None:
            self.otherwise.perform(runtime, binding)

    def variables(self) -> set[str]:
        names = set(self.test.variables()) | self.then.variables()
        if self.otherwise is not None:
            names |= self.otherwise.variables()
        return names
