"""Instantiating XML templates with variable bindings.

The action component "is executed for each tuple of variable bindings"
(Sec. 4.5) — concretely, action markup contains ``{Var}`` placeholders in
attribute values and text content which are replaced by the tuple's
values before the action is carried out (the dual of atomic event
patterns).
"""

from __future__ import annotations

import re

from ..bindings import Binding, value_to_text
from ..xmlmodel import Element, Text

__all__ = ["instantiate", "template_variables", "TemplateError"]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


class TemplateError(ValueError):
    """Raised when a template references an unbound variable."""


def template_variables(template: Element) -> set[str]:
    """All ``{Var}`` placeholders occurring in the template."""
    names: set[str] = set()
    for element in template.iter():
        for value in element.attributes.values():
            names.update(_PLACEHOLDER_RE.findall(value))
        for child in element.children:
            if isinstance(child, Text):
                names.update(_PLACEHOLDER_RE.findall(child.value))
    return names


def _substitute(text: str, binding: Binding, allow_fragment: bool):
    """Replace placeholders; a lone ``{Var}`` bound to XML yields the
    fragment itself when ``allow_fragment`` is true."""
    lone = _PLACEHOLDER_RE.fullmatch(text.strip())
    if lone and allow_fragment:
        name = lone.group(1)
        if name not in binding:
            raise TemplateError(f"unbound template variable {name!r}")
        value = binding[name]
        if isinstance(value, Element):
            return value.copy()
        return text.replace(lone.group(0), value_to_text(value))

    def replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in binding:
            raise TemplateError(f"unbound template variable {name!r}")
        return value_to_text(binding[name])

    return _PLACEHOLDER_RE.sub(replace, text)


def instantiate(template: Element, binding: Binding) -> Element:
    """A deep copy of ``template`` with all placeholders substituted."""
    out = Element(template.name, nsdecls=dict(template.nsdecls))
    for name, value in template.attributes.items():
        substituted = _substitute(value, binding, allow_fragment=False)
        out.attributes[name] = substituted
    for child in template.children:
        if isinstance(child, Element):
            out.append(instantiate(child, binding))
        elif isinstance(child, Text):
            substituted = _substitute(child.value, binding,
                                      allow_fragment=True)
            if isinstance(substituted, Element):
                out.append(substituted)
            else:
                out.append(Text(substituted))
        # comments / PIs in templates are dropped
    return out
