"""XML markup ⇄ action-language expressions.

Action components carry their language as the namespace of their content
(the same dispatch convention as event components)::

    <eca:action>
      <act:sequence xmlns:act="...">
        <act:send to="customer-notifications">
          <offer person="{Person}" car="{Avail}"/>
        </act:send>
        <act:assert graph="fleet" s="urn:fleet#{Avail}"
                    p="urn:fleet#offeredTo" o="{Person}"/>
      </act:sequence>
    </eca:action>

An element *outside* the action namespace is shorthand for sending it to
the default mailbox (``act:send`` of the running example, Fig. 4).
"""

from __future__ import annotations

from ..conditions import TestExpression, TestSyntaxError
from ..xmlmodel import Element, QName
from .process import (Action, AssertTriple, Delete, If, Insert, Parallel,
                      Raise, RetractTriple, Send, Sequence)

__all__ = ["ACTION_NS", "DEFAULT_MAILBOX", "parse_action_component",
           "ActionMarkupError"]

ACTION_NS = "http://www.semwebtech.org/languages/2006/actions"

#: Where bare (non-act:) action content is delivered.
DEFAULT_MAILBOX = "default"


class ActionMarkupError(ValueError):
    """Raised on malformed action markup."""


def parse_action_component(content: Element) -> Action:
    """Parse one action element into an executable :class:`Action`."""
    if content.name.uri != ACTION_NS:
        # bare domain markup: send it to the default mailbox
        return Send(DEFAULT_MAILBOX, content.copy())
    kind = content.name.local
    if kind == "send":
        recipient = content.get("to") or DEFAULT_MAILBOX
        template = _single_child(content, "act:send")
        return Send(recipient, template.copy())
    if kind == "raise":
        return Raise(_single_child(content, "act:raise").copy())
    if kind == "insert":
        document = _required(content, "document")
        at = _required(content, "at")
        return Insert(document, at, _single_child(content,
                                                  "act:insert").copy())
    if kind == "delete":
        return Delete(_required(content, "document"),
                      _required(content, "path"))
    if kind == "assert":
        return AssertTriple(_required(content, "graph"),
                            _required(content, "s"),
                            _required(content, "p"),
                            _required(content, "o"))
    if kind == "retract":
        return RetractTriple(_required(content, "graph"),
                             _required(content, "s"),
                             _required(content, "p"),
                             _required(content, "o"))
    if kind in ("sequence", "parallel"):
        children = [parse_action_component(child)
                    for child in content.elements()]
        if not children:
            raise ActionMarkupError(f"act:{kind} needs at least one child")
        return (Sequence if kind == "sequence" else Parallel)(tuple(children))
    if kind == "if":
        source = _required(content, "test")
        try:
            test = TestExpression(source)
        except TestSyntaxError as exc:
            raise ActionMarkupError(f"bad test in act:if: {exc}") from exc
        then_actions: list[Action] = []
        otherwise: Action | None = None
        for child in content.elements():
            if child.name == QName(ACTION_NS, "else"):
                branches = [parse_action_component(grandchild)
                            for grandchild in child.elements()]
                if not branches:
                    raise ActionMarkupError("act:else needs children")
                otherwise = branches[0] if len(branches) == 1 \
                    else Sequence(tuple(branches))
            else:
                then_actions.append(parse_action_component(child))
        if not then_actions:
            raise ActionMarkupError("act:if needs a then-branch")
        then = then_actions[0] if len(then_actions) == 1 \
            else Sequence(tuple(then_actions))
        return If(test, then, otherwise)
    raise ActionMarkupError(f"unknown action operator {kind!r}")


def _required(element: Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise ActionMarkupError(
            f"act:{element.name.local} requires attribute {attribute!r}")
    return value


def _single_child(element: Element, what: str) -> Element:
    children = list(element.elements())
    if len(children) != 1:
        raise ActionMarkupError(f"{what} must contain exactly one element")
    return children[0]
