"""Application domains (Fig. 2's bottom layer): travel / car-rental."""

from .travel import (CAR_RENTAL_RULE, FLEET_NS, TRAVEL_NS, booking_event,
                     cancellation_event, classes_document,
                     delayed_flight_event, fleet_document, fleet_graph,
                     persons_document)
from .workload import (CLASS_NAMES, WorkloadConfig, booking_payloads,
                       full_pipeline_rule_markup, simple_rule_markup,
                       synthetic_classes, synthetic_fleet, synthetic_persons)

__all__ = [
    "TRAVEL_NS", "FLEET_NS", "CAR_RENTAL_RULE",
    "booking_event", "delayed_flight_event", "cancellation_event",
    "persons_document", "classes_document", "fleet_document", "fleet_graph",
    "WorkloadConfig", "synthetic_persons", "synthetic_classes",
    "synthetic_fleet", "booking_payloads", "simple_rule_markup",
    "full_pipeline_rule_markup", "CLASS_NAMES",
]
