"""Synthetic workload generation for the benchmark harness.

The paper evaluates nothing quantitatively, so the benchmarks in
``benchmarks/`` characterize the engine on synthetic workloads scaled
from the running example: many persons, many cars, many rules, long
event streams.  All generators take an explicit ``seed`` so benchmark
runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..actions import ACTION_NS
from ..xmlmodel import E, ECA_NS, Element, QName
from .travel import TRAVEL_NS

__all__ = ["WorkloadConfig", "synthetic_persons", "synthetic_classes",
           "synthetic_fleet", "booking_payloads", "simple_rule_markup",
           "full_pipeline_rule_markup", "CLASS_NAMES"]

CLASS_NAMES = ["A", "B", "C", "D", "E", "F"]

_FIRST = ["John", "Jane", "Max", "Mia", "Ada", "Alan", "Grace", "Edsger"]
_LAST = ["Doe", "Roe", "Power", "Wall", "Byron", "Turing", "Hopper",
         "Dijkstra"]
_MODELS = ["Golf", "Passat", "Polo", "Clio", "Laguna", "Espace", "Corsa",
           "Astra", "Focus", "Fiesta", "Panda", "Punto"]
_CITIES = ["Paris", "Rome", "Munich", "Berlin", "Lisbon", "Vienna", "Oslo",
           "Madrid"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of a synthetic travel-domain workload."""

    persons: int = 100
    cars_per_person: int = 2
    fleet_size: int = 50
    cities: int = 4
    seed: int = 2006

    def rng(self) -> random.Random:
        return random.Random(self.seed)


def _person_name(index: int) -> str:
    return (f"{_FIRST[index % len(_FIRST)]} "
            f"{_LAST[(index // len(_FIRST)) % len(_LAST)]} {index}")


def synthetic_persons(config: WorkloadConfig) -> Element:
    """A ``persons.xml`` with ``config.persons`` owners."""
    rng = config.rng()
    root = E("persons")
    for index in range(config.persons):
        person = E("person", {"name": _person_name(index),
                              "home": rng.choice(_CITIES[:config.cities])})
        for _ in range(config.cars_per_person):
            car = E("car")
            car.append(E("model", None, rng.choice(_MODELS)))
            person.append(car)
        root.append(person)
    return root


def synthetic_classes() -> Element:
    """The model → class mapping for all synthetic models."""
    root = E("classes")
    for index, model in enumerate(_MODELS):
        root.append(E("entry", {"model": model,
                                "class": CLASS_NAMES[index % len(CLASS_NAMES)]}))
    return root


def synthetic_fleet(config: WorkloadConfig) -> Element:
    """A rental fleet spread over the configured cities."""
    rng = config.rng()
    root = E("fleet")
    for index in range(config.fleet_size):
        model = rng.choice(_MODELS)
        root.append(E("car", {
            "id": f"f{index}",
            "model": model,
            "class": CLASS_NAMES[_MODELS.index(model) % len(CLASS_NAMES)],
            "location": rng.choice(_CITIES[:config.cities]),
        }))
    return root


def booking_payloads(config: WorkloadConfig, count: int) -> list[Element]:
    """``count`` booking events by random persons to random cities."""
    rng = config.rng()
    out = []
    for _ in range(count):
        person = _person_name(rng.randrange(config.persons))
        out.append(Element(
            QName(TRAVEL_NS, "booking"),
            {QName(None, "person"): person,
             QName(None, "from"): rng.choice(_CITIES[:config.cities]),
             QName(None, "to"): rng.choice(_CITIES[:config.cities])},
            nsdecls={"travel": TRAVEL_NS}))
    return out


def simple_rule_markup(rule_id: str, event_name: str = "booking") -> str:
    """A minimal E→A rule (atomic event, one send action)."""
    return f"""
    <eca:rule xmlns:eca="{ECA_NS}" id="{rule_id}">
      <eca:event>
        <travel:{event_name} xmlns:travel="{TRAVEL_NS}"
                             person="{{Person}}" to="{{To}}"/>
      </eca:event>
      <eca:action>
        <act:send xmlns:act="{ACTION_NS}" to="sink">
          <seen person="{{Person}}"/>
        </act:send>
      </eca:action>
    </eca:rule>
    """


def full_pipeline_rule_markup(rule_id: str) -> str:
    """The complete Fig. 4 pipeline against the synthetic documents."""
    return f"""
    <eca:rule xmlns:eca="{ECA_NS}" id="{rule_id}">
      <eca:event>
        <travel:booking xmlns:travel="{TRAVEL_NS}"
                        person="{{Person}}" to="{{To}}"/>
      </eca:event>
      <eca:variable name="OwnCar">
        <eca:query>
          <xq:xquery xmlns:xq="http://www.semwebtech.org/languages/2006/xquery-lite">
            for $c in doc('persons.xml')//person[@name = $Person]/car
            return $c/model/text()
          </xq:xquery>
        </eca:query>
      </eca:variable>
      <eca:variable name="Class">
        <eca:query>
          <eca:opaque language="exist-like">
            doc('classes.xml')//entry[@model = '{{OwnCar}}']/@class
          </eca:opaque>
        </eca:query>
      </eca:variable>
      <eca:variable name="Avail">
        <eca:query>
          <eca:opaque language="exist-like">
            doc('fleet.xml')//car[@location = '{{To}}'][@class = '{{Class}}']/@model
          </eca:opaque>
        </eca:query>
      </eca:variable>
      <eca:action>
        <act:send xmlns:act="{ACTION_NS}" to="offers">
          <offer person="{{Person}}" car="{{Avail}}"/>
        </act:send>
      </eca:action>
    </eca:rule>
    """
