"""The travel / car-rental application domain of the running example.

Provides the exact world of Figs. 4–11: John Doe owns a Golf (class B)
and a Passat (class C) at home; the rental fleet at the destination
Paris offers cars of classes B and D; when he books a flight to Paris he
must be offered exactly the class-B car.

The data lives in three places — mirroring the paper's architecture,
where each query component contacts a *different* autonomous node:

* ``persons.xml``   — persons and the cars they own (queried via the
  framework-aware XQ-lite node, Fig. 8),
* ``classes.xml``   — the model → class mapping (queried via the
  framework-UNaware eXist-like node, Fig. 9),
* ``fleet.xml``     — rental cars and their locations (queried with a
  log:answers-generating query, Fig. 10),
* ``fleet`` (RDF)   — the same fleet as triples, for the SPARQL variant.
"""

from __future__ import annotations

from ..rdf import Graph, parse_turtle
from ..xmlmodel import Element, QName, parse

__all__ = ["TRAVEL_NS", "FLEET_NS", "booking_event", "persons_document",
           "classes_document", "fleet_document", "fleet_graph",
           "CAR_RENTAL_RULE", "delayed_flight_event", "cancellation_event"]

TRAVEL_NS = "http://www.semwebtech.org/domains/2006/travel"
FLEET_NS = "http://example.org/fleet#"


def booking_event(person: str = "John Doe", origin: str = "Munich",
                  destination: str = "Paris") -> Element:
    """``<travel:booking person="John Doe" from="Munich" to="Paris"/>``
    — the triggering event of Fig. 6."""
    return Element(QName(TRAVEL_NS, "booking"),
                   {QName(None, "person"): person,
                    QName(None, "from"): origin,
                    QName(None, "to"): destination},
                   nsdecls={"travel": TRAVEL_NS})


def delayed_flight_event(flight: str, person: str,
                         minutes: int = 60) -> Element:
    """A delayed-flight event (the domain-ontology example of Sec. 2)."""
    return Element(QName(TRAVEL_NS, "delayed"),
                   {QName(None, "flight"): flight,
                    QName(None, "person"): person,
                    QName(None, "minutes"): str(minutes)},
                   nsdecls={"travel": TRAVEL_NS})


def cancellation_event(person: str, destination: str) -> Element:
    return Element(QName(TRAVEL_NS, "cancellation"),
                   {QName(None, "person"): person,
                    QName(None, "to"): destination},
                   nsdecls={"travel": TRAVEL_NS})


def persons_document() -> Element:
    """Persons and their own cars (the Fig. 7/8 data source)."""
    return parse("""
<persons>
  <person name="John Doe" home="Munich">
    <car><model>Golf</model></car>
    <car><model>Passat</model></car>
  </person>
  <person name="Jane Roe" home="Berlin">
    <car><model>Clio</model></car>
  </person>
  <person name="Max Power" home="Hamburg"/>
</persons>
""")


def classes_document() -> Element:
    """Car model → class mapping (the Fig. 9 eXist database)."""
    return parse("""
<classes>
  <entry model="Clio" class="A"/>
  <entry model="Golf" class="B"/>
  <entry model="Polo" class="B"/>
  <entry model="Passat" class="C"/>
  <entry model="Laguna" class="C"/>
  <entry model="Espace" class="D"/>
</classes>
""")


def fleet_document() -> Element:
    """Rental cars and their current locations (the Fig. 10 source)."""
    return parse("""
<fleet>
  <car id="f1" model="Polo" class="B" location="Paris"/>
  <car id="f2" model="Espace" class="D" location="Paris"/>
  <car id="f3" model="Golf" class="B" location="Rome"/>
  <car id="f4" model="Laguna" class="C" location="Rome"/>
</fleet>
""")


def fleet_graph() -> Graph:
    """The rental fleet as RDF (for the SPARQL query variant)."""
    return parse_turtle(f"""
@prefix fleet: <{FLEET_NS}> .

fleet:f1 a fleet:RentalCar ; fleet:model "Polo" ;
    fleet:carClass "B" ; fleet:location "Paris" .
fleet:f2 a fleet:RentalCar ; fleet:model "Espace" ;
    fleet:carClass "D" ; fleet:location "Paris" .
fleet:f3 a fleet:RentalCar ; fleet:model "Golf" ;
    fleet:carClass "B" ; fleet:location "Rome" .
fleet:f4 a fleet:RentalCar ; fleet:model "Laguna" ;
    fleet:carClass "C" ; fleet:location "Rome" .
""")


#: The sample rule of Fig. 4, in ECA-ML.  When a customer books a flight,
#: cars similar in size to their own cars are offered at the destination.
CAR_RENTAL_RULE = f"""
<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
          id="car-rental-offer">
  <!-- detect a booking by a person (Fig. 5/6) -->
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" from="{{From}}" to="{{To}}"/>
  </eca:event>

  <!-- query the person's own cars: framework-aware XQ-lite node (Fig. 8) -->
  <eca:variable name="OwnCar">
    <eca:query>
      <xq:xquery xmlns:xq="http://www.semwebtech.org/languages/2006/xquery-lite">
        for $c in doc('persons.xml')//person[@name = $Person]/car
        return $c/model/text()
      </xq:xquery>
    </eca:query>
  </eca:variable>

  <!-- map the cars to their classes: framework-UNaware node (Fig. 9) -->
  <eca:variable name="Class">
    <eca:query>
      <eca:opaque language="exist-like">
        doc('classes.xml')//entry[@model = '{{OwnCar}}']/@class
      </eca:opaque>
    </eca:query>
  </eca:variable>

  <!-- cars available at the destination: a query that generates the
       log:answers structure itself, faking a framework-aware service
       (Fig. 10) -->
  <eca:query>
    <eca:opaque language="exist-like">
      &lt;log:answers xmlns:log="http://www.semwebtech.org/languages/2006/log"&gt; {{
        for $c in doc('fleet.xml')//car[@location = '{{To}}']
        return &lt;log:answer&gt;
          &lt;log:variable name="Avail"&gt;{{ $c/@model }}&lt;/log:variable&gt;
          &lt;log:variable name="Class"&gt;{{ $c/@class }}&lt;/log:variable&gt;
        &lt;/log:answer&gt; }}
      &lt;/log:answers&gt;
    </eca:opaque>
  </eca:query>

  <!-- the test component is empty in the example (Sec. 4.5) -->

  <!-- inform the customer about suitable cars, once per tuple -->
  <eca:action>
    <act:send xmlns:act="http://www.semwebtech.org/languages/2006/actions"
              to="customer-notifications">
      <travel:offer xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" destination="{{To}}"
                    car="{{Avail}}" class="{{Class}}"/>
    </act:send>
  </eca:action>
</eca:rule>
"""
