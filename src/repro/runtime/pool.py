"""Sharded worker pool executing rule instances concurrently.

The paper's engine "creates one or more instances of the rule" per
detection and steps each instance through its remaining components
independently (Section 4) — instances never share binding tables, so
they are natural units of parallelism.  :class:`Runtime` exploits that:
each admitted detection is hashed to a fixed shard, and the whole
instance evaluation (Query ≤ Test ≤ Action, including every GRH
round-trip) runs on that shard's worker thread.  Per-instance component
ordering is therefore preserved *trivially* — one thread executes the
instance start to finish — while distinct instances proceed in
parallel on other shards.

Admission control is a bounded global queue with three policies:

``block``
    the producer waits for space (chained detections raised *by* a
    worker are exempt — blocking a worker on space only workers can
    free would deadlock the pool);
``drop-oldest``
    the oldest, lowest-priority queued detection is shed (journalled
    ``dropped`` under a durable engine so a crash cannot resurrect it);
``reject``
    :class:`BackpressureError` is raised to the producer.

``Runtime.accepting`` is the admission gate the ``/readyz`` probe
reflects: a saturated runtime reports not-ready so load balancers stop
routing events at it before the queue policy has to fire.

In-flight window (``inflight > 1``)
-----------------------------------

One thread per shard means one component request in flight per shard —
and the HTTP-bound workload is round-trip bound, not CPU bound, so the
workers mostly sleep inside ``urlopen``.  With ``inflight=n`` each
shard runs a *dispatcher* thread that pops its queue in order and hands
detections to ``n`` *lane* threads.  The PROTOCOL.md §10 per-source
ordering contract survives because the dispatcher is the only consumer
of the shard queue and classifies atomically: a detection whose source
key (``component_id#detection_id``) is already executing is chained
behind the running one in a busy map, and the finishing lane executes
the chain in pop order.  Distinct sources proceed concurrently up to
the window.  A per-shard semaphore holds one permit per popped-but-
incomplete detection, so a dispatcher can never drain its whole queue
into memory — hot shards degrade to at most ``inflight`` popped
detections and the capacity gate stays honest.
"""

from __future__ import annotations

import itertools
import threading
import time
import zlib
from collections import deque
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import ECAEngine
    from ..grh.messages import Detection
    from .batcher import DispatchBatcher

#: admission-control policies accepted by :class:`Runtime`
BACKPRESSURE_POLICIES = ("block", "drop-oldest", "reject")


class BackpressureError(RuntimeError):
    """The runtime's ingestion queue is full and the policy is ``reject``.

    Raised to the event producer (the thread delivering the detection);
    the detection was journalled as ``dropped`` first under a durable
    engine, so recovery will not replay work the engine refused.
    """


class _ShardDispatch:
    """Per-shard state for the in-flight window (``inflight > 1``).

    ``busy`` maps an executing source key to the deque of detections
    chained behind it; ``ready`` holds classified detections waiting
    for a lane; ``permits`` bounds popped-but-incomplete detections.
    """

    __slots__ = ("lock", "work", "busy", "ready", "permits",
                 "dispatcher_done")

    def __init__(self, inflight: int) -> None:
        self.lock = threading.Lock()
        self.work = threading.Condition(self.lock)
        self.busy: dict[object, deque] = {}
        self.ready: deque = deque()
        self.permits = threading.Semaphore(inflight)
        self.dispatcher_done = False


class Runtime:
    """Concurrent execution runtime for :class:`~repro.core.ECAEngine`.

    Construct the engine with one to go concurrent — the default engine
    stays synchronous::

        runtime = Runtime(workers=4, queue_capacity=1024)
        engine = ECAEngine(grh, runtime=runtime)
        ...
        engine.shutdown()        # drain + stop the pool

    Parameters
    ----------
    workers:
        number of shards / worker threads.  Detections hash to a fixed
        shard by ``crc32(component_id # detection_id)``, so redelivery
        of the same detection lands on the same worker.
    queue_capacity:
        bound on the total queued (not yet executing) detections across
        all shards; the *backpressure* policy applies beyond it.
    backpressure:
        one of :data:`BACKPRESSURE_POLICIES`.
    submit_timeout:
        with ``block``, how long a producer waits for space before
        :class:`BackpressureError` is raised anyway (``None`` = forever).
    batching:
        when true, a :class:`~repro.runtime.DispatchBatcher` is wired
        into the engine's GRH on attach: same-address component
        requests from concurrent instances coalesce into one
        ``log:batch`` envelope (PROTOCOL.md §10).
    batch_window / max_batch:
        batcher tuning — how long a request may wait for co-travellers
        and the envelope size that forces an immediate flush.
    inflight:
        per-shard in-flight window.  ``1`` (the default) keeps the
        classic one-thread-per-shard path.  ``n > 1`` runs a dispatcher
        plus ``n`` lane threads per shard so up to ``n`` *distinct*
        sources execute concurrently while same-source detections stay
        serialized in pop order (PROTOCOL.md §11).

    Ordering guarantees: within one shard, detections run in priority
    order (FIFO per level) and detections sharing a source key
    (``component_id#detection_id``) run strictly in pop order even with
    ``inflight > 1``.  *Across* shards there is no global order — rules
    that must serialize against each other should share a shard key or
    run on the synchronous engine.
    """

    def __init__(self, workers: int = 4, queue_capacity: int = 1024,
                 backpressure: str = "block", *,
                 submit_timeout: float | None = None,
                 batching: bool = False, batch_window: float = 0.005,
                 max_batch: int = 16, inflight: int = 1,
                 poll_interval: float = 0.2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if inflight < 1:
            raise ValueError("inflight must be >= 1")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}")
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.backpressure = backpressure
        self.submit_timeout = submit_timeout
        self.batching = batching
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.inflight = inflight
        self._poll_interval = poll_interval

        from ..core.engine import _DetectionQueue
        self._queues = [_DetectionQueue() for _ in range(workers)]
        self._shards = ([_ShardDispatch(inflight) for _ in range(workers)]
                        if inflight > 1 else [])
        self._threads: list[threading.Thread] = []
        #: per-thread flag set inside worker threads; an ident set would
        #: outlive the thread and misclassify a producer whose OS-reused
        #: ident matched a dead worker's
        self._worker_local = threading.local()
        self._engine: ECAEngine | None = None
        self.batcher: DispatchBatcher | None = None

        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)   # capacity freed
        self._idle = threading.Condition(self._lock)    # pool quiesced
        self._size = 0          # queued, not yet picked up
        self._active = 0        # being executed right now
        self._inflight = 0      # popped, not yet completed (≥ _active)
        self._shard_inflight = [0] * workers
        self._running = False
        self._stop = False

        # lifetime counters (read under the lock or accepted as racy
        # monitoring snapshots)
        self.submitted = 0
        self.completed = 0
        self.dropped = 0
        self.rejected = 0
        self.errors = 0
        self.last_error: BaseException | None = None

        #: observability hook: called with the seconds a detection spent
        #: queued before a worker picked it up (obs wires a histogram)
        self.on_wait: Callable[[float], None] | None = None

        #: submit-time stamps keyed by ``id(detection)``; every exit
        #: path pops its entry (pickup, drop-oldest shed, shutdown
        #: sweep), so the map is bounded by the queued depth — see
        #: tests/runtime/test_enqueued_bookkeeping.py
        self._enqueued_at: dict[int, float] = {}
        self._busy_time = [0.0] * workers
        self._started_at: float | None = None
        self._fallback_key = itertools.count()

    # -- lifecycle -----------------------------------------------------------

    def attach(self, engine: "ECAEngine") -> None:
        """Bind to *engine* and start the worker threads.

        Called by ``ECAEngine.__init__`` when constructed with
        ``runtime=``; a runtime serves exactly one engine for its
        lifetime (re-attach raises).
        """
        with self._lock:
            if self._engine is not None:
                raise RuntimeError("runtime is already attached to an engine")
            self._engine = engine
            self._stop = False
            self._running = True
            self._started_at = time.monotonic()
        if self.batching:
            from .batcher import DispatchBatcher
            self.batcher = DispatchBatcher(
                engine.grh, window=self.batch_window,
                max_batch=self.max_batch)
            engine.grh.batcher = self.batcher
        for index in range(self.workers):
            if self.inflight > 1:
                thread = threading.Thread(
                    target=self._dispatcher, args=(index,),
                    name=f"eca-runtime-{index}", daemon=True)
                self._threads.append(thread)
                thread.start()
                for lane in range(self.inflight):
                    worker = threading.Thread(
                        target=self._lane, args=(index,),
                        name=f"eca-runtime-{index}-lane{lane}", daemon=True)
                    self._threads.append(worker)
                    worker.start()
            else:
                thread = threading.Thread(
                    target=self._worker, args=(index,),
                    name=f"eca-runtime-{index}", daemon=True)
                self._threads.append(thread)
                thread.start()

    @property
    def running(self) -> bool:
        """True while workers accept and execute detections."""
        return self._running

    @property
    def saturated(self) -> bool:
        """True when the ingestion queue is at capacity."""
        return self._size >= self.queue_capacity

    @property
    def accepting(self) -> bool:
        """Admission gate: running and below capacity (``/readyz``)."""
        return self._running and self._size < self.queue_capacity

    # -- ingestion -----------------------------------------------------------

    def _shard_of(self, detection: "Detection") -> int:
        key = detection.detection_id
        if key is None:
            # no stable identity: spread round-robin (next() is atomic)
            key = str(next(self._fallback_key))
        digest = zlib.crc32(f"{detection.component_id}#{key}".encode())
        return digest % self.workers

    def submit(self, detection: "Detection", priority: int = 0) -> None:
        """Admit a detection: apply the backpressure policy and enqueue.

        Raises :class:`BackpressureError` (``reject`` policy, or
        ``block`` past *submit_timeout*) — the caller owns closing the
        detection's durable record (``ECAEngine._on_detection`` does).
        """
        shard = self._shard_of(detection)
        queue = self._queues[shard]
        victim: Detection | None = None
        with self._lock:
            if not self._running:
                raise RuntimeError("runtime is not running")
            chained = getattr(self._worker_local, "is_worker", False)
            if not chained and self._size >= self.queue_capacity:
                if self.backpressure == "reject":
                    self.rejected += 1
                    raise BackpressureError(
                        f"ingestion queue full "
                        f"({self._size}/{self.queue_capacity})")
                if self.backpressure == "drop-oldest":
                    victim = queue.shed()
                    if victim is None:
                        deepest = max(self._queues, key=len)
                        victim = deepest.shed()
                    if victim is not None:
                        self._size -= 1
                        self.dropped += 1
                        self._enqueued_at.pop(id(victim), None)
                    # both sheds returning None means every counted
                    # detection is mid-pickup (popped from its shard
                    # queue, pool lock not yet taken): real queued depth
                    # is below capacity, so admitting is not over-
                    # admitting — _size corrects when workers get the
                    # lock
                else:  # block
                    deadline = (None if self.submit_timeout is None
                                else time.monotonic() + self.submit_timeout)
                    while (self._size >= self.queue_capacity
                           and self._running):
                        remaining = (None if deadline is None
                                     else deadline - time.monotonic())
                        if remaining is not None and remaining <= 0:
                            self.rejected += 1
                            raise BackpressureError(
                                f"no queue space within "
                                f"{self.submit_timeout}s")
                        self._space.wait(
                            self._poll_interval if remaining is None
                            else min(remaining, self._poll_interval))
                    if not self._running:
                        raise RuntimeError("runtime stopped during submit")
            self._size += 1
            self.submitted += 1
            self._enqueued_at[id(detection)] = time.monotonic()
            queue.push(priority, detection)
        if victim is not None and self._engine is not None:
            # journal the shed detection as dropped outside the lock
            self._engine._discard(victim)

    # -- execution -----------------------------------------------------------

    def _worker(self, index: int) -> None:
        queue = self._queues[index]
        self._worker_local.is_worker = True
        while True:
            detection = queue.wait(timeout=self._poll_interval)
            if detection is None:
                if self._stop and not queue:
                    return
                continue
            start = time.monotonic()
            with self._lock:
                # the detection leaves the queued count at pickup, not
                # at completion: _size is what the capacity gate and
                # /readyz reflect, and counting executing detections
                # made small capacities permanently "full" (shed() then
                # found nothing to drop and submit over-admitted)
                self._size -= 1
                self._active += 1
                self._inflight += 1
                self._shard_inflight[index] += 1
                waited = start - self._enqueued_at.pop(id(detection), start)
                self._space.notify()
            hook = self.on_wait
            if hook is not None:
                try:
                    hook(waited)
                except Exception:
                    pass
            # hand the wait to the engine: _handle stamps it onto the
            # instance's root span for the critical-path analyzer
            self._worker_local.last_wait = waited
            engine = self._engine
            ok = False
            try:
                engine._handle(detection)
                ok = True
            except BaseException as exc:  # shield the pool: a worker
                # must survive anything one instance evaluation throws;
                # the durable record stays open so recovery re-drives it
                # — the same at-least-once contract the sync path has
                # when an exception escapes to the producer
                self.last_error = exc
            finally:
                elapsed = time.monotonic() - start
                with self._lock:
                    self._active -= 1
                    self._inflight -= 1
                    self._shard_inflight[index] -= 1
                    self._busy_time[index] += elapsed
                    if ok:
                        self.completed += 1
                    else:
                        self.errors += 1
                    if self._size == 0 and self._active == 0:
                        self._idle.notify_all()

    def take_queue_wait(self) -> float | None:
        """Consume this worker thread's pending queue-wait hand-off.

        The worker (or lane) records how long the detection it is about
        to execute waited — shard queue plus in-flight lane — just
        before calling ``engine._handle``; the engine reads it here
        exactly once and stamps it onto the instance's root span as the
        ``queue_wait`` attribute (PROTOCOL.md §14).  Returns ``None``
        off a worker thread or when already consumed.
        """
        waited = getattr(self._worker_local, "last_wait", None)
        if waited is not None:
            self._worker_local.last_wait = None
        return waited

    # -- execution: in-flight window (inflight > 1) --------------------------

    def _source_key(self, detection: "Detection") -> object:
        """Serialization key for the §10/§11 per-source ordering contract.

        Matches the shard hash input; a detection without a stable
        identity gets a unique key and never serializes with anything.
        """
        key = detection.detection_id
        if key is None:
            return object()
        return f"{detection.component_id}#{key}"

    def _dispatcher(self, index: int) -> None:
        """Sole consumer of shard *index*'s queue; classifies in order.

        Popping and classifying on one thread is what preserves
        per-source order: by the time a second same-source detection is
        popped, the first is already registered in the busy map, so the
        second chains behind it instead of racing to a free lane.
        """
        queue = self._queues[index]
        shard = self._shards[index]
        while True:
            detection = queue.wait(timeout=self._poll_interval)
            if detection is None:
                if self._stop and not queue:
                    break
                continue
            # one permit per popped-but-incomplete detection (released
            # by the executing lane); bounds memory and keeps the
            # capacity gate honest — _size drops at pop, so popping
            # without bound would report a drained queue that is really
            # a pile of waiting work
            while not shard.permits.acquire(timeout=self._poll_interval):
                pass
            start = time.monotonic()
            with self._lock:
                self._size -= 1
                self._inflight += 1
                self._shard_inflight[index] += 1
                waited = start - self._enqueued_at.pop(id(detection), start)
                self._space.notify()
            hook = self.on_wait
            if hook is not None:
                try:
                    hook(waited)
                except Exception:
                    pass
            key = self._source_key(detection)
            with shard.lock:
                pending = shard.busy.get(key)
                if pending is not None:
                    # same source already executing: chain behind it
                    pending.append((detection, waited, start))
                else:
                    shard.busy[key] = deque()
                    shard.ready.append((key, detection, waited, start))
                    shard.work.notify()
        with shard.lock:
            shard.dispatcher_done = True
            shard.work.notify_all()

    def _lane(self, index: int) -> None:
        """One execution lane of shard *index*'s in-flight window."""
        shard = self._shards[index]
        self._worker_local.is_worker = True
        while True:
            with shard.lock:
                while not shard.ready:
                    if shard.dispatcher_done:
                        return
                    shard.work.wait(self._poll_interval)
                key, detection, waited, popped_at = shard.ready.popleft()
            while True:
                # queue wait for attribution includes the lane wait: the
                # time between the dispatcher's pop and this lane
                # actually starting the instance is still time the
                # detection spent waiting on the runtime
                self._worker_local.last_wait = \
                    waited + (time.monotonic() - popped_at)
                self._execute(index, detection)
                shard.permits.release()
                with shard.lock:
                    pending = shard.busy[key]
                    if pending:
                        # drain the same-source chain in pop order
                        detection, waited, popped_at = pending.popleft()
                    else:
                        del shard.busy[key]
                        break

    def _execute(self, index: int, detection: "Detection") -> None:
        """Run one instance evaluation with the pool's accounting."""
        start = time.monotonic()
        with self._lock:
            self._active += 1
        engine = self._engine
        ok = False
        try:
            engine._handle(detection)
            ok = True
        except BaseException as exc:  # shield the pool (see _worker)
            self.last_error = exc
        finally:
            elapsed = time.monotonic() - start
            with self._lock:
                self._active -= 1
                self._inflight -= 1
                self._shard_inflight[index] -= 1
                self._busy_time[index] += elapsed
                if ok:
                    self.completed += 1
                else:
                    self.errors += 1
                if self._size == 0 and self._inflight == 0:
                    self._idle.notify_all()

    # -- quiesce -------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the pool is idle; leave durable state consistent.

        Waits for every shard queue to empty and every worker to finish
        its current instance, flushes the dispatch batcher, then runs
        the durability commit barrier (journal fsync + checkpoint
        opportunity).  Returns ``True`` once idle, ``False`` if
        *timeout* seconds elapsed first.  Must not be called from rule
        code (a worker waiting for itself never becomes idle).
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._lock:
            while self._size > 0 or self._active > 0 or self._inflight > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(
                    self._poll_interval if remaining is None
                    else min(remaining, self._poll_interval))
        batcher = self.batcher
        if batcher is not None:
            batcher.flush()
        engine = self._engine
        if engine is not None and engine.durability is not None:
            engine.durability.commit_barrier()
        return True

    def shutdown(self, timeout: float | None = None) -> bool:
        """Drain, stop the workers, and detach the batcher.

        The engine remains usable afterwards: with the runtime stopped,
        ``ECAEngine`` falls back to the synchronous path.  Returns the
        drain verdict (``False`` means *timeout* hit before quiescence;
        workers still stop after finishing their current instance).
        """
        quiesced = self.drain(timeout)
        with self._lock:
            self._running = False
            self._stop = True
            self._space.notify_all()
        for queue in self._queues:
            queue.notify_all()
        for thread in self._threads:
            thread.join(timeout=self._poll_interval * 4)
        self._threads.clear()
        with self._lock:
            # bookkeeping sweep: a shutdown that timed out mid-drain can
            # leave queued detections whose submit stamps nobody will
            # pop (workers are gone); clearing here keeps _enqueued_at
            # bounded across stop/attach cycles of long-lived processes
            self._enqueued_at.clear()
        batcher = self.batcher
        if batcher is not None:
            batcher.stop()
            if self._engine is not None:
                self._engine.grh.batcher = None
            self.batcher = None
        return quiesced

    # -- monitoring ----------------------------------------------------------

    def queue_depths(self) -> list[int]:
        """Current per-shard queue depths (monitoring snapshot)."""
        return [len(queue) for queue in self._queues]

    def inflight_depths(self) -> list[int]:
        """Per-shard popped-but-incomplete detections (snapshot)."""
        return list(self._shard_inflight)

    def utilization(self) -> list[float]:
        """Per-worker busy fraction since attach (monitoring snapshot)."""
        if self._started_at is None:
            return [0.0] * self.workers
        elapsed = max(time.monotonic() - self._started_at, 1e-9)
        return [min(busy / elapsed, 1.0) for busy in self._busy_time]

    def counters(self) -> dict:
        """Lifetime ingestion/execution counters (monitoring snapshot)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "errors": self.errors,
            "queued": self._size,
            "active": self._active,
            "inflight": self._inflight,
            # wait-stamp map size; tracks queued depth (regression
            # guard: a leak here would grow it past the queue bound)
            "wait_stamps": len(self._enqueued_at),
        }
