"""GRH dispatch batcher: coalesce concurrent requests per endpoint.

With several rule instances in flight, many component requests target
the same language service at nearly the same moment.  Each one is a
full transport round-trip — and for HTTP endpoints the round-trip, not
the evaluation, dominates.  :class:`DispatchBatcher` parks outgoing
``query``/``test`` requests for up to a *window* and ships every
request bound for the same address as one ``log:batch`` envelope
(PROTOCOL.md §10); the ``log:batchresults`` answer fans back
positionally, waking each blocked caller with exactly its own
response.

Scope is deliberately narrow:

* only ``query`` and ``test`` requests batch — they are read-only, so
  retrying a whole envelope after a transient failure re-evaluates but
  never re-effects.  Actions keep their per-tuple dedup-keyed path.
* only non-inline addresses batch — an in-process service is a plain
  function call, there is no round-trip to amortize.
* resilience is per-envelope: the batch goes through
  ``ResilienceManager.call`` like any single request, so retry
  policies and circuit breakers see batch failures exactly as they see
  single-request failures.  A per-request ``log:error`` *inside* a
  successful envelope is scoped to its one caller.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from ..grh.messages import (batch_to_xml, error_text, is_error,
                            xml_to_batch_results)
from ..grh.resilience import ServiceReportedError, TransientServiceFailure
from ..obs.attribution import record_wait

if TYPE_CHECKING:  # pragma: no cover
    from ..grh.handler import GenericRequestHandler
    from ..grh.registry import LanguageDescriptor
    from ..xmlmodel import Element


def _scoped_copy(exc: BaseException) -> BaseException:
    """Per-caller copy of a whole-envelope failure.

    Every parked caller re-raises its error on its own thread; handing
    all of them the *same* exception object means concurrent raises
    mutate its ``__traceback__`` racily and produce tracebacks mixing
    frames from different callers.  The copy chains to the original via
    ``__cause__`` so the envelope failure stays visible.
    """
    try:
        copy = type(exc)(*exc.args)
    except Exception:
        copy = TransientServiceFailure(str(exc))
    copy.__cause__ = exc
    return copy


class _Entry:
    """One parked request: its payload and the caller's wakeup slot."""

    __slots__ = ("payload", "event", "result", "error", "parked_at",
                 "parked")

    def __init__(self, payload: "Element") -> None:
        self.payload = payload
        self.event = threading.Event()
        self.result: Element | None = None
        self.error: BaseException | None = None
        #: when this request was parked; the flush stamps ``parked``
        #: (seconds spent waiting for co-travellers) so the caller can
        #: attribute its park time (PROTOCOL.md §14)
        self.parked_at = time.monotonic()
        self.parked: float | None = None


class _Bucket:
    """Requests accumulating for one address within one window."""

    __slots__ = ("descriptor", "deadline", "entries")

    def __init__(self, descriptor: "LanguageDescriptor",
                 deadline: float) -> None:
        self.descriptor = descriptor
        self.deadline = deadline
        self.entries: list[_Entry] = []


class DispatchBatcher:
    """Coalesces same-address GRH requests into ``log:batch`` envelopes.

    A bucket flushes when it reaches *max_batch* requests (flushed by
    the submitting thread, zero added latency) or when its *window*
    deadline passes (flushed by the background flusher thread).  The
    concurrent runtime wires one of these into
    ``GenericRequestHandler.batcher`` when built with
    ``Runtime(batching=True)``.
    """

    def __init__(self, grh: "GenericRequestHandler", window: float = 0.005,
                 max_batch: int = 16, max_timeout_scale: int = 4) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_timeout_scale < 1:
            raise ValueError("max_timeout_scale must be >= 1")
        self.grh = grh
        self.window = window
        self.max_batch = max_batch
        #: a deep envelope gets proportionally more wall-clock budget
        #: than a single request, capped at this factor (PROTOCOL.md §10)
        self.max_timeout_scale = max_timeout_scale
        self._lock = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self._stop = False
        # lifetime counters (monitoring snapshots); mutated under
        # ``_lock`` — submitters and the flusher increment concurrently,
        # and unlocked ``+= 1`` loses increments
        self.batches = 0
        self.batched_requests = 0
        self.size_flushes = 0
        self.deadline_flushes = 0
        self._flusher = threading.Thread(
            target=self._flush_loop, name="eca-batch-flusher", daemon=True)
        self._flusher.start()

    # -- caller side ---------------------------------------------------------

    def submit(self, address: str, descriptor: "LanguageDescriptor",
               payload: "Element") -> "Element":
        """Park *payload* for *address*; block until its batch answers.

        Returns this request's own response element, or raises its
        scoped error (``ServiceReportedError`` for a per-request
        ``log:error``, the envelope's failure for a whole-batch one).
        """
        entry = _Entry(payload)
        ripe: _Bucket | None = None
        with self._lock:
            if self._stop:
                raise TransientServiceFailure("dispatch batcher is stopped")
            bucket = self._buckets.get(address)
            if bucket is None:
                bucket = _Bucket(descriptor,
                                 time.monotonic() + self.window)
                self._buckets[address] = bucket
            bucket.entries.append(entry)
            if len(bucket.entries) >= self.max_batch:
                del self._buckets[address]
                self.size_flushes += 1
                ripe = bucket
        if ripe is not None:
            self._flush_bucket(address, ripe)
        while not entry.event.wait(1.0):
            if self._stop:
                raise TransientServiceFailure(
                    "dispatch batcher stopped while request was parked")
        if entry.parked is not None:
            # attributed on the caller's thread, where the GRH's wait
            # scope for this dispatch is open
            record_wait("batch_park", entry.parked)
        if entry.error is not None:
            raise entry.error
        return entry.result

    # -- flushing ------------------------------------------------------------

    def _flush_loop(self) -> None:
        pause = max(self.window / 2, 0.001)
        while not self._stop:
            time.sleep(pause)
            now = time.monotonic()
            due: list[tuple[str, _Bucket]] = []
            with self._lock:
                for address, bucket in list(self._buckets.items()):
                    if bucket.deadline <= now:
                        del self._buckets[address]
                        self.deadline_flushes += 1
                        due.append((address, bucket))
            for address, bucket in due:
                self._flush_bucket(address, bucket)

    def _flush_bucket(self, address: str, bucket: _Bucket) -> None:
        grh = self.grh
        entries = bucket.entries
        descriptor = bucket.descriptor
        flush_started = time.monotonic()
        for entry in entries:
            # park time ends when the envelope starts travelling; the
            # round-trip after this point is network/service time
            entry.parked = flush_started - entry.parked_at
        envelope = batch_to_xml([entry.payload for entry in entries])
        timeout = grh.resilience.timeout_for(descriptor)
        if timeout is not None:
            # the policy's timeout budgets ONE request; an envelope of n
            # requests gets n budgets, capped — otherwise a deep batch
            # is held to a single request's deadline (PROTOCOL.md §10)
            timeout *= min(len(entries), self.max_timeout_scale)

        def attempt_once():
            try:
                if timeout is not None:
                    response = grh.transport.send_batch(
                        address, envelope, timeout=timeout)
                else:
                    response = grh.transport.send_batch(address, envelope)
            except Exception as exc:
                if getattr(exc, "service_reported", False):
                    # §11 taxonomy: an HTTP error status from a live
                    # service refused the whole envelope cleanly
                    raise ServiceReportedError(str(exc)) from exc
                raise TransientServiceFailure(str(exc)) from exc
            if is_error(response):
                # the whole envelope was refused by a healthy service
                raise ServiceReportedError(error_text(response))
            return xml_to_batch_results(response, expected=len(entries))

        try:
            results = grh.resilience.call(address, descriptor, attempt_once)
        except BaseException as exc:
            for entry in entries:
                entry.error = _scoped_copy(exc)
                entry.event.set()
            return
        with self._lock:
            self.batches += 1
            self.batched_requests += len(entries)
        for entry, result in zip(entries, results):
            if is_error(result):
                entry.error = ServiceReportedError(error_text(result))
            else:
                entry.result = result
            entry.event.set()

    def flush(self) -> None:
        """Flush every pending bucket now (the runtime's drain path)."""
        with self._lock:
            due = list(self._buckets.items())
            self._buckets.clear()
        for address, bucket in due:
            self._flush_bucket(address, bucket)

    def stop(self) -> None:
        """Flush residuals and stop the flusher thread."""
        self.flush()
        self._stop = True
        self._flusher.join(timeout=2.0)
        # wake anything still parked (a submit that raced the stop)
        with self._lock:
            residual = list(self._buckets.items())
            self._buckets.clear()
        for address, bucket in residual:
            self._flush_bucket(address, bucket)

    def counters(self) -> dict:
        """Lifetime batching counters (monitoring snapshot)."""
        return {
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
        }
