"""Concurrent execution runtime for the ECA engine.

``repro.runtime`` makes the engine's natural parallelism — independent
rule instances (paper Section 4) — executable: a sharded worker pool
with bounded-queue admission control (:mod:`.pool`) and a per-endpoint
GRH dispatch batcher (:mod:`.batcher`).  The default engine stays
synchronous; construct with ``ECAEngine(grh, runtime=Runtime(...))`` to
opt in.  See PROTOCOL.md §10 and the README "Scaling" section.
"""

from .batcher import DispatchBatcher
from .pool import BACKPRESSURE_POLICIES, BackpressureError, Runtime

__all__ = ["Runtime", "BackpressureError", "BACKPRESSURE_POLICIES",
           "DispatchBatcher"]
