"""An indexed RDF triple store with cardinality statistics.

:class:`TripleStore` is the storage half of the ``repro.sparql``
subsystem (ROADMAP item 3): the three hash indexes of
:class:`repro.rdf.Graph` (SPO/POS/OSP, O(1) ``count`` for every
bound-mask) plus the *per-predicate statistics* the join planner orders
scans by — triples per predicate, distinct subjects and distinct
objects per predicate, all maintained incrementally on add/remove.

The planner's key quantity is the expected fan-out of a half-bound
pattern: how many objects does one subject have under predicate ``p``
on average (``?s`` bound at runtime, ``?o`` free), and vice versa.
Those are plain ratios of the maintained counters, so estimation is
O(1) per pattern and never touches the data.

The store also carries the executor's index probe counters (how often
each index answered a scan), surfaced through ``eca_sparql_*`` metrics
and ``/introspect/sparql``.
"""

from __future__ import annotations

from typing import Iterable

from ..rdf import Graph, Term, Triple

__all__ = ["TripleStore"]

#: probe counter keys: the three indexes plus the full-extent scan
PROBE_KINDS = ("spo", "pos", "osp", "scan")


class TripleStore(Graph):
    """A :class:`~repro.rdf.Graph` that keeps planner statistics.

    Fully substitutable for a plain graph (Turtle/RDF-XML parsers,
    the naive ``rdf.sparql`` evaluator and every service accepting a
    graph work unchanged); the extra bookkeeping is two dict updates
    per mutation.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        #: predicate → {subject: triple count}; ``len`` of the inner
        #: dict is the distinct-subject count for the predicate
        self._pred_subjects: dict[Term, dict[Term, int]] = {}
        #: executor probe tallies, keyed by PROBE_KINDS
        self.probes: dict[str, int] = dict.fromkeys(PROBE_KINDS, 0)
        super().__init__(triples)

    # -- mutation (statistics ride along) ------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> None:
        before = self.version
        super().add(subject, predicate, obj)
        if self.version != before:
            by_subject = self._pred_subjects.setdefault(predicate, {})
            by_subject[subject] = by_subject.get(subject, 0) + 1

    def remove(self, subject: Term, predicate: Term, obj: Term) -> bool:
        removed = super().remove(subject, predicate, obj)
        if removed:
            by_subject = self._pred_subjects[predicate]
            left = by_subject[subject] - 1
            if left:
                by_subject[subject] = left
            else:
                del by_subject[subject]
                if not by_subject:
                    del self._pred_subjects[predicate]
        return removed

    @classmethod
    def from_graph(cls, graph: Graph) -> "TripleStore":
        """An indexed copy of ``graph`` (namespaces included)."""
        store = cls(graph)
        store.namespaces.update(graph.namespaces)
        return store

    @classmethod
    def adopt(cls, graph: Graph) -> "TripleStore":
        """Upgrade a plain :class:`Graph` to a ``TripleStore`` *in
        place*, preserving object identity.

        Deployments share one mutable RDF world between services and
        the action runtime by passing the same graph object around; a
        copy would silently fork that world.  Adoption re-classes the
        object (both classes are plain-attribute Python classes) and
        derives the statistics from the already-built POS index, so
        every existing reference — and every future mutation through
        it — sees the indexed store.
        """
        if isinstance(graph, cls):
            return graph
        if type(graph) is not Graph:
            raise TypeError(f"can only adopt plain Graph instances, "
                            f"not {type(graph).__name__}")
        graph.__class__ = cls
        graph.probes = dict.fromkeys(PROBE_KINDS, 0)
        pred_subjects: dict[Term, dict[Term, int]] = {}
        for predicate, by_object in graph._pos.items():
            by_subject: dict[Term, int] = {}
            for subjects in by_object.values():
                for subject in subjects:
                    by_subject[subject] = by_subject.get(subject, 0) + 1
            pred_subjects[predicate] = by_subject
        graph._pred_subjects = pred_subjects
        return graph

    # -- statistics (all O(1)) ------------------------------------------------

    def predicate_count(self, predicate: Term) -> int:
        """Triples carrying ``predicate``."""
        return self._p_count.get(predicate, 0)

    def distinct_subjects(self, predicate: Term | None = None) -> int:
        """Distinct subjects under ``predicate`` (or store-wide)."""
        if predicate is None:
            return len(self._spo)
        return len(self._pred_subjects.get(predicate, ()))

    def distinct_objects(self, predicate: Term | None = None) -> int:
        """Distinct objects under ``predicate`` (or store-wide)."""
        if predicate is None:
            return len(self._osp)
        return len(self._pos.get(predicate, ()))

    def subject_fanout(self, predicate: Term) -> float:
        """Average objects per subject for ``predicate`` (≥ 1 when the
        predicate exists): the expected matches of ``(bound, p, ?o)``."""
        subjects = self.distinct_subjects(predicate)
        if not subjects:
            return 0.0
        return self.predicate_count(predicate) / subjects

    def object_fanout(self, predicate: Term) -> float:
        """Average subjects per object for ``predicate``: the expected
        matches of ``(?s, p, bound)``."""
        objects = self.distinct_objects(predicate)
        if not objects:
            return 0.0
        return self.predicate_count(predicate) / objects

    def predicate_stats(self, limit: int | None = None) -> list[dict]:
        """Per-predicate statistics, largest extent first (introspection
        and ``/introspect/sparql``)."""
        rows = [{
            "predicate": str(predicate),
            "triples": count,
            "distinct_subjects": self.distinct_subjects(predicate),
            "distinct_objects": self.distinct_objects(predicate),
        } for predicate, count in self._p_count.items()]
        rows.sort(key=lambda row: (-row["triples"], row["predicate"]))
        return rows[:limit] if limit is not None else rows

    def record_probes(self, tallies: dict[str, int]) -> None:
        """Fold one execution's index probe counts into the store."""
        for kind, amount in tallies.items():
            self.probes[kind] = self.probes.get(kind, 0) + amount

    def snapshot(self) -> dict:
        """Store-level view for metrics and the admin surface."""
        return {
            "triples": len(self),
            "predicates": len(self._p_count),
            "subjects": len(self._spo),
            "objects": len(self._osp),
            "version": self.version,
            "probes": dict(self.probes),
        }
