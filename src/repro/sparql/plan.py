"""Selectivity-driven join planning over the SPARQL-subset AST.

Compiles a parsed :class:`repro.rdf.sparql.SparqlQuery` into a
:class:`QueryPlan`: a tree of steps the vectorized executor
(:mod:`repro.sparql.exec`) runs over whole binding *sets*.

Planning decisions, all driven by the :class:`~repro.sparql.store.
TripleStore`'s O(1) statistics:

* **Join order** — the basic graph pattern's scans are ordered greedily
  by estimated matches-per-input-row: constants use exact index counts,
  runtime-bound join variables use per-predicate fan-outs (triples ÷
  distinct subjects/objects).  The most selective pattern runs first,
  and every later pattern is evaluated with the variables its
  predecessors bound.
* **Filter placement** — a ``FILTER`` runs at the earliest step at
  which every variable it mentions is either certainly bound or can no
  longer become bound in this group.  A filter mentioning a variable
  that a ``UNION``/``OPTIONAL`` may still bind stays after those (the
  naive evaluator's position); everything else sinks into the scan
  pipeline right where its variables complete, discarding rows before
  they fan out.
* **Subgroups** — every ``UNION`` branch and ``OPTIONAL`` group is planned
  recursively, seeded by the variables that are certainly bound where
  it joins (the binding-set pushdown boundary of the executor).

The planner records per-step row estimates; the executor tallies actual
rows, and the pair is exported as the ``eca_sparql_plan_rows`` metrics
and the ``/introspect/sparql`` recent-plans view, so misestimates are
observable rather than anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.sparql import (Expr, FilterExpr, GroupPattern, SparqlQuery,
                          TriplePattern, Variable, expression_variables,
                          parse_sparql)
from .store import TripleStore

__all__ = ["PlanError", "ScanStep", "FilterStep", "UnionStep",
           "OptionalStep", "GroupPlan", "QueryPlan", "plan_query",
           "explain"]

#: assumed pass-rate of a filter for downstream row estimates
_FILTER_SELECTIVITY = 0.5


class PlanError(ValueError):
    """Raised when a query cannot be compiled into a plan."""


def _status(term, bound: frozenset) -> str:
    if isinstance(term, Variable):
        return "bound" if term.name in bound else "free"
    return "const"


def _term_text(term) -> str:
    if isinstance(term, Variable):
        return f"?{term.name}"
    return repr(term)


def _pattern_text(pattern: TriplePattern) -> str:
    return (f"{_term_text(pattern.subject)} {_term_text(pattern.predicate)} "
            f"{_term_text(pattern.obj)}")


@dataclass(frozen=True)
class ScanStep:
    """One index scan joined against the incoming binding set."""

    pattern: TriplePattern
    #: access-path hint at plan time: which index answers this scan
    index: str
    #: estimated matches per incoming row
    per_row: float
    #: estimated rows after this step
    rows: float


@dataclass(frozen=True)
class FilterStep:
    expression: Expr
    #: variables the expression mentions (for the executor's env)
    variables: frozenset[str]
    text: str = ""


@dataclass(frozen=True)
class UnionStep:
    branches: tuple["GroupPlan", ...]
    rows: float


@dataclass(frozen=True)
class OptionalStep:
    plan: "GroupPlan"
    rows: float


@dataclass(frozen=True)
class GroupPlan:
    """An ordered pipeline for one group pattern.

    ``seed_vars`` are the certainly-bound variables execution is seeded
    with (for the root group: the pushed-down input binding set's
    columns); ``certain`` are the variables certainly bound in every
    output row.
    """

    steps: tuple
    seed_vars: tuple[str, ...]
    certain: frozenset[str]
    estimate: float
    #: the AST group this plan compiles (executor fallback + seeding)
    group: GroupPattern = None
    #: every variable the group can mention (runtime seed discovery)
    mentioned: frozenset[str] = frozenset()


@dataclass(frozen=True)
class QueryPlan:
    query: SparqlQuery
    root: GroupPlan
    estimate: float
    #: store fingerprint the statistics were read at
    store_version: int
    source: str = ""

    def describe(self) -> dict:
        """Portable plan summary for ``/introspect/sparql``."""
        return {"form": self.query.form,
                "estimate": self.estimate,
                "store_version": self.store_version,
                "stages": _describe_group(self.root)}


def _describe_group(group: GroupPlan) -> list[dict]:
    stages: list[dict] = []
    for step in group.steps:
        if isinstance(step, ScanStep):
            stages.append({"op": "scan",
                           "pattern": _pattern_text(step.pattern),
                           "index": step.index,
                           "per_row": round(step.per_row, 3),
                           "rows": round(step.rows, 3)})
        elif isinstance(step, FilterStep):
            stages.append({"op": "filter", "expr": step.text})
        elif isinstance(step, UnionStep):
            stages.append({"op": "union", "rows": round(step.rows, 3),
                           "branches": [_describe_group(branch)
                                        for branch in step.branches]})
        else:
            stages.append({"op": "optional", "rows": round(step.rows, 3),
                           "group": _describe_group(step.plan)})
    return stages


# -- cardinality estimation ----------------------------------------------------


def _estimate_scan(store: TripleStore, pattern: TriplePattern,
                   bound: frozenset) -> tuple[float, str]:
    """Expected matches per input row and the index answering the scan."""
    s_status = _status(pattern.subject, bound)
    p_status = _status(pattern.predicate, bound)
    o_status = _status(pattern.obj, bound)
    s_const = pattern.subject if s_status == "const" else None
    p_const = pattern.predicate if p_status == "const" else None
    o_const = pattern.obj if o_status == "const" else None
    index = _index_for(s_status != "free", p_status != "free",
                       o_status != "free")

    if "bound" not in (s_status, p_status, o_status):
        # every known position is a constant: the count is exact
        return float(store.count(s_const, p_const, o_const)), index

    total = float(len(store)) or 1.0
    if p_status == "const":
        extent = float(store.predicate_count(p_const))
        if extent == 0.0:
            return 0.0, index
        subjects = max(1, store.distinct_subjects(p_const))
        objects = max(1, store.distinct_objects(p_const))
        if o_const is not None:
            extent = float(store.count(None, p_const, o_const))
        elif s_const is not None:
            extent = float(store.count(s_const, p_const, None))
        estimate = extent
        if s_status == "bound":
            estimate /= subjects
        if o_status == "bound":
            estimate /= objects
        return estimate, index

    # predicate is a variable: fall back to store-wide shape statistics
    estimate = total
    if p_status == "bound":
        estimate /= max(1, len(store._p_count))
    if s_status == "bound":
        estimate /= max(1, store.distinct_subjects())
    elif s_const is not None:
        estimate = min(estimate, float(store.count(s_const, None, None)))
    if o_status == "bound":
        estimate /= max(1, store.distinct_objects())
    elif o_const is not None:
        estimate = min(estimate, float(store.count(None, None, o_const)))
    return estimate, index


def _index_for(s_known: bool, p_known: bool, o_known: bool) -> str:
    """Mirror of :meth:`repro.rdf.Graph.triples` index dispatch."""
    if s_known:
        if o_known and not p_known:
            return "osp"
        return "spo"
    if p_known:
        return "pos"
    if o_known:
        return "osp"
    return "scan"


# -- group planning -----------------------------------------------------------


@dataclass
class _FilterSlot:
    expression: Expr
    mentioned: frozenset[str]
    #: variables that must be bound before the filter may run early
    needs: frozenset[str]
    late: bool
    placed: bool = field(default=False)

    def step(self) -> FilterStep:
        return FilterStep(self.expression, self.mentioned,
                          _expr_text(self.expression))


def _expr_text(expr: Expr) -> str:
    from ..rdf.sparql import BinOp, Call, NotOp, TermExpr, VarExpr
    if isinstance(expr, VarExpr):
        return f"?{expr.name}"
    if isinstance(expr, TermExpr):
        return repr(expr.term)
    if isinstance(expr, BinOp):
        return (f"({_expr_text(expr.left)} {expr.op} "
                f"{_expr_text(expr.right)})")
    if isinstance(expr, NotOp):
        return f"!{_expr_text(expr.operand)}"
    if isinstance(expr, Call):
        inner = ", ".join(_expr_text(arg) for arg in expr.arguments)
        return f"{expr.name}({inner})"
    return "?"


def _plan_group(store: TripleStore, group: GroupPattern,
                seed_vars: frozenset[str], incoming: float) -> GroupPlan:
    bound = frozenset(seed_vars)
    bgp_vars = set()
    for pattern in group.patterns:
        bgp_vars |= pattern.variables()

    # variables a union/optional of this group may still bind: filters
    # touching them must keep the naive evaluator's trailing position
    late_vars: set[str] = set()
    for union in group.unions:
        for branch in union.branches:
            late_vars |= branch.mentioned_variables()
    for optional in group.optionals:
        late_vars |= optional.group.mentioned_variables()

    slots = []
    for filter_expr in group.filters:
        mentioned = frozenset(expression_variables(filter_expr.expression))
        late = bool(mentioned & late_vars)
        needs = mentioned & (bound | bgp_vars)
        slots.append(_FilterSlot(filter_expr.expression, mentioned,
                                 frozenset(needs), late))

    steps: list = []
    rows = max(incoming, 1.0)

    def place_ready_filters() -> None:
        nonlocal rows
        for slot in slots:
            if not slot.placed and not slot.late and slot.needs <= bound:
                steps.append(slot.step())
                slot.placed = True
                rows *= _FILTER_SELECTIVITY

    place_ready_filters()

    remaining = list(group.patterns)
    while remaining:
        best = None
        best_cost = None
        best_index = ""
        for pattern in remaining:
            per_row, index = _estimate_scan(store, pattern, bound)
            # prefer connected patterns: a scan sharing no variable with
            # the bound set is a cross product — its real cost is the
            # full extent regardless of how small the extent looks
            connected = bool(pattern.variables() & bound) or not bound
            cost = per_row if connected else per_row * 1e6
            # credit patterns that complete a pending filter's variables:
            # the filter runs immediately after and discards rows before
            # the remaining scans fan them out
            would_bind = bound | pattern.variables()
            for slot in slots:
                if not slot.placed and not slot.late \
                        and slot.needs <= would_bind \
                        and not slot.needs <= bound:
                    cost *= _FILTER_SELECTIVITY
            if best_cost is None or cost < best_cost:
                best, best_cost, best_index = pattern, cost, index
                best_per_row = per_row
        remaining.remove(best)
        rows *= best_per_row
        bound = bound | best.variables()
        steps.append(ScanStep(best, best_index, best_per_row, rows))
        place_ready_filters()

    for union in group.unions:
        branches = []
        per_row = 0.0
        for branch in union.branches:
            branch_seed = frozenset(branch.mentioned_variables()) & bound
            branch_plan = _plan_group(store, branch, branch_seed, 1.0)
            branches.append(branch_plan)
            per_row += branch_plan.estimate
        rows *= per_row
        steps.append(UnionStep(tuple(branches), rows))
        certain_after = None
        for branch_plan in branches:
            certain_after = branch_plan.certain if certain_after is None \
                else certain_after & branch_plan.certain
        bound = bound | (certain_after or frozenset())
        place_ready_filters()

    for optional in group.optionals:
        optional_seed = frozenset(
            optional.group.mentioned_variables()) & bound
        optional_plan = _plan_group(store, optional.group, optional_seed, 1.0)
        rows *= max(1.0, optional_plan.estimate)
        steps.append(OptionalStep(optional_plan, rows))
        # OPTIONAL never makes a variable certain

    for slot in slots:
        if not slot.placed:
            steps.append(slot.step())
            slot.placed = True
            rows *= _FILTER_SELECTIVITY

    return GroupPlan(tuple(steps), tuple(sorted(seed_vars)),
                     frozenset(bound), rows, group,
                     frozenset(group.mentioned_variables()))


def plan_query(store: TripleStore, query: SparqlQuery | str,
               seed_vars: frozenset[str] | set[str] = frozenset()
               ) -> QueryPlan:
    """Compile ``query`` into an executable plan against ``store``.

    ``seed_vars`` are the variables of the pushed-down input binding
    set (empty for a standalone query): the planner treats them as
    bound from the start, which is what makes an input-selective join
    order possible.
    """
    parsed = parse_sparql(query) if isinstance(query, str) else query
    source = query if isinstance(query, str) else ""
    root = _plan_group(store, parsed.where, frozenset(seed_vars), 1.0)
    return QueryPlan(parsed, root, root.estimate, store.version, source)


def explain(plan: QueryPlan) -> str:
    """Human-readable plan rendering (the ``EXPLAIN`` view)."""
    head = (f"{plan.query.form} estimated_rows={plan.estimate:.1f} "
            f"store_version={plan.store_version}")
    lines = [head]
    _explain_group(plan.root, lines, depth=1)
    return "\n".join(lines)


def _explain_group(group: GroupPlan, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    if group.seed_vars:
        seeds = ", ".join("?" + name for name in group.seed_vars)
        lines.append(f"{pad}seed [{seeds}]")
    for step in group.steps:
        if isinstance(step, ScanStep):
            lines.append(f"{pad}scan ({_pattern_text(step.pattern)}) "
                         f"index={step.index} per_row={step.per_row:.2f} "
                         f"rows={step.rows:.1f}")
        elif isinstance(step, FilterStep):
            lines.append(f"{pad}filter {step.text}")
        elif isinstance(step, UnionStep):
            lines.append(f"{pad}union rows={step.rows:.1f}")
            for number, branch in enumerate(step.branches, 1):
                lines.append(f"{pad}  branch {number}:")
                _explain_group(branch, lines, depth + 2)
        else:
            lines.append(f"{pad}optional rows={step.rows:.1f}")
            _explain_group(step.plan, lines, depth + 1)
