"""The framework-aware SPARQL component-language service.

:class:`SparqlQueryService` is the planned/indexed counterpart of the
naive :class:`repro.services.SparqlService`: an LP-style query service
registered under its own language URI (:data:`RDF_SPARQL_LANG`) whose
``query`` hook compiles the component text once (LRU plan cache keyed
on query text + seed signature, invalidated by the store's version
counter) and executes it vectorized over the *whole* input binding set.

**Binding-set pushdown** (the headline difference from the generic
path, PROTOCOL.md §15): the request's input relation is converted to a
seed table — ``Uri`` → IRI, ``str`` → plain literal, ``int``/integral
``float`` → ``xsd:integer``, other ``float`` → ``xsd:double``,
``bool`` → ``xsd:boolean``, exactly the canonical forms the per-tuple
``{Var}`` substitution path produces — and the executor joins the query
against all input tuples in one pass.  The seeded join is RDF
*term*-equality (SPARQL semantics); the engine's later relation join
re-applies its looser value equality, so pushdown only removes tuples a
textual per-tuple substitution would also have removed.

Solution modifiers (``DISTINCT``/``ORDER BY``/``LIMIT``) are applied
*globally*, after the seeded join — the service evaluates one query
over one store, unlike the per-tuple substitution path which re-runs
the query (and its modifiers) once per input tuple.

Queries still using ``{Var}`` placeholders take the compatible
per-tuple textual path (each substituted query is itself planned and
cached), so existing opaque-style components keep working unchanged.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import replace

from ..bindings import Relation, Uri
from ..grh.messages import Request
from ..obs.trace import current_span_sink
from ..rdf import Graph, Literal, URIRef, XSD
from ..rdf.sparql import Solution
from ..services.base import LanguageService, ServiceError
from ..services.query_services import (_PLACEHOLDER_RE,
                                       _per_tuple_lp_evaluation)
from .exec import run_plan, solutions_from_table, table_from_solutions
from .instrument import install_sparql_metrics, register_service
from .plan import QueryPlan, explain, plan_query
from .store import TripleStore

__all__ = ["SparqlQueryService", "RDF_SPARQL_LANG"]

#: language URI of the planned/indexed SPARQL backend (the naive
#: sparql-lite URI stays registered for the unoptimized service)
RDF_SPARQL_LANG = "http://www.semwebtech.org/languages/2006/rdf-sparql"


def _term_for(value):
    """The RDF term an engine value seeds a join variable with, or
    ``None`` when the value has no canonical term form (then the
    variable stays unseeded for that tuple and the engine's later
    relation join applies the constraint instead)."""
    if isinstance(value, Uri):
        return URIRef(str(value))
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD.boolean)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD.integer)
    if isinstance(value, float):
        if value.is_integer():
            return Literal(str(int(value)), datatype=XSD.integer)
        return Literal(str(value), datatype=XSD.double)
    if isinstance(value, str):
        return Literal(value)
    return None


def _value_for(term):
    """Term → engine value (same rules as the naive SparqlService)."""
    if isinstance(term, URIRef):
        return Uri(str(term))
    if isinstance(term, Literal):
        return term.to_python()
    return str(term)


class SparqlQueryService(LanguageService):
    """LP-style query service over an indexed, planned triple store."""

    service_name = "rdf-sparql"
    #: this service understands ``log:batch`` envelopes natively (the
    #: transport shim applies; declared for registry introspection)
    supports_batch = True

    def __init__(self, store: Graph | None = None,
                 prefixes: dict[str, str] | None = None, *,
                 metrics=None, plan_cache_size: int = 256,
                 recent_limit: int = 20) -> None:
        if store is None:
            store = TripleStore()
        elif not isinstance(store, TripleStore):
            store = TripleStore.from_graph(store)
        self.store: TripleStore = store
        self.prefixes = dict(prefixes or {})
        self.plan_cache_size = plan_cache_size
        self._plans: "OrderedDict[tuple, QueryPlan]" = OrderedDict()
        #: most recent executed plans with estimates and actuals, newest
        #: last — the ``/introspect/sparql`` recent-plans view
        self.recent_plans: deque = deque(maxlen=recent_limit)
        self.stats = {"queries": 0, "cache_hits": 0, "pushdown_queries": 0,
                      "fallback_rows": 0}
        self._instruments = (install_sparql_metrics(metrics)
                             if metrics is not None else None)
        register_service(self)

    # -- planning ------------------------------------------------------------

    def _prologue(self) -> str:
        return "".join(f"PREFIX {prefix}: <{uri}>\n"
                       for prefix, uri in self.prefixes.items())

    def plan_for(self, text: str,
                 seed_vars: frozenset[str] = frozenset()
                 ) -> tuple[QueryPlan, bool]:
        """The cached plan for ``text`` (returns ``(plan, cache_hit)``).

        Cache entries are keyed on the query text plus the seed-variable
        signature (seeds change join order) and die with the store
        version they were costed against: any mutation invalidates.
        """
        key = (text, tuple(sorted(seed_vars)))
        cached = self._plans.get(key)
        if cached is not None and cached.store_version == self.store.version:
            self._plans.move_to_end(key)
            return cached, True
        plan = plan_query(self.store, text, seed_vars)
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.plan_cache_size:
            self._plans.popitem(last=False)
        return plan, False

    def explain(self, text: str,
                seed_vars: frozenset[str] = frozenset()) -> str:
        """Human-readable plan for a query (admin/debugging surface)."""
        plan, _hit = self.plan_for(self._prologue() + text, seed_vars)
        return explain(plan)

    # -- seeding -------------------------------------------------------------

    @staticmethod
    def _seed_solutions(bindings: Relation,
                        mentioned: set[str]) -> list[Solution]:
        """Input tuples as term-valued solutions over query variables."""
        seeds: list[Solution] = []
        for binding in bindings:
            seed: Solution = {}
            for name, value in binding.items():
                if name not in mentioned:
                    continue
                term = _term_for(value)
                if term is not None:
                    seed[name] = term
            seeds.append(seed)
        return seeds

    # -- protocol hook -------------------------------------------------------

    def query(self, request: Request) -> Relation:
        source = self.component_text(request)
        if _PLACEHOLDER_RE.search(source):
            # compatibility path: textual {Var} substitution, one
            # (planned, cached) evaluation per input tuple
            return _per_tuple_lp_evaluation(
                source, request.bindings,
                lambda text: self._evaluate(text, Relation([])))
        return self._evaluate(source, request.bindings)

    def _evaluate(self, source: str, bindings: Relation) -> Relation:
        text = self._prologue() + source
        started = time.perf_counter()
        try:
            parsed_plan, seeds, seed_table = self._prepare(text, bindings)
        except Exception as exc:
            raise ServiceError(str(exc)) from exc
        plan, cache_hit = parsed_plan
        try:
            table, stats = run_plan(self.store, plan, seed_table)
        except Exception as exc:
            raise ServiceError(str(exc)) from exc
        query = plan.query
        if query.form == "ASK":
            result = Relation([{}] if table.rows else [])
            actual = len(result)
        else:
            solutions = solutions_from_table(table)
            if query.variables and seed_table is not None:
                # keep the input linkage: project the seeded columns
                # alongside the selected variables so the engine's later
                # join ties each answer back to its input tuple
                extras = tuple(name for name in seed_table.columns
                               if name not in query.variables)
                query = replace(query, variables=query.variables + extras)
            from ..rdf.sparql import finalize_select
            solutions = finalize_select(query, solutions)
            result = Relation([
                {name: _value_for(term) for name, term in solution.items()}
                for solution in solutions])
            actual = len(solutions)
        elapsed = time.perf_counter() - started
        self._record(plan, stats, elapsed, cache_hit, seeds, actual)
        return result

    def _prepare(self, text: str, bindings: Relation):
        """Parse + seed + plan; split out so protocol errors are clean."""
        parsed = parse_sparql_cached(text)
        seeds: list[Solution] = []
        seed_table = None
        if len(bindings):
            mentioned = parsed.where.mentioned_variables()
            seeds = self._seed_solutions(bindings, mentioned)
            if any(seeds):
                seed_table = table_from_solutions(seeds)
        seed_vars = seed_table.sure if seed_table is not None else frozenset()
        plan, cache_hit = self.plan_for(text, frozenset(seed_vars))
        return (plan, cache_hit), seeds, seed_table

    def _record(self, plan: QueryPlan, stats, elapsed: float,
                cache_hit: bool, seeds: list, actual: int) -> None:
        self.stats["queries"] += 1
        if cache_hit:
            self.stats["cache_hits"] += 1
        if seeds:
            self.stats["pushdown_queries"] += 1
        self.stats["fallback_rows"] += stats.fallback_rows
        sink = current_span_sink()
        if sink is not None:
            # co-located traced caller: one child span per plan stage,
            # adopted under the GRH request span (PROTOCOL.md §8) so the
            # critical-path analyzer attributes SPARQL time per stage
            for stage in stats.stages:
                sink.append((f"sparql:{stage['op']}", self.service_name,
                             "ok", stage["seconds"]))
        self.recent_plans.append({
            "query": (plan.source or "")[:200],
            "form": plan.query.form,
            "estimated_rows": round(plan.estimate, 2),
            "actual_rows": actual,
            "seconds": elapsed,
            "cache_hit": cache_hit,
            "seed_rows": len(seeds),
            "stages": [{"op": stage["op"],
                        "estimated": stage["estimated"],
                        "rows": stage["rows"]}
                       for stage in stats.stages],
            "plan": plan.describe(),
        })
        if self._instruments is not None:
            self._instruments.observe(self.service_name, plan.query.form,
                                      elapsed, plan.estimate, actual,
                                      stats.probes, cache_hit, len(seeds))

    # -- introspection -------------------------------------------------------

    def introspection(self) -> dict:
        """The ``/introspect/sparql`` view of this service."""
        return {
            "service": self.service_name,
            "store": self.store.snapshot(),
            "predicates": self.store.predicate_stats(limit=20),
            "stats": dict(self.stats),
            "plan_cache": {"entries": len(self._plans),
                           "capacity": self.plan_cache_size},
            "recent_plans": list(self.recent_plans),
        }


# parsing is cheap relative to execution but not free on the per-tuple
# compatibility path, where the same substituted text repeats; a tiny
# LRU mirrors the plan cache's keying without its version sensitivity
_PARSE_CACHE: "OrderedDict[str, object]" = OrderedDict()
_PARSE_CACHE_SIZE = 512


def parse_sparql_cached(text: str):
    from ..rdf.sparql import parse_sparql
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        _PARSE_CACHE.move_to_end(text)
        return cached
    parsed = parse_sparql(text)
    _PARSE_CACHE[text] = parsed
    while len(_PARSE_CACHE) > _PARSE_CACHE_SIZE:
        _PARSE_CACHE.popitem(last=False)
    return parsed
