"""``repro.sparql`` — the indexed, planned SPARQL backend (ROADMAP 3).

Four layers over one store:

* :mod:`repro.sparql.store` — :class:`TripleStore`: SPO/POS/OSP indexes
  (inherited from :class:`repro.rdf.Graph`) plus incremental
  per-predicate cardinality statistics;
* :mod:`repro.sparql.plan` — the selectivity-driven join planner over
  the :mod:`repro.rdf.sparql` AST (greedy scan ordering, filter
  pushdown, per-subgroup seeding) with ``explain`` output;
* :mod:`repro.sparql.exec` — the vectorized executor joining whole
  binding sets (index nested-loop with substitution, hash-join-back for
  ``UNION``/``OPTIONAL``), differentially tested against the naive
  evaluator;
* :mod:`repro.sparql.service` — :class:`SparqlQueryService`, the
  framework-aware component language with binding-set pushdown,
  registered under :data:`RDF_SPARQL_LANG`.

Observability rides along in :mod:`repro.sparql.instrument`
(``eca_sparql_*`` metrics, ``/introspect/sparql``).
"""

from .exec import (ABSENT, ExecStats, Table, run_ask, run_plan, run_select,
                   solutions_from_table, table_from_solutions)
from .instrument import (ROW_BUCKETS, SparqlInstruments,
                         install_sparql_metrics, live_services,
                         live_snapshots, register_service)
from .plan import (FilterStep, GroupPlan, OptionalStep, PlanError, QueryPlan,
                   ScanStep, UnionStep, explain, plan_query)
from .service import RDF_SPARQL_LANG, SparqlQueryService
from .store import TripleStore

__all__ = [
    "TripleStore",
    "PlanError", "ScanStep", "FilterStep", "UnionStep", "OptionalStep",
    "GroupPlan", "QueryPlan", "plan_query", "explain",
    "ABSENT", "Table", "ExecStats", "run_plan", "run_select", "run_ask",
    "solutions_from_table", "table_from_solutions",
    "SparqlQueryService", "RDF_SPARQL_LANG",
    "install_sparql_metrics", "SparqlInstruments", "register_service",
    "live_services", "live_snapshots", "ROW_BUCKETS",
]
