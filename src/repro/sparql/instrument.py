"""SPARQL-backend observability: metrics, snapshots, registries.

Every :class:`~repro.sparql.service.SparqlQueryService` registers
itself (weakly) with this module when constructed, mirroring the
``repro.match`` pattern, so two consumers see the whole process with no
extra wiring:

* :func:`install_sparql_metrics` adds the ``eca_sparql_*`` family to a
  :class:`~repro.obs.metrics.MetricsRegistry` — query latency
  histogram, estimated-vs-actual row histograms (the planner's
  misestimate signal), index probe counters, plan-cache hit counter and
  scrape-time store-size gauges aggregated over all live services;
* the admin surface's ``/introspect/sparql`` route renders
  :func:`live_snapshots` (PROTOCOL.md §15).

The weak registry never keeps a service (or its store) alive: a dropped
service disappears from scrapes on the next cycle.
"""

from __future__ import annotations

import threading
import weakref

__all__ = ["register_service", "live_services", "live_snapshots",
           "install_sparql_metrics", "SparqlInstruments", "ROW_BUCKETS"]

#: histogram buckets for result-set/estimate row counts (rows, not
#: seconds): the quantity the planner tries to predict
ROW_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
               1000.0, 10000.0, 100000.0)

_lock = threading.Lock()
_services: "weakref.WeakSet" = weakref.WeakSet()


def register_service(service) -> None:
    """Track a live SPARQL service for process-wide metrics/introspection."""
    with _lock:
        _services.add(service)


def live_services() -> list:
    with _lock:
        return list(_services)


def live_snapshots() -> list[dict]:
    """One ``/introspect/sparql`` view per live service, stable order."""
    snapshots = [service.introspection() for service in live_services()]
    snapshots.sort(key=lambda view: (view["service"],
                                     -view["store"]["triples"]))
    return snapshots


def _aggregate(field: str) -> dict[tuple[str, ...], float]:
    """Sum one store-snapshot field per service label over live services."""
    totals: dict[tuple[str, ...], float] = {}
    for service in live_services():
        label = (service.service_name,)
        totals[label] = totals.get(label, 0.0) + \
            service.store.snapshot()[field]
    return totals


class SparqlInstruments:
    """The handle a service uses to record per-query observations."""

    def __init__(self, latency, queries, cache_hits, probes,
                 estimated_rows, actual_rows, pushdown_seeds) -> None:
        self._latency = latency
        self._queries = queries
        self._cache_hits = cache_hits
        self._probes = probes
        self._estimated = estimated_rows
        self._actual = actual_rows
        self._pushdown = pushdown_seeds

    def observe(self, service_name: str, form: str, seconds: float,
                estimated: float, actual: int, probes: dict[str, int],
                cache_hit: bool, seed_rows: int) -> None:
        self._latency.labels(service_name).observe(seconds)
        self._queries.labels(service_name, form).inc()
        if cache_hit:
            self._cache_hits.labels(service_name).inc()
        for index, amount in probes.items():
            if amount:
                self._probes.labels(service_name, index).inc(amount)
        self._estimated.labels(service_name).observe(float(estimated))
        self._actual.labels(service_name).observe(float(actual))
        if seed_rows:
            self._pushdown.labels(service_name).observe(float(seed_rows))


def install_sparql_metrics(registry) -> SparqlInstruments:
    """Register the §15 SPARQL metrics on ``registry`` (idempotent).

    Scrape-time gauges (no per-query cost):

    * ``eca_sparql_store_triples{service=…}`` / ``…_store_predicates`` —
      store sizes aggregated over live services.

    Per-query instruments, returned for the owning service to drive:

    * ``eca_sparql_query_seconds{service=…}`` latency histogram;
    * ``eca_sparql_queries_total{service=…,form=…}`` counter;
    * ``eca_sparql_plan_cache_hits_total{service=…}`` counter;
    * ``eca_sparql_index_probes_total{service=…,index=…}`` counter —
      which of SPO/POS/OSP (or the full scan) answered the scans;
    * ``eca_sparql_estimated_rows`` / ``eca_sparql_actual_rows``
      histograms — the plan-cost-vs-actual pair;
    * ``eca_sparql_pushdown_seed_rows`` histogram — input binding-set
      sizes pushed into the join.
    """
    registry.gauge(
        "eca_sparql_store_triples",
        "Triples held by live SPARQL stores",
        labels=("service",),
        callback=lambda: _aggregate("triples"))
    registry.gauge(
        "eca_sparql_store_predicates",
        "Distinct predicates held by live SPARQL stores",
        labels=("service",),
        callback=lambda: _aggregate("predicates"))
    latency = registry.histogram(
        "eca_sparql_query_seconds",
        "SPARQL query latency through the planned executor",
        labels=("service",))
    queries = registry.counter(
        "eca_sparql_queries_total",
        "SPARQL queries answered, by query form",
        labels=("service", "form"))
    cache_hits = registry.counter(
        "eca_sparql_plan_cache_hits_total",
        "Queries answered with a cached plan (same text, same store "
        "version)",
        labels=("service",))
    probes = registry.counter(
        "eca_sparql_index_probes_total",
        "Index probes issued by scans, by index",
        labels=("service", "index"))
    estimated = registry.histogram(
        "eca_sparql_estimated_rows",
        "Planner-estimated result rows per query",
        labels=("service",), buckets=ROW_BUCKETS)
    actual = registry.histogram(
        "eca_sparql_actual_rows",
        "Actual result rows per query",
        labels=("service",), buckets=ROW_BUCKETS)
    pushdown = registry.histogram(
        "eca_sparql_pushdown_seed_rows",
        "Input binding-set sizes pushed down into the join",
        labels=("service",), buckets=ROW_BUCKETS)
    return SparqlInstruments(latency, queries, cache_hits, probes,
                             estimated, actual, pushdown)
