"""Vectorized plan execution over whole binding sets.

Where the naive :mod:`repro.rdf.sparql` evaluator backtracks one
solution dict at a time (copying the dict per candidate triple), this
executor pushes an entire binding *set* — a :class:`Table` of tuple
rows — through the plan:

* **Scan** — index nested-loop join with binding substitution: for each
  input row, the pattern's bound positions are substituted and the
  store's matching index (SPO/POS/OSP) is probed once; matches append
  the fresh columns to the row tuple.  No per-candidate dict copies.
* **Filter** — compiled against the mentioned columns only, reusing the
  naive evaluator's expression semantics verbatim (evaluation errors
  eliminate the row, SPARQL spec).
* **Union / Optional** — the subplan is executed *once* over the
  distinct seed projections of the outer table, then hash-joined back
  (inner join for ``UNION``, left outer for ``OPTIONAL``).  Rows whose
  seed variables are only maybe-bound (absent in that row) fall back to
  the naive evaluator per row, so semantics never diverge.

``_ABSENT`` marks a column with no binding in a given row (OPTIONAL
that didn't match, UNION branch that binds different variables,
heterogeneous pushdown input bindings); ``Table.sure`` names the
columns guaranteed present in every row, which gates the scan fast
path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..rdf.sparql import (SparqlEvaluationError, Solution, Variable,
                          _eval_filter, _evaluate_group, _truth,
                          finalize_select)
from .plan import (FilterStep, GroupPlan, OptionalStep, QueryPlan, ScanStep,
                   UnionStep)
from .store import TripleStore

__all__ = ["ABSENT", "Table", "ExecStats", "run_plan", "run_select",
           "run_ask", "solutions_from_table", "table_from_solutions"]


class _Absent:
    """Sentinel: this row carries no binding for this column."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<absent>"


ABSENT = _Absent()


@dataclass
class Table:
    """A binding set: named columns over tuple rows.

    ``sure`` is the set of columns certainly bound (never ``ABSENT``)
    in every row — the executor's fast paths key on it.
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    sure: frozenset[str]

    @classmethod
    def unit(cls) -> "Table":
        """The single empty row: the seed of a standalone query."""
        return cls((), [()], frozenset())


@dataclass
class ExecStats:
    """Actuals collected during one plan execution, paired with the
    plan's estimates by the metrics layer and ``/introspect/sparql``."""

    stages: list[dict] = field(default_factory=list)
    probes: dict[str, int] = field(default_factory=dict)
    rows_in: int = 0
    rows_out: int = 0
    fallback_rows: int = 0


def table_from_solutions(solutions: list[Solution],
                         columns: tuple[str, ...] | None = None) -> Table:
    """Build a table from solution dicts (pushdown input seeding)."""
    if columns is None:
        names: set[str] = set()
        for solution in solutions:
            names |= solution.keys()
        columns = tuple(sorted(names))
    rows = [tuple(solution.get(name, ABSENT) for name in columns)
            for solution in solutions]
    sure = frozenset(name for name in columns
                     if all(solution.get(name) is not None
                            and name in solution for solution in solutions))
    return Table(columns, rows, sure)


def solutions_from_table(table: Table) -> list[Solution]:
    """Rows back to solution dicts, dropping absent columns."""
    columns = table.columns
    return [{name: value for name, value in zip(columns, row)
             if value is not ABSENT}
            for row in table.rows]


# -- step execution -----------------------------------------------------------


def _probe_kind(s, p, o) -> str:
    """Which index answers ``triples(s, p, o)`` (mirrors Graph.triples)."""
    if s is not None:
        if p is None and o is not None:
            return "osp"
        return "spo"
    if p is not None:
        return "pos"
    if o is not None:
        return "osp"
    return "scan"


def _run_scan(store: TripleStore, step: ScanStep, table: Table,
              probes: dict[str, int]) -> Table:
    pattern = step.pattern
    columns = table.columns
    index_of = {name: position for position, name in enumerate(columns)}
    # classify the three pattern positions against the table's columns
    slots = []  # (kind, payload, name): const/col/fresh/dup
    fresh: list[str] = []
    fresh_slot: dict[str, int] = {}
    for term in (pattern.subject, pattern.predicate, pattern.obj):
        if isinstance(term, Variable):
            name = term.name
            if name in index_of:
                slots.append(("col", index_of[name], name))
            elif name in fresh_slot:
                slots.append(("dup", fresh_slot[name], name))
            else:
                fresh_slot[name] = len(fresh)
                fresh.append(name)
                slots.append(("fresh", fresh_slot[name], name))
        else:
            slots.append(("const", term, None))
    out_columns = columns + tuple(fresh)
    out_sure = table.sure | pattern.variables()
    out_rows: list[tuple] = []
    triples = store.triples

    col_names = [name for kind, _, name in slots if kind == "col"]
    if all(name in table.sure for name in col_names):
        # fast path: every substituted column is certainly bound
        base = [None, None, None]
        const_positions = []
        col_positions = []
        var_positions = []  # (triple position, fresh slot)
        for position, (kind, payload, _name) in enumerate(slots):
            if kind == "const":
                base[position] = payload
            elif kind == "col":
                col_positions.append((position, payload))
            else:  # fresh or dup share the fresh-slot consistency check
                var_positions.append((position, payload))
        del const_positions
        n_fresh = len(fresh)
        # the bound-position mask is row-invariant here, so the probed
        # index is too: tally it once per row without re-deriving
        known = [value is not None for value in base]
        for position, _column in col_positions:
            known[position] = True
        kind = _probe_kind(*(object() if flag else None for flag in known))
        has_dup = any(slot_kind == "dup" for slot_kind, _, _ in slots)
        if not has_dup and n_fresh:
            # no repeated variable: every match extends the row, so the
            # inner loop is a plain projection of the fresh positions
            fresh_positions = [position for position, _slot in var_positions]
            append = out_rows.append
            probes[kind] = probes.get(kind, 0) + len(table.rows)
            if not col_positions:
                # the probe itself is row-invariant: match once and
                # cross-extend every row
                if base[1] is not None and base[0] is None \
                        and base[2] is None:
                    # predicate extent: read the POS buckets directly
                    # instead of paying the triples() generator per match
                    matches = [(subj, obj) for obj, subjects in
                               store._pos.get(base[1], {}).items()
                               for subj in subjects]
                else:
                    matches = [tuple(triple[position]
                                     for position in fresh_positions)
                               for triple in
                               triples(base[0], base[1], base[2])]
                out_rows = [row + match
                            for row in table.rows for match in matches]
                return Table(out_columns, out_rows, out_sure)
            if len(col_positions) == 1 and base[1] is not None:
                # one substituted position under a constant predicate:
                # the two dominant join shapes probe an index bucket
                # per row with no intermediate triple tuples
                position, column = col_positions[0]
                if position == 0 and base[2] is None:
                    spo = store._spo
                    predicate, empty = base[1], {}
                    for row in table.rows:
                        for obj in spo.get(row[column],
                                           empty).get(predicate, ()):
                            append(row + (obj,))
                    return Table(out_columns, out_rows, out_sure)
                if position == 2 and base[0] is None:
                    by_object = store._pos.get(base[1], {})
                    for row in table.rows:
                        for subj in by_object.get(row[column], ()):
                            append(row + (subj,))
                    return Table(out_columns, out_rows, out_sure)
            for row in table.rows:
                vals = base[:]
                for position, column in col_positions:
                    vals[position] = row[column]
                for triple in triples(vals[0], vals[1], vals[2]):
                    append(row + tuple(triple[position]
                                       for position in fresh_positions))
            return Table(out_columns, out_rows, out_sure)
        for row in table.rows:
            vals = base[:]
            for position, column in col_positions:
                vals[position] = row[column]
            probes[kind] = probes.get(kind, 0) + 1
            for triple in triples(vals[0], vals[1], vals[2]):
                if n_fresh == 0:
                    out_rows.append(row)
                    continue
                new = [None] * n_fresh
                consistent = True
                for position, slot in var_positions:
                    value = triple[position]
                    if new[slot] is None:
                        new[slot] = value
                    elif new[slot] != value:
                        consistent = False
                        break
                if consistent:
                    out_rows.append(row + tuple(new))
        return Table(out_columns, out_rows, out_sure)

    # general path: some substituted columns may be ABSENT per row; an
    # absent column behaves like a fresh variable for that row and the
    # scan writes the binding back into the column
    for row in table.rows:
        vals: list = [None, None, None]
        absent: list[tuple[int, str]] = []  # (column position, name)
        for position, (kind, payload, name) in enumerate(slots):
            if kind == "const":
                vals[position] = payload
            elif kind == "col":
                value = row[payload]
                if value is ABSENT:
                    absent.append((payload, name))
                else:
                    vals[position] = value
        probes[_probe_kind(*vals)] = probes.get(_probe_kind(*vals), 0) + 1
        for triple in triples(vals[0], vals[1], vals[2]):
            assigned: dict[str, object] = {}
            consistent = True
            for position, (kind, _payload, name) in enumerate(slots):
                if kind == "const" or vals[position] is not None:
                    continue
                value = triple[position]
                previous = assigned.get(name)
                if previous is None:
                    assigned[name] = value
                elif previous != value:
                    consistent = False
                    break
            if not consistent:
                continue
            if absent:
                patched = list(row)
                for column, name in absent:
                    patched[column] = assigned[name]
                base_row = tuple(patched)
            else:
                base_row = row
            out_rows.append(base_row + tuple(assigned[name]
                                             for name in fresh))
    return Table(out_columns, out_rows, out_sure)


def _run_filter(step: FilterStep, table: Table) -> Table:
    needed = [(name, position)
              for position, name in enumerate(table.columns)
              if name in step.variables]
    positions = [position for _name, position in needed]
    expression = step.expression
    out_rows = []
    # the verdict depends only on the mentioned columns, and their
    # value combinations repeat heavily in joined tables: evaluate each
    # distinct combination once (per-row evaluation is where the naive
    # per-solution evaluator spends its filter time)
    verdicts: dict = {}
    if len(needed) == 1:
        (name, position), = needed
        for row in table.rows:
            value = row[position]
            verdict = verdicts.get(value)
            if verdict is None:
                env = {} if value is ABSENT else {name: value}
                try:
                    verdict = _truth(_eval_filter(expression, env))
                except SparqlEvaluationError:
                    verdict = False
                verdicts[value] = verdict
            if verdict:
                out_rows.append(row)
        return Table(table.columns, out_rows, table.sure)
    for row in table.rows:
        key = tuple(row[position] for position in positions)
        verdict = verdicts.get(key)
        if verdict is None:
            env: Solution = {name: value for (name, _p), value
                             in zip(needed, key) if value is not ABSENT}
            try:
                verdict = _truth(_eval_filter(expression, env))
            except SparqlEvaluationError:
                # evaluation errors eliminate the solution (SPARQL spec)
                verdict = False
            verdicts[key] = verdict
        if verdict:
            out_rows.append(row)
    return Table(table.columns, out_rows, table.sure)


def _join_subgroup(store: TripleStore, subplan: GroupPlan, table: Table,
                   stats: ExecStats, outer: bool) -> Table:
    """Execute a UNION branch / OPTIONAL group once over the distinct
    seed projections of ``table`` and hash-join the results back.

    ``outer=True`` keeps unmatched rows (OPTIONAL's left outer join).
    """
    columns = table.columns
    mentioned = subplan.mentioned
    shared = [(name, position) for position, name in enumerate(columns)
              if name in mentioned]
    shared_names = tuple(name for name, _ in shared)
    shared_positions = [position for _, position in shared]
    extra = tuple(sorted(mentioned - set(columns)))
    out_columns = columns + extra
    out_index = {name: position for position, name in enumerate(out_columns)}
    pad = (ABSENT,) * len(extra)
    out_rows: list[tuple] = []

    # rows with every shared column present run vectorized; the rest
    # (shared column absent: the variable is still bindable) fall back
    # to the naive evaluator so semantics match exactly
    full_rows: list[tuple] = []
    ragged_rows: list[tuple] = []
    if set(shared_names) <= table.sure:
        full_rows = table.rows
    else:
        for row in table.rows:
            if any(row[position] is ABSENT
                   for position in shared_positions):
                ragged_rows.append(row)
            else:
                full_rows.append(row)
    stats.fallback_rows += len(ragged_rows)

    if full_rows:
        seeds = {tuple(row[position] for position in shared_positions)
                 for row in full_rows}
        seed_table = Table(shared_names, [seed for seed in seeds],
                           frozenset(shared_names))
        produced = _run_group(store, subplan, seed_table, stats)
        # group the subplan's output by its seed projection
        produced_index = {name: position for position, name
                          in enumerate(produced.columns)}
        key_positions = [produced_index[name] for name in shared_names]
        extension_positions = [(position, out_index[name])
                               for position, name
                               in enumerate(produced.columns)
                               if name not in shared_names]
        matches: dict[tuple, list] = {}
        for row in produced.rows:
            key = tuple(row[position] for position in key_positions)
            matches.setdefault(key, []).append(row)
        for row in full_rows:
            key = tuple(row[position] for position in shared_positions)
            extensions = matches.get(key)
            if extensions:
                for extension in extensions:
                    merged = list(row + pad)
                    for source, target in extension_positions:
                        merged[target] = extension[source]
                    out_rows.append(tuple(merged))
            elif outer:
                out_rows.append(row + pad)

    for row in ragged_rows:
        solution = {name: value for name, value in zip(columns, row)
                    if value is not ABSENT}
        extended = False
        for match in _evaluate_group(store, subplan.group, solution):
            merged = [ABSENT] * len(out_columns)
            for name, value in match.items():
                position = out_index.get(name)
                if position is not None:
                    merged[position] = value
            out_rows.append(tuple(merged))
            extended = True
        if outer and not extended:
            out_rows.append(row + pad)

    # certainty: subgroup-certain variables survive the join for every
    # row except where certainty depended on a maybe-bound seed column
    unsure_columns = set(columns) - table.sure
    if outer:
        new_sure = table.sure
    else:
        new_sure = table.sure | (subplan.certain - unsure_columns)
    return Table(out_columns, out_rows, frozenset(new_sure))


def _run_union(store: TripleStore, step: UnionStep, table: Table,
               stats: ExecStats) -> Table:
    branch_tables = [_join_subgroup(store, branch, table, stats, outer=False)
                     for branch in step.branches]
    if len(branch_tables) == 1:
        return branch_tables[0]
    # align branch outputs on the union of their columns, then stack
    out_columns = list(branch_tables[0].columns)
    for branch_table in branch_tables[1:]:
        for name in branch_table.columns:
            if name not in out_columns:
                out_columns.append(name)
    aligned = tuple(out_columns)
    out_rows: list[tuple] = []
    for branch_table in branch_tables:
        index_of = {name: position for position, name
                    in enumerate(branch_table.columns)}
        order = [index_of.get(name) for name in aligned]
        if order == list(range(len(aligned))):
            out_rows.extend(branch_table.rows)
        else:
            for row in branch_table.rows:
                out_rows.append(tuple(
                    ABSENT if position is None else row[position]
                    for position in order))
    sure = frozenset.intersection(*[branch_table.sure
                                    for branch_table in branch_tables])
    return Table(aligned, out_rows, sure)


def _run_group(store: TripleStore, plan: GroupPlan, table: Table,
               stats: ExecStats) -> Table:
    for number, step in enumerate(plan.steps):
        started = time.perf_counter()
        if isinstance(step, ScanStep):
            table = _run_scan(store, step, table, stats.probes)
            stage = {"op": "scan", "estimated": step.rows}
        elif isinstance(step, FilterStep):
            table = _run_filter(step, table)
            stage = {"op": "filter", "estimated": None}
        elif isinstance(step, UnionStep):
            table = _run_union(store, step, table, stats)
            stage = {"op": "union", "estimated": step.rows}
        else:
            table = _join_subgroup(store, step.plan, table, stats,
                                   outer=True)
            stage = {"op": "optional", "estimated": step.rows}
        stage["rows"] = len(table.rows)
        stage["seconds"] = time.perf_counter() - started
        stats.stages.append(stage)
        if not table.rows:
            # short-circuit: nothing downstream can resurrect rows
            for skipped in plan.steps[number + 1:]:
                stats.stages.append({"op": type(skipped).__name__,
                                     "estimated": None, "rows": 0,
                                     "seconds": 0.0})
            break
    return table


# -- entry points -------------------------------------------------------------


def run_plan(store: TripleStore, plan: QueryPlan,
             seed: Table | None = None) -> tuple[Table, ExecStats]:
    """Execute a compiled plan, optionally seeded with a pushed-down
    input binding set.  Returns the result table and the actuals."""
    stats = ExecStats(probes=dict.fromkeys(("spo", "pos", "osp", "scan"), 0))
    table = seed if seed is not None else Table.unit()
    stats.rows_in = len(table.rows)
    table = _run_group(store, plan.root, table, stats)
    stats.rows_out = len(table.rows)
    store.record_probes(stats.probes)
    return table, stats


def run_select(store: TripleStore, plan: QueryPlan,
               seed: Table | None = None
               ) -> tuple[list[Solution], ExecStats]:
    """SELECT through the plan; modifier semantics shared with the
    naive evaluator via :func:`repro.rdf.sparql.finalize_select`."""
    if plan.query.form != "SELECT":
        raise SparqlEvaluationError("run_select() requires a SELECT plan")
    table, stats = run_plan(store, plan, seed)
    return finalize_select(plan.query, solutions_from_table(table)), stats


def run_ask(store: TripleStore, plan: QueryPlan,
            seed: Table | None = None) -> tuple[bool, ExecStats]:
    if plan.query.form != "ASK":
        raise SparqlEvaluationError("run_ask() requires an ASK plan")
    table, stats = run_plan(store, plan, seed)
    return bool(table.rows), stats
