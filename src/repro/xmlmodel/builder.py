"""Concise programmatic construction of XML trees.

``E`` builds elements the way the running example's services do::

    E("{http://example.org/travel}booking",
      {"person": "John Doe", "from": "Munich", "to": "Paris"})

A namespace-bound factory avoids repeating the URI::

    travel = ElementMaker("http://example.org/travel")
    travel.booking({"person": "John Doe"})
"""

from __future__ import annotations

from typing import Any, Mapping

from .names import QName
from .nodes import Child, Element, Text

__all__ = ["E", "ElementMaker"]


def _coerce_attributes(attributes: Mapping[Any, Any] | None,
                       default_uri: str | None = None) -> dict[QName, str]:
    coerced: dict[QName, str] = {}
    for key, value in (attributes or {}).items():
        if isinstance(key, QName):
            name = key
        else:
            name = QName.parse(str(key))
        coerced[name] = str(value)
    return coerced


def E(name: QName | str, attributes: Mapping[Any, Any] | None = None,
      *children: Child | str | int | float) -> Element:
    """Build an element; children may be nodes, strings or numbers."""
    element = Element(name, _coerce_attributes(attributes))
    for child in children:
        if isinstance(child, (int, float)):
            element.append(Text(_format_number(child)))
        else:
            element.append(child)
    return element


def _format_number(value: int | float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


class ElementMaker:
    """Factory for elements in a fixed namespace: ``maker.booking(...)``."""

    def __init__(self, uri: str | None = None,
                 nsdecls: Mapping[str, str] | None = None) -> None:
        self._uri = uri
        self._nsdecls = dict(nsdecls or {})

    def __call__(self, local: str, attributes: Mapping[Any, Any] | None = None,
                 *children: Child | str | int | float) -> Element:
        element = E(QName(self._uri, local), attributes, *children)
        element.nsdecls.update(self._nsdecls)
        return element

    def __getattr__(self, local: str):
        if local.startswith("_"):
            raise AttributeError(local)

        def make(attributes: Mapping[Any, Any] | None = None,
                 *children: Child | str | int | float) -> Element:
            return self(local, attributes, *children)

        return make
