"""The XML node model: elements, text, comments, processing instructions.

A deliberately small, immutable-name / mutable-tree DOM used across the
repository for rule markup, request/answer messages, events and XML data
sources.  It is namespace-aware (names are :class:`~repro.xmlmodel.names.QName`)
and keeps the prefix declarations seen at parse time so serialization can
round-trip documents faithfully.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from .names import QName

__all__ = ["Node", "Element", "Text", "Comment", "ProcessingInstruction",
           "Document", "Child"]


class Node:
    """Base class of all tree nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Element | Document | None = None

    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class Text(Node):
    """A text node."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"Text({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Text) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("text", self.value))


class Comment(Node):
    """A comment node (``<!-- ... -->``)."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"Comment({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Comment) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("comment", self.value))


class ProcessingInstruction(Node):
    """A processing instruction (``<?target data?>``)."""

    __slots__ = ("target", "data")

    def __init__(self, target: str, data: str = "") -> None:
        super().__init__()
        self.target = target
        self.data = data

    def __repr__(self) -> str:
        return f"ProcessingInstruction({self.target!r}, {self.data!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ProcessingInstruction)
                and other.target == self.target and other.data == self.data)

    def __hash__(self) -> int:
        return hash(("pi", self.target, self.data))


Child = Union["Element", Text, Comment, ProcessingInstruction]


class Element(Node):
    """An element node with attributes, children and namespace context.

    ``nsdecls`` records the prefix → URI declarations *written on this
    element* (``""`` is the default namespace); it is advisory — names are
    always stored expanded — but lets the serializer reproduce the
    author's prefixes.
    """

    __slots__ = ("name", "attributes", "children", "nsdecls")

    def __init__(self, name: QName | str,
                 attributes: dict[QName, str] | None = None,
                 children: Iterable[Child | str] | None = None,
                 nsdecls: dict[str, str] | None = None) -> None:
        super().__init__()
        if isinstance(name, str):
            name = QName.parse(name)
        self.name = name
        self.attributes: dict[QName, str] = dict(attributes or {})
        self.nsdecls: dict[str, str] = dict(nsdecls or {})
        self.children: list[Child] = []
        for child in children or ():
            self.append(child)

    # -- tree construction -------------------------------------------------

    def append(self, child: Child | str) -> Child:
        if isinstance(child, str):
            child = Text(child)
        if isinstance(child.parent, Document):
            # Parsed fragments carry a synthetic Document parent (so that
            # absolute XPaths work); embedding them elsewhere detaches them.
            child.parent.remove(child)
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable[Child | str]) -> None:
        for child in children:
            self.append(child)

    def remove(self, child: Child) -> None:
        # identity-based removal: structurally equal siblings are
        # distinct nodes, so list.remove (which uses ==) would be wrong
        for index, candidate in enumerate(self.children):
            if candidate is child:
                del self.children[index]
                child.parent = None
                return
        raise ValueError("node is not a child of this element")

    def detach(self) -> "Element":
        """Remove this element from its parent (no-op at the root)."""
        if isinstance(self.parent, (Element, Document)):
            self.parent.remove(self)
        return self

    def copy(self) -> "Element":
        """A deep copy, detached from any parent."""
        clone = Element(self.name, dict(self.attributes),
                        nsdecls=dict(self.nsdecls))
        for child in self.children:
            if isinstance(child, Element):
                clone.append(child.copy())
            elif isinstance(child, Text):
                clone.append(Text(child.value))
            elif isinstance(child, Comment):
                clone.append(Comment(child.value))
            else:
                clone.append(ProcessingInstruction(child.target, child.data))
        return clone

    # -- accessors ---------------------------------------------------------

    def get(self, name: QName | str, default: str | None = None) -> str | None:
        if isinstance(name, str):
            name = QName.parse(name)
        return self.attributes.get(name, default)

    def set(self, name: QName | str, value: str) -> None:
        if isinstance(name, str):
            name = QName.parse(name)
        self.attributes[name] = str(value)

    def elements(self) -> Iterator["Element"]:
        """Child elements, in document order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def iter(self) -> Iterator["Element"]:
        """This element and all element descendants, in document order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find(self, name: QName | str) -> "Element | None":
        """First child element with the given expanded name."""
        if isinstance(name, str):
            name = QName.parse(name)
        for child in self.elements():
            if child.name == name:
                return child
        return None

    def findall(self, name: QName | str) -> list["Element"]:
        if isinstance(name, str):
            name = QName.parse(name)
        return [child for child in self.elements() if child.name == name]

    def text(self) -> str:
        """Concatenated text of all descendant text nodes (string-value)."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.value)
            elif isinstance(child, Element):
                parts.append(child.text())
        return "".join(parts)

    def xpath(self, expression: str, variables: dict | None = None,
              namespaces: dict[str, str] | None = None):
        """Evaluate an XPath expression with this element as context.

        Convenience wrapper around :func:`repro.xpath.evaluate` (imported
        lazily to keep the node model dependency-free).
        """
        from ..xpath import evaluate
        return evaluate(expression, self, variables=variables,
                        namespaces=namespaces)

    def scope(self) -> dict[str, str]:
        """In-scope prefix declarations, innermost binding winning."""
        chain: list[Element] = []
        node: Node | None = self
        while isinstance(node, Element):
            chain.append(node)
            node = node.parent
        merged: dict[str, str] = {}
        for element in reversed(chain):
            merged.update(element.nsdecls)
        return merged

    # -- comparison --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality: names, attributes and children (recursively).

        Prefix declarations and inter-element whitespace differences are
        ignored so that parsed and programmatically-built trees compare
        equal when they denote the same infoset.
        """
        if not isinstance(other, Element):
            return NotImplemented
        if self.name != other.name or self.attributes != other.attributes:
            return False
        return _significant(self.children) == _significant(other.children)

    def __hash__(self) -> int:
        return hash((self.name, frozenset(self.attributes.items()),
                     tuple(_significant(self.children))))

    def __repr__(self) -> str:
        return f"<Element {self.name.clark} attrs={len(self.attributes)} children={len(self.children)}>"


def _significant(children: list[Child]) -> list[Child]:
    """Children normalized for comparison.

    Adjacent text nodes are coalesced (the parser produces one node where a
    builder may produce several), and whitespace-only text and comments are
    removed.
    """
    kept: list[Child] = []
    for child in children:
        if isinstance(child, Comment):
            continue
        if isinstance(child, Text):
            if kept and isinstance(kept[-1], Text):
                kept[-1] = Text(kept[-1].value + child.value)
            else:
                kept.append(Text(child.value))
            continue
        kept.append(child)
    return [child for child in kept
            if not (isinstance(child, Text) and not child.value.strip())]


class Document(Node):
    """A document node: prolog items plus exactly one root element."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Child] | None = None) -> None:
        super().__init__()
        self.children: list[Child] = []
        for child in children or ():
            self.append(child)

    def append(self, child: Child) -> Child:
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def remove(self, child: Child) -> None:
        for index, candidate in enumerate(self.children):
            if candidate is child:
                del self.children[index]
                child.parent = None
                return
        raise ValueError("node is not a child of this document")

    @property
    def root_element(self) -> Element:
        for child in self.children:
            if isinstance(child, Element):
                return child
        raise ValueError("document has no root element")

    def __repr__(self) -> str:
        return f"<Document children={len(self.children)}>"
