"""A from-scratch, namespace-aware XML parser.

Covers the subset of XML 1.0 + Namespaces needed by the framework:
elements, attributes, namespace declarations, character data, CDATA
sections, comments, processing instructions, the five predefined entities
and numeric character references.  DTDs are not supported (a leading
``<!DOCTYPE ...>`` without an internal subset is tolerated and skipped).

The parser reports errors with line/column positions, which matters in
practice because rule authors hand-write ECA-ML documents.
"""

from __future__ import annotations

from .names import NamespaceError, QName, XMLNS_NS, XML_NS
from .nodes import Comment, Document, Element, ProcessingInstruction, Text

__all__ = ["XMLSyntaxError", "parse", "parse_document", "parse_fragment"]

_PREDEFINED_ENTITIES = {
    "lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"',
}

_NAME_START = set("_:") | set(chr(c) for c in range(ord("a"), ord("z") + 1)) \
    | set(chr(c) for c in range(ord("A"), ord("Z") + 1))
_WHITESPACE = set(" \t\r\n")


class XMLSyntaxError(ValueError):
    """A well-formedness violation, with source position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class _Scanner:
    """Character-level scanner with position tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XMLSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        last_nl = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_nl
        return XMLSyntaxError(message, line, column)

    @property
    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos:self.pos + n]

    def advance(self, n: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def match(self, literal: str) -> bool:
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.match(literal):
            raise self.error(f"expected {literal!r}")

    def skip_whitespace(self) -> int:
        start = self.pos
        while not self.eof and self.text[self.pos] in _WHITESPACE:
            self.pos += 1
        return self.pos - start

    def read_until(self, terminator: str, what: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(terminator)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.eof:
            raise self.error("expected name, found end of input")
        first = self.text[self.pos]
        if first not in _NAME_START and not first.isalpha():
            raise self.error(f"invalid name start character {first!r}")
        self.pos += 1
        while not self.eof:
            ch = self.text[self.pos]
            if ch.isalnum() or ch in "_:.-" or ord(ch) > 127:
                self.pos += 1
            else:
                break
        return self.text[start:self.pos]


class _Parser:
    def __init__(self, text: str) -> None:
        if text.startswith("﻿"):
            text = text[1:]
        self.scanner = _Scanner(text)

    # -- entry points -------------------------------------------------------

    def parse_document(self) -> Document:
        document = Document()
        scanner = self.scanner
        self._skip_prolog(document)
        element = self._parse_element({"xml": XML_NS})
        document.append(element)
        scanner.skip_whitespace()
        while not scanner.eof:
            if scanner.peek(4) == "<!--":
                scanner.advance(4)
                document.append(Comment(scanner.read_until("-->", "comment")))
            elif scanner.peek(2) == "<?":
                document.append(self._parse_pi())
            else:
                raise scanner.error("content after document element")
            scanner.skip_whitespace()
        return document

    def parse_fragment(self, namespaces: dict[str, str] | None = None) -> Element:
        scanner = self.scanner
        scanner.skip_whitespace()
        scope = {"xml": XML_NS}
        scope.update(namespaces or {})
        element = self._parse_element(scope)
        scanner.skip_whitespace()
        if not scanner.eof:
            raise scanner.error("trailing content after fragment")
        # Give the fragment a Document parent so absolute XPath expressions
        # ("/a/b") work on parsed trees.
        Document([element])
        return element

    # -- pieces -------------------------------------------------------------

    def _skip_prolog(self, document: Document) -> None:
        scanner = self.scanner
        scanner.skip_whitespace()
        if scanner.peek(5) == "<?xml":
            scanner.advance(5)
            scanner.read_until("?>", "XML declaration")
            scanner.skip_whitespace()
        while True:
            if scanner.peek(4) == "<!--":
                scanner.advance(4)
                document.append(Comment(scanner.read_until("-->", "comment")))
            elif scanner.peek(9) == "<!DOCTYPE":
                scanner.advance(9)
                depth = 1
                while depth and not scanner.eof:
                    ch = scanner.advance()
                    if ch == "<":
                        depth += 1
                    elif ch == ">":
                        depth -= 1
                if depth:
                    raise scanner.error("unterminated DOCTYPE")
            elif scanner.peek(2) == "<?":
                document.append(self._parse_pi())
            else:
                return
            scanner.skip_whitespace()

    def _parse_pi(self) -> ProcessingInstruction:
        scanner = self.scanner
        scanner.expect("<?")
        target = scanner.read_name()
        scanner.skip_whitespace()
        data = scanner.read_until("?>", "processing instruction")
        return ProcessingInstruction(target, data)

    def _parse_element(self, scope: dict[str, str]) -> Element:
        scanner = self.scanner
        scanner.expect("<")
        raw_name = scanner.read_name()
        attributes_raw: list[tuple[str, str]] = []
        nsdecls: dict[str, str] = {}
        while True:
            had_space = scanner.skip_whitespace()
            if scanner.match("/>"):
                return self._build_element(raw_name, attributes_raw, nsdecls,
                                           scope, children=None)
            if scanner.match(">"):
                break
            if not had_space:
                raise scanner.error("expected whitespace before attribute")
            attr_name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            quote = scanner.advance()
            if quote not in "'\"":
                raise scanner.error("attribute value must be quoted")
            value = self._decode_entities(
                scanner.read_until(quote, "attribute value"))
            if attr_name == "xmlns":
                nsdecls[""] = value
            elif attr_name.startswith("xmlns:"):
                prefix = attr_name[6:]
                if not value:
                    raise scanner.error(
                        f"cannot bind prefix {prefix!r} to empty URI")
                nsdecls[prefix] = value
            else:
                if any(existing == attr_name for existing, _ in attributes_raw):
                    raise scanner.error(f"duplicate attribute {attr_name!r}")
                attributes_raw.append((attr_name, value))
        children = self._parse_content(raw_name,
                                       self._child_scope(scope, nsdecls))
        return self._build_element(raw_name, attributes_raw, nsdecls, scope,
                                   children)

    @staticmethod
    def _child_scope(scope: dict[str, str],
                     nsdecls: dict[str, str]) -> dict[str, str]:
        if not nsdecls:
            return scope
        merged = dict(scope)
        merged.update(nsdecls)
        return merged

    def _build_element(self, raw_name: str,
                       attributes_raw: list[tuple[str, str]],
                       nsdecls: dict[str, str],
                       outer_scope: dict[str, str],
                       children: list | None) -> Element:
        scope = self._child_scope(outer_scope, nsdecls)
        default = scope.get("")
        try:
            name = QName.parse(raw_name, scope, default=default or None)
        except NamespaceError as exc:
            raise self.scanner.error(str(exc)) from None
        attributes: dict[QName, str] = {}
        for attr_raw, value in attributes_raw:
            try:
                attr_name = QName.parse(attr_raw, scope, default=None)
            except NamespaceError as exc:
                raise self.scanner.error(str(exc)) from None
            if attr_name.uri == XMLNS_NS:
                raise self.scanner.error("xmlns is not a usable prefix")
            if attr_name in attributes:
                raise self.scanner.error(
                    f"duplicate expanded attribute {attr_name.clark!r}")
            attributes[attr_name] = value
        element = Element(name, attributes, nsdecls=nsdecls)
        for child in children or ():
            element.append(child)
        return element

    def _parse_content(self, open_name: str, scope: dict[str, str]) -> list:
        scanner = self.scanner
        children: list = []
        text_parts: list[str] = []

        def flush() -> None:
            if text_parts:
                children.append(Text("".join(text_parts)))
                text_parts.clear()

        while True:
            if scanner.eof:
                raise scanner.error(f"unclosed element <{open_name}>")
            if scanner.peek(2) == "</":
                scanner.advance(2)
                closing = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">")
                if closing != open_name:
                    raise scanner.error(
                        f"mismatched end tag </{closing}> for <{open_name}>")
                flush()
                return children
            if scanner.peek(4) == "<!--":
                scanner.advance(4)
                flush()
                children.append(Comment(scanner.read_until("-->", "comment")))
            elif scanner.peek(9) == "<![CDATA[":
                scanner.advance(9)
                text_parts.append(scanner.read_until("]]>", "CDATA section"))
            elif scanner.peek(2) == "<?":
                flush()
                children.append(self._parse_pi())
            elif scanner.peek() == "<":
                flush()
                children.append(self._parse_element(scope))
            else:
                raw = self._read_text()
                text_parts.append(raw)
        # unreachable

    def _read_text(self) -> str:
        scanner = self.scanner
        start = scanner.pos
        while not scanner.eof and scanner.peek() != "<":
            scanner.advance()
        return self._decode_entities(scanner.text[start:scanner.pos])

    def _decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end < 0:
                raise self.scanner.error("unterminated entity reference")
            body = raw[i + 1:end]
            if body.startswith("#x") or body.startswith("#X"):
                out.append(chr(int(body[2:], 16)))
            elif body.startswith("#"):
                out.append(chr(int(body[1:])))
            elif body in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[body])
            else:
                raise self.scanner.error(f"unknown entity &{body};")
            i = end + 1
        return "".join(out)


def parse_document(text: str) -> Document:
    """Parse a complete XML document (prolog + one root element)."""
    return _Parser(text).parse_document()


def parse_fragment(text: str,
                   namespaces: dict[str, str] | None = None) -> Element:
    """Parse a single element, optionally inside pre-declared prefixes."""
    return _Parser(text).parse_fragment(namespaces)


def parse(text: str, namespaces: dict[str, str] | None = None) -> Element:
    """Parse XML text and return its root element.

    Accepts either a full document or a bare element; this is the everyday
    entry point used throughout the repository.
    """
    stripped = text.lstrip()
    if stripped.startswith("<?xml") or stripped.startswith("<!DOCTYPE"):
        return parse_document(text).root_element
    return parse_fragment(text, namespaces)
