"""Serialization of the XML node model back to markup.

Two modes are provided:

* :func:`serialize` — compact output reusing the prefixes recorded at parse
  time where possible, inventing ``ns0``, ``ns1``, … prefixes otherwise.
* :func:`canonicalize` — deterministic output (sorted attributes, fixed
  prefix generation, no insignificant whitespace) used by the tests that
  byte-compare messages across transports (DESIGN.md §5).
"""

from __future__ import annotations

from .names import QName, XMLNS_NS, XML_NS
from .nodes import Comment, Document, Element, Node, ProcessingInstruction, Text

__all__ = ["serialize", "canonicalize"]


def _escape_text(value: str) -> str:
    return (value.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _escape_attribute(value: str) -> str:
    return (_escape_text(value).replace('"', "&quot;")
            .replace("\n", "&#10;").replace("\t", "&#9;"))


class _PrefixAllocator:
    """Tracks in-scope prefix bindings while writing a tree."""

    def __init__(self, deterministic: bool) -> None:
        self.deterministic = deterministic
        self._counter = 0

    def fresh(self, bound: dict[str, str]) -> str:
        while True:
            candidate = f"ns{self._counter}"
            self._counter += 1
            if candidate not in bound:
                return candidate


def _write_element(element: Element, out: list[str], scope: dict[str, str],
                   allocator: _PrefixAllocator, indent: str | None,
                   depth: int) -> None:
    # Determine declarations needed on this element: start from the ones the
    # author wrote, then add whatever the element/attribute names require.
    new_decls: dict[str, str] = {}
    local_scope = dict(scope)
    for prefix, uri in sorted(element.nsdecls.items()):
        if local_scope.get(prefix) != uri:
            new_decls[prefix] = uri
            local_scope[prefix] = uri

    def prefix_for(name: QName, is_attribute: bool) -> str:
        if name.uri is None:
            # An unprefixed attribute has no namespace; an unprefixed element
            # must not be captured by a default namespace declaration.
            if not is_attribute and local_scope.get("") not in (None, ""):
                new_decls[""] = ""
                local_scope[""] = ""
            return ""
        if name.uri == XML_NS:
            return "xml:"
        for prefix, uri in local_scope.items():
            if uri == name.uri and (prefix or not is_attribute):
                return f"{prefix}:" if prefix else ""
        if not is_attribute and local_scope.get("") in (None, ""):
            new_decls[""] = name.uri
            local_scope[""] = name.uri
            return ""
        fresh = allocator.fresh(local_scope)
        new_decls[fresh] = name.uri
        local_scope[fresh] = name.uri
        return f"{fresh}:"

    tag = prefix_for(element.name, is_attribute=False) + element.name.local
    attribute_parts: list[tuple[str, str]] = []
    attribute_items = element.attributes.items()
    if allocator.deterministic:
        attribute_items = sorted(attribute_items,
                                 key=lambda kv: (kv[0].uri or "", kv[0].local))
    for name, value in attribute_items:
        if name.uri == XMLNS_NS:
            continue
        attribute_parts.append(
            (prefix_for(name, is_attribute=True) + name.local, value))

    out.append(f"<{tag}")
    for prefix, uri in sorted(new_decls.items()):
        attr = "xmlns" if not prefix else f"xmlns:{prefix}"
        out.append(f' {attr}="{_escape_attribute(uri)}"')
    for attr_tag, value in attribute_parts:
        out.append(f' {attr_tag}="{_escape_attribute(value)}"')

    if not element.children:
        out.append("/>")
        return
    out.append(">")
    only_text = all(isinstance(child, Text) for child in element.children)
    pad = None if indent is None or only_text else indent * (depth + 1)
    for child in element.children:
        if pad is not None:
            out.append(f"\n{pad}")
        if isinstance(child, Element):
            _write_element(child, out, local_scope, allocator, indent,
                           depth + 1)
        elif isinstance(child, Text):
            out.append(_escape_text(child.value))
        elif isinstance(child, Comment):
            out.append(f"<!--{child.value}-->")
        elif isinstance(child, ProcessingInstruction):
            data = f" {child.data}" if child.data else ""
            out.append(f"<?{child.target}{data}?>")
    if pad is not None:
        out.append(f"\n{indent * depth}")
    out.append(f"</{tag}>")


def serialize(node: Node, indent: str | None = None,
              declaration: bool = False) -> str:
    """Serialize an :class:`Element` or :class:`Document` to markup text.

    ``indent`` pretty-prints with the given unit (e.g. ``"  "``); elements
    with pure-text content are kept on one line so string-values survive.
    """
    out: list[str] = []
    if declaration:
        out.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    allocator = _PrefixAllocator(deterministic=False)
    if isinstance(node, Document):
        for child in node.children:
            if isinstance(child, Element):
                _write_element(child, out, {}, allocator, indent, 0)
            elif isinstance(child, Comment):
                out.append(f"<!--{child.value}-->\n")
            elif isinstance(child, ProcessingInstruction):
                data = f" {child.data}" if child.data else ""
                out.append(f"<?{child.target}{data}?>\n")
    elif isinstance(node, Element):
        _write_element(node, out, {}, allocator, indent, 0)
    elif isinstance(node, Text):
        out.append(_escape_text(node.value))
    else:
        raise TypeError(f"cannot serialize {type(node).__name__}")
    return "".join(out)


def _strip_insignificant(element: Element) -> Element:
    clone = element.copy()

    def walk(node: Element) -> None:
        merged: list = []
        for child in node.children:
            if isinstance(child, Comment):
                child.parent = None
            elif isinstance(child, Text):
                if merged and isinstance(merged[-1], Text):
                    merged[-1].value += child.value
                    child.parent = None
                else:
                    merged.append(child)
            else:
                merged.append(child)
                if isinstance(child, Element):
                    walk(child)
        kept = []
        for child in merged:
            if isinstance(child, Text):
                if child.value.strip():
                    child.value = child.value.strip()
                    kept.append(child)
                else:
                    child.parent = None
            else:
                kept.append(child)
        node.children = kept

    walk(clone)
    return clone


def canonicalize(node: Element | Document) -> str:
    """A deterministic serialization for message comparison.

    Attributes are sorted by (namespace, local name), author prefixes are
    ignored in favour of deterministic generated ones, comments and
    whitespace-only text are dropped, and remaining text is trimmed.
    Two structurally equal trees canonicalize to the same string.
    """
    element = node.root_element if isinstance(node, Document) else node
    stripped = _strip_insignificant(element)
    stripped.nsdecls = {}
    for descendant in stripped.iter():
        descendant.nsdecls = {}
    out: list[str] = []
    _write_element(stripped, out, {}, _PrefixAllocator(deterministic=True),
                   indent=None, depth=0)
    return "".join(out)
