"""Namespace-aware XML infrastructure (node model, parser, serializer).

This is the data substrate of the whole framework: rule documents, request
and answer messages, events and queried documents are all trees of
:class:`~repro.xmlmodel.nodes.Element`.
"""

from .builder import E, ElementMaker
from .names import (ECA_NS, LOG_NS, OPAQUE_LANG, XML_NS, XMLNS_NS,
                    NamespaceError, QName)
from .nodes import (Child, Comment, Document, Element, Node,
                    ProcessingInstruction, Text)
from .parser import XMLSyntaxError, parse, parse_document, parse_fragment
from .serializer import canonicalize, serialize

__all__ = [
    "QName", "NamespaceError", "XML_NS", "XMLNS_NS", "ECA_NS", "LOG_NS",
    "OPAQUE_LANG",
    "Node", "Element", "Text", "Comment", "ProcessingInstruction", "Document",
    "Child",
    "parse", "parse_document", "parse_fragment", "XMLSyntaxError",
    "serialize", "canonicalize",
    "E", "ElementMaker",
]
