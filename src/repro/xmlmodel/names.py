"""Qualified names and namespace handling for the XML node model.

The whole framework of the paper is namespace-driven: the Generic Request
Handler dispatches rule components to language services *by the namespace
URI* of the component's root element.  This module provides the ``QName``
value type used for element and attribute names throughout the repository,
plus the handful of well-known namespaces of the ECA framework.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "QName",
    "NamespaceError",
    "XML_NS",
    "XMLNS_NS",
    "ECA_NS",
    "LOG_NS",
    "OPAQUE_LANG",
]

#: Namespace bound to the reserved ``xml`` prefix.
XML_NS = "http://www.w3.org/XML/1998/namespace"

#: Namespace bound to the reserved ``xmlns`` prefix.
XMLNS_NS = "http://www.w3.org/2000/xmlns/"

#: Namespace of the ECA rule markup language (Sec. 4.1 of the paper).
ECA_NS = "http://www.semwebtech.org/languages/2006/eca-ml"

#: Namespace of the answer/variable-binding markup (``log:answers``).
LOG_NS = "http://www.semwebtech.org/languages/2006/log"

#: Pseudo language URI assigned to opaque components that name their
#: language with a plain ``language=`` attribute instead of a namespace.
OPAQUE_LANG = "http://www.semwebtech.org/languages/2006/opaque"


class NamespaceError(ValueError):
    """Raised for undeclared prefixes or invalid namespace declarations."""


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded XML name: a namespace URI (or ``None``) plus local part.

    Equality and hashing ignore the prefix a name was written with, as
    required by XML Namespaces: ``a:booking`` and ``b:booking`` are the same
    name when ``a`` and ``b`` are bound to the same URI.
    """

    uri: str | None
    local: str

    def __post_init__(self) -> None:
        if not self.local:
            raise ValueError("QName local part must be non-empty")

    @classmethod
    def parse(cls, text: str, namespaces: dict[str, str] | None = None,
              default: str | None = None) -> "QName":
        """Parse ``prefix:local`` or ``local`` or ``{uri}local`` notation.

        ``namespaces`` maps prefixes to URIs; ``default`` is the default
        namespace applied to unprefixed names (attributes pass ``None``).
        """
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            return cls(uri or None, local)
        prefix, sep, local = text.partition(":")
        if not sep:
            return cls(default, text)
        if prefix == "xml":
            return cls(XML_NS, local)
        if prefix == "xmlns":
            return cls(XMLNS_NS, local)
        if namespaces is None or prefix not in namespaces:
            raise NamespaceError(f"undeclared namespace prefix: {prefix!r}")
        return cls(namespaces[prefix], local)

    @property
    def clark(self) -> str:
        """Clark notation ``{uri}local`` (or just ``local``)."""
        return f"{{{self.uri}}}{self.local}" if self.uri else self.local

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.clark
