"""Abstract syntax of XQ-lite (FLWOR subset + constructors)."""

from __future__ import annotations

from dataclasses import dataclass

from ..xpath.ast import Expr

__all__ = ["ForClause", "LetClause", "FLWOR", "IfExpr", "SequenceExpr",
           "AttributeTemplate", "ElementTemplate", "TextTemplate", "Prolog",
           "Query"]


@dataclass(frozen=True, slots=True)
class ForClause:
    variable: str
    source: Expr


@dataclass(frozen=True, slots=True)
class LetClause:
    variable: str
    value: Expr


@dataclass(frozen=True, slots=True)
class FLWOR(Expr):
    clauses: tuple[ForClause | LetClause, ...]
    where: Expr | None
    order_by: Expr | None
    descending: bool
    body: Expr


@dataclass(frozen=True, slots=True)
class IfExpr(Expr):
    condition: Expr
    then: Expr
    otherwise: Expr


@dataclass(frozen=True, slots=True)
class SequenceExpr(Expr):
    """Comma operator: concatenation of item sequences."""

    items: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class AttributeTemplate:
    """An attribute whose value interleaves literal text and expressions."""

    name: str  # possibly prefixed
    parts: tuple[str | Expr, ...]


@dataclass(frozen=True, slots=True)
class TextTemplate:
    value: str


@dataclass(frozen=True, slots=True)
class ElementTemplate(Expr):
    """A direct element constructor ``<tag a="{..}">...{expr}...</tag>``."""

    name: str  # possibly prefixed
    nsdecls: tuple[tuple[str, str], ...]
    attributes: tuple[AttributeTemplate, ...]
    content: tuple["ElementTemplate | TextTemplate | Expr", ...]


@dataclass(frozen=True, slots=True)
class Prolog:
    namespaces: tuple[tuple[str, str], ...]
    default_element_namespace: str | None


@dataclass(frozen=True, slots=True)
class Query:
    prolog: Prolog
    body: Expr
