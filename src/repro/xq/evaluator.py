"""Evaluation of XQ-lite queries.

A query evaluates to a **sequence** of items (nodes and/or atomic values).
The service layer turns each item of the result sequence into one
``log:result`` — which is exactly how the wrapped Saxon node of Fig. 8
produces one ``log:answer`` per result.

Documents are provided by name through a small registry so that queries
can say ``doc('cars.xml')/...`` without any filesystem or network access.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..xmlmodel import Document, Element, QName, Text
from ..xpath.evaluator import (Context, XPathEvaluationError, as_boolean,
                               as_number, as_string, evaluate_expr)
from ..xpath.nodeops import string_value, XPathNode
from .ast import (AttributeTemplate, ElementTemplate, FLWOR, ForClause,
                  IfExpr, LetClause, Prolog, Query, SequenceExpr,
                  TextTemplate)
from .parser import parse_query

__all__ = ["XQEvaluationError", "evaluate_query", "evaluate_parsed_query",
           "Sequence"]

Sequence = list  # a sequence of items (nodes or atomic values)


class XQEvaluationError(ValueError):
    """Raised for evaluation errors specific to XQ-lite."""


def _to_sequence(value: Any) -> Sequence:
    """Normalize an XPath value to a sequence of items."""
    if isinstance(value, list):
        return value
    return [value]


def _to_variable_value(sequence: Sequence) -> Any:
    """The value form under which a sequence is bound to a variable."""
    if len(sequence) == 1 and not _is_node(sequence[0]):
        return sequence[0]
    return sequence


def _is_node(item: Any) -> bool:
    return isinstance(item, (Element, Document, Text)) or hasattr(item, "owner")


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


class _XQRuntime:
    def __init__(self, prolog: Prolog, context: Context,
                 documents: dict[str, Element] | None) -> None:
        namespaces = dict(context.namespaces)
        namespaces.update(dict(prolog.namespaces))
        functions = dict(context.functions)
        documents = documents or {}

        def fn_doc(_context: Context, args: list) -> list:
            name = as_string(args[0])
            if name not in documents:
                raise XQEvaluationError(f"unknown document {name!r}")
            return [documents[name]]

        functions.setdefault("doc", fn_doc)
        default_ns = (prolog.default_element_namespace
                      or context.default_element_namespace)
        self.base_context = Context(
            node=context.node, position=context.position, size=context.size,
            variables=dict(context.variables), namespaces=namespaces,
            default_element_namespace=default_ns, functions=functions)
        self.prolog_namespaces = namespaces
        self.default_ns = prolog.default_element_namespace
        self._scope_stack: list[dict[str, str]] = [{}]

    # -- expression dispatch ---------------------------------------------------

    def evaluate(self, expr, variables: dict[str, Any]) -> Sequence:
        if isinstance(expr, FLWOR):
            return self._flwor(expr, variables)
        if isinstance(expr, IfExpr):
            condition = self._effective_boolean(expr.condition, variables)
            branch = expr.then if condition else expr.otherwise
            return self.evaluate(branch, variables)
        if isinstance(expr, SequenceExpr):
            out: Sequence = []
            for item in expr.items:
                out.extend(self.evaluate(item, variables))
            return out
        if isinstance(expr, ElementTemplate):
            # constructors inside embedded { ... } expressions inherit the
            # namespace scope of their enclosing constructor
            return [self._construct(expr, variables, self._scope_stack[-1])]
        value = evaluate_expr(expr, self._context(variables))
        return _to_sequence(value)

    def _context(self, variables: dict[str, Any]) -> Context:
        merged = dict(self.base_context.variables)
        merged.update(variables)
        return Context(node=self.base_context.node, position=1, size=1,
                       variables=merged,
                       namespaces=self.base_context.namespaces,
                       default_element_namespace=(
                           self.base_context.default_element_namespace),
                       functions=self.base_context.functions)

    def _effective_boolean(self, expr, variables: dict[str, Any]) -> bool:
        sequence = self.evaluate(expr, variables)
        if len(sequence) == 1 and not _is_node(sequence[0]):
            return as_boolean(sequence[0])
        return as_boolean(sequence)

    # -- FLWOR --------------------------------------------------------------------

    def _flwor(self, expr: FLWOR, variables: dict[str, Any]) -> Sequence:
        tuples: list[dict[str, Any]] = [dict(variables)]
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                next_tuples = []
                for current in tuples:
                    for item in self.evaluate(clause.source, current):
                        extended = dict(current)
                        extended[clause.variable] = item
                        next_tuples.append(extended)
                tuples = next_tuples
            else:
                assert isinstance(clause, LetClause)
                for current in tuples:
                    sequence = self.evaluate(clause.value, current)
                    current[clause.variable] = _to_variable_value(sequence)
        if expr.where is not None:
            tuples = [current for current in tuples
                      if self._effective_boolean(expr.where, current)]
        if expr.order_by is not None:
            tuples = self._order(tuples, expr.order_by, expr.descending)
        out: Sequence = []
        for current in tuples:
            out.extend(self.evaluate(expr.body, current))
        return out

    def _order(self, tuples: list[dict[str, Any]], key_expr,
               descending: bool) -> list[dict[str, Any]]:
        keyed = []
        for current in tuples:
            sequence = self.evaluate(key_expr, current)
            if not sequence:
                key_value: Any = ""
            else:
                item = sequence[0]
                key_value = string_value(item) if _is_node(item) else item
            keyed.append((key_value, current))
        numeric = all(isinstance(key, (int, float))
                      or (isinstance(key, str) and _is_number(key))
                      for key, _ in keyed)
        if numeric:
            keyed.sort(key=lambda pair: as_number(pair[0]),
                       reverse=descending)
        else:
            keyed.sort(key=lambda pair: as_string(pair[0]),
                       reverse=descending)
        return [current for _, current in keyed]

    # -- constructors ------------------------------------------------------------------

    def _construct(self, template: ElementTemplate,
                   variables: dict[str, Any],
                   scope: dict[str, str]) -> Element:
        local_scope = dict(scope)
        nsdecls = dict(template.nsdecls)
        local_scope.update(nsdecls)
        self._scope_stack.append(local_scope)
        try:
            return self._construct_in_scope(template, variables, local_scope,
                                            nsdecls)
        finally:
            self._scope_stack.pop()

    def _construct_in_scope(self, template: ElementTemplate,
                            variables: dict[str, Any],
                            local_scope: dict[str, str],
                            nsdecls: dict[str, str]) -> Element:
        name = self._resolve(template.name, local_scope, is_attribute=False)
        element = Element(name, nsdecls={prefix: uri for prefix, uri
                                         in nsdecls.items()})
        for attribute in template.attributes:
            attr_name = self._resolve(attribute.name, local_scope,
                                      is_attribute=True)
            element.set(attr_name, self._attribute_value(attribute, variables))
        last_was_atomic = False
        for item in template.content:
            if isinstance(item, TextTemplate):
                if item.value.strip():
                    element.append(Text(item.value))
                last_was_atomic = False
            elif isinstance(item, ElementTemplate):
                element.append(self._construct(item, variables, local_scope))
                last_was_atomic = False
            else:
                for value in self.evaluate(item, variables):
                    if _is_node(value):
                        node = value
                        if hasattr(node, "owner"):  # attribute node
                            element.append(Text(node.value))
                        elif isinstance(node, Document):
                            element.append(node.root_element.copy())
                        elif isinstance(node, Text):
                            element.append(Text(node.value))
                        else:
                            element.append(node.copy())
                        last_was_atomic = False
                    else:
                        text = as_string(value)
                        if last_was_atomic:
                            text = " " + text
                        element.append(Text(text))
                        last_was_atomic = True
        return element

    def _attribute_value(self, attribute: AttributeTemplate,
                         variables: dict[str, Any]) -> str:
        parts: list[str] = []
        for part in attribute.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                sequence = self.evaluate(part, variables)
                parts.append(" ".join(
                    string_value(item) if _is_node(item) else as_string(item)
                    for item in sequence))
        return "".join(parts)

    def _resolve(self, raw: str, scope: dict[str, str],
                 is_attribute: bool) -> QName:
        prefix, sep, local = raw.partition(":")
        if not sep:
            if is_attribute:
                return QName(None, raw)
            uri = scope.get("") or self.default_ns
            return QName(uri, raw)
        uri = scope.get(prefix) or self.prolog_namespaces.get(prefix)
        if uri is None:
            raise XQEvaluationError(
                f"undeclared prefix {prefix!r} in constructor")
        return QName(uri, local)


def evaluate_parsed_query(query: Query, context_node: XPathNode | None = None,
                          variables: dict[str, Any] | None = None,
                          documents: dict[str, Element] | None = None,
                          namespaces: dict[str, str] | None = None) -> Sequence:
    """Evaluate a parsed query; see :func:`evaluate_query`."""
    if context_node is None:
        context_node = Document([])
    context = Context(node=context_node, variables=dict(variables or {}),
                      namespaces=dict(namespaces or {}))
    runtime = _XQRuntime(query.prolog, context, documents)
    try:
        return runtime.evaluate(query.body, {})
    except XPathEvaluationError as exc:
        raise XQEvaluationError(str(exc)) from exc


def evaluate_query(text: str, context_node: XPathNode | None = None,
                   variables: dict[str, Any] | None = None,
                   documents: dict[str, Element] | None = None,
                   namespaces: dict[str, str] | None = None) -> Sequence:
    """Parse and evaluate an XQ-lite query.

    ``variables`` are external bindings (the input variable bindings the
    GRH sends along with a query component); ``documents`` backs the
    ``doc()`` function.  Returns the result sequence.
    """
    return evaluate_parsed_query(parse_query(text), context_node, variables,
                                 documents, namespaces)
