"""XQ-lite: a functional XML query language (FLWOR subset over XPath).

The stand-in for the paper's Saxon XQuery processor: a *functional-style*
component language (Sec. 3) whose results are XML fragments, bound to rule
variables via ``<eca:variable>`` wrappers (Fig. 8).
"""

from .ast import Query
from .evaluator import (Sequence, XQEvaluationError, evaluate_parsed_query,
                        evaluate_query)
from .parser import XQSyntaxError, parse_query

__all__ = ["parse_query", "XQSyntaxError", "evaluate_query",
           "evaluate_parsed_query", "XQEvaluationError", "Query", "Sequence"]
