"""Parser for XQ-lite.

Extends the XPath expression parser with:

* a prolog (``declare namespace p = "uri";``, ``declare default element
  namespace "uri";``),
* FLWOR expressions (``for`` / ``let`` / ``where`` / ``order by`` /
  ``return``),
* conditionals (``if (...) then ... else ...``),
* parenthesized sequences (``(e1, e2, ...)``),
* direct element constructors with embedded ``{ expr }`` blocks.

Direct constructors are scanned at the character level (the token stream
hands control over at the ``<`` and resumes after the construct), exactly
like real XQuery grammars do.
"""

from __future__ import annotations

from ..xpath.lexer import Lexer, TokenError
from ..xpath.parser import XPathParser, XPathSyntaxError
from .ast import (AttributeTemplate, ElementTemplate, FLWOR, ForClause,
                  IfExpr, LetClause, Prolog, Query, SequenceExpr,
                  TextTemplate)

__all__ = ["XQSyntaxError", "parse_query"]

_FLWOR_STARTERS = ("for", "let")


class XQSyntaxError(XPathSyntaxError):
    """Raised when a query does not conform to the XQ-lite grammar."""


class XQParser(XPathParser):
    """XPath parser extended with FLWOR, if, sequences and constructors."""

    # -- entry ----------------------------------------------------------------

    def parse_query(self) -> Query:
        prolog = self._parse_prolog()
        body = self.parse_expr()
        trailing = self.lexer.next()
        if trailing.kind != "eof":
            raise self.error(
                f"unexpected trailing input {trailing.value!r}", trailing)
        return Query(prolog, body)

    def _parse_prolog(self) -> Prolog:
        namespaces: list[tuple[str, str]] = []
        default_ns: str | None = None
        while self.lexer.peek().is_name("declare"):
            self.lexer.next()
            token = self.lexer.next()
            if token.is_name("namespace"):
                prefix = self.lexer.next()
                if prefix.kind != "name":
                    raise self.error("expected namespace prefix", prefix)
                self.expect_op("=")
                uri = self.lexer.next()
                if uri.kind != "string":
                    raise self.error("expected namespace URI string", uri)
                namespaces.append((prefix.value, uri.value))
            elif token.is_name("default"):
                for keyword in ("element", "namespace"):
                    word = self.lexer.next()
                    if not word.is_name(keyword):
                        raise self.error(f"expected {keyword!r}", word)
                uri = self.lexer.next()
                if uri.kind != "string":
                    raise self.error("expected namespace URI string", uri)
                default_ns = uri.value
            else:
                raise self.error("unsupported declaration", token)
            self.expect_op(";")
        return Prolog(tuple(namespaces), default_ns)

    # -- expression extensions ---------------------------------------------------

    def parse_expr(self):
        token = self.lexer.peek()
        if token.kind == "name" and token.value in _FLWOR_STARTERS \
                and self._keyword_follows_variable(token.value):
            return self._parse_flwor()
        if token.is_name("if") and self._peek_ahead(2)[1].is_op("("):
            return self._parse_if()
        return super().parse_expr()

    def _keyword_follows_variable(self, keyword: str) -> bool:
        # distinguish the FLWOR keyword from a path step named 'for'/'let'
        ahead = self._peek_ahead(2)
        return ahead[1].is_op("$")

    def parse_primary(self):
        token = self.lexer.peek()
        if token.is_op("<"):
            return self._parse_constructor()
        if token.is_op("("):
            # sequence expression: (a, b, c) — also plain parenthesis
            self.lexer.next()
            if self.lexer.peek().is_op(")"):
                self.lexer.next()
                return SequenceExpr(())
            items = [self.parse_expr()]
            while self.lexer.peek().is_op(","):
                self.lexer.next()
                items.append(self.parse_expr())
            self.expect_op(")")
            if len(items) == 1:
                return items[0]
            return SequenceExpr(tuple(items))
        return super().parse_primary()

    def parse_union(self):
        # Direct constructors may appear where a path would: detect '<'
        # before the path grammar consumes it as a comparison operator.
        if self.lexer.peek().is_op("<"):
            return self._parse_constructor()
        return super().parse_union()

    # -- FLWOR ----------------------------------------------------------------------

    def _parse_flwor(self) -> FLWOR:
        clauses: list[ForClause | LetClause] = []
        while True:
            token = self.lexer.peek()
            if token.is_name("for"):
                self.lexer.next()
                clauses.extend(self._parse_for_bindings())
            elif token.is_name("let"):
                self.lexer.next()
                clauses.extend(self._parse_let_bindings())
            else:
                break
        where = None
        if self.lexer.peek().is_name("where"):
            self.lexer.next()
            where = self.parse_expr()
        order_by = None
        descending = False
        if self.lexer.peek().is_name("order"):
            self.lexer.next()
            by = self.lexer.next()
            if not by.is_name("by"):
                raise self.error("expected 'by' after 'order'", by)
            order_by = self.parse_expr()
            if self.lexer.peek().is_name("descending"):
                self.lexer.next()
                descending = True
            elif self.lexer.peek().is_name("ascending"):
                self.lexer.next()
        return_token = self.lexer.next()
        if not return_token.is_name("return"):
            raise self.error("expected 'return'", return_token)
        body = self.parse_expr()
        return FLWOR(tuple(clauses), where, order_by, descending, body)

    def _parse_variable_name(self) -> str:
        self.expect_op("$")
        name = self.lexer.next()
        if name.kind != "name":
            raise self.error("expected variable name", name)
        return name.value

    def _parse_for_bindings(self) -> list[ForClause]:
        bindings = []
        while True:
            variable = self._parse_variable_name()
            in_token = self.lexer.next()
            if not in_token.is_name("in"):
                raise self.error("expected 'in'", in_token)
            bindings.append(ForClause(variable, self.parse_expr()))
            if self.lexer.peek().is_op(","):
                self.lexer.next()
            else:
                return bindings

    def _parse_let_bindings(self) -> list[LetClause]:
        bindings = []
        while True:
            variable = self._parse_variable_name()
            self.expect_op(":=")
            bindings.append(LetClause(variable, self.parse_expr()))
            if self.lexer.peek().is_op(","):
                self.lexer.next()
            else:
                return bindings

    def _parse_if(self) -> IfExpr:
        self.lexer.next()  # 'if'
        self.expect_op("(")
        condition = self.parse_expr()
        self.expect_op(")")
        then_token = self.lexer.next()
        if not then_token.is_name("then"):
            raise self.error("expected 'then'", then_token)
        then = self.parse_expr()
        else_token = self.lexer.next()
        if not else_token.is_name("else"):
            raise self.error("expected 'else'", else_token)
        otherwise = self.parse_expr()
        return IfExpr(condition, then, otherwise)

    # -- direct constructors ----------------------------------------------------------

    def _parse_constructor(self) -> ElementTemplate:
        start = self.lexer.offset_of_next()
        text = self.lexer.text
        template, end = _ConstructorScanner(text, start).scan()
        self.lexer.seek(end)
        return template


class _ConstructorScanner:
    """Character-level scanner for direct element constructors."""

    def __init__(self, text: str, pos: int) -> None:
        self.text = text
        self.pos = pos

    def error(self, message: str) -> XQSyntaxError:
        return XQSyntaxError(f"{message} (at offset {self.pos})")

    def scan(self) -> tuple[ElementTemplate, int]:
        template = self._element()
        return template, self.pos

    # -- helpers -------------------------------------------------------------

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def _skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
                self.text[self.pos].isalnum()
                or self.text[self.pos] in "_:.-"):
            self.pos += 1
        if start == self.pos:
            raise self.error("expected a name")
        return self.text[start:self.pos]

    def _embedded_expr(self):
        """Parse one ``{ expr }`` block, returning the expression AST."""
        self._expect("{")
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in "'\"":
                end = self.text.find(ch, self.pos + 1)
                if end < 0:
                    raise self.error("unterminated string in embedded expression")
                self.pos = end + 1
                continue
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    source = self.text[start:self.pos]
                    self.pos += 1
                    try:
                        return XQParser(Lexer(source)).parse_query().body
                    except TokenError as exc:
                        raise XQSyntaxError(str(exc)) from exc
            self.pos += 1
        raise self.error("unterminated embedded expression")

    # -- grammar -------------------------------------------------------------

    def _element(self) -> ElementTemplate:
        self._expect("<")
        name = self._name()
        nsdecls: list[tuple[str, str]] = []
        attributes: list[AttributeTemplate] = []
        while True:
            self._skip_space()
            if self.text.startswith("/>", self.pos):
                self.pos += 2
                return ElementTemplate(name, tuple(nsdecls),
                                       tuple(attributes), ())
            if self.text.startswith(">", self.pos):
                self.pos += 1
                break
            attr_name = self._name()
            self._skip_space()
            self._expect("=")
            self._skip_space()
            quote = self.text[self.pos:self.pos + 1]
            if quote not in "'\"":
                raise self.error("attribute value must be quoted")
            self.pos += 1
            parts = self._attribute_parts(quote)
            if attr_name == "xmlns":
                nsdecls.append(("", _only_literal(parts, self)))
            elif attr_name.startswith("xmlns:"):
                nsdecls.append((attr_name[6:], _only_literal(parts, self)))
            else:
                attributes.append(AttributeTemplate(attr_name, tuple(parts)))
        content = self._content(name)
        return ElementTemplate(name, tuple(nsdecls), tuple(attributes),
                               tuple(content))

    def _attribute_parts(self, quote: str) -> list:
        parts: list = []
        literal: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated attribute value")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                if literal:
                    parts.append("".join(literal))
                return parts
            if ch == "{":
                if self.text.startswith("{{", self.pos):
                    literal.append("{")
                    self.pos += 2
                    continue
                if literal:
                    parts.append("".join(literal))
                    literal = []
                parts.append(self._embedded_expr())
                continue
            if ch == "&":
                literal.append(self._entity())
                continue
            literal.append(ch)
            self.pos += 1

    def _entity(self) -> str:
        end = self.text.find(";", self.pos)
        if end < 0:
            raise self.error("unterminated entity reference")
        body = self.text[self.pos + 1:end]
        self.pos = end + 1
        table = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}
        if body in table:
            return table[body]
        if body.startswith("#x"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        raise self.error(f"unknown entity &{body};")

    def _content(self, open_name: str) -> list:
        content: list = []
        literal: list[str] = []

        def flush() -> None:
            if literal:
                content.append(TextTemplate("".join(literal)))
                literal.clear()

        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unclosed constructor <{open_name}>")
            if self.text.startswith("</", self.pos):
                self.pos += 2
                closing = self._name()
                self._skip_space()
                self._expect(">")
                if closing != open_name:
                    raise self.error(
                        f"mismatched constructor end tag </{closing}>")
                flush()
                return content
            ch = self.text[self.pos]
            if ch == "<":
                flush()
                content.append(self._element())
            elif ch == "{":
                if self.text.startswith("{{", self.pos):
                    literal.append("{")
                    self.pos += 2
                    continue
                flush()
                content.append(self._embedded_expr())
            elif ch == "}":
                if self.text.startswith("}}", self.pos):
                    literal.append("}")
                    self.pos += 2
                    continue
                raise self.error("unescaped '}' in constructor content")
            elif ch == "&":
                literal.append(self._entity())
            else:
                literal.append(ch)
                self.pos += 1


def _only_literal(parts: list, scanner: _ConstructorScanner) -> str:
    if len(parts) == 1 and isinstance(parts[0], str):
        return parts[0]
    if not parts:
        return ""
    raise scanner.error("namespace declarations must be literal")


def parse_query(text: str) -> Query:
    """Parse an XQ-lite query (prolog + expression)."""
    try:
        return XQParser(Lexer(text)).parse_query()
    except XQSyntaxError:
        raise
    except (TokenError, XPathSyntaxError) as exc:
        raise XQSyntaxError(str(exc)) from exc
