"""Abstract syntax of the XPath subset."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr", "Or", "And", "Comparison", "Arithmetic", "Negate", "Union",
    "Literal", "NumberLiteral", "VariableRef", "FunctionCall", "Path",
    "Step", "NodeTest", "NameTest", "KindTest", "Root", "ContextItem",
    "Filter",
]


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Or(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class And(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Comparison(Expr):
    op: str  # '=', '!=', '<', '<=', '>', '>='
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Arithmetic(Expr):
    op: str  # '+', '-', '*', 'div', 'mod'
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Negate(Expr):
    operand: Expr


@dataclass(frozen=True, slots=True)
class Union(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    value: str


@dataclass(frozen=True, slots=True)
class NumberLiteral(Expr):
    value: float


@dataclass(frozen=True, slots=True)
class VariableRef(Expr):
    name: str


@dataclass(frozen=True, slots=True)
class FunctionCall(Expr):
    name: str
    arguments: tuple[Expr, ...]


class NodeTest:
    """Base class of node tests within a step."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class NameTest(NodeTest):
    """``name``, ``prefix:name``, ``*`` or ``prefix:*``."""

    prefix: str | None
    local: str  # '*' means any


@dataclass(frozen=True, slots=True)
class KindTest(NodeTest):
    kind: str  # 'node', 'text', 'comment', 'processing-instruction'


@dataclass(frozen=True, slots=True)
class Step(Expr):
    axis: str
    test: NodeTest
    predicates: tuple[Expr, ...] = ()


@dataclass(frozen=True, slots=True)
class Root(Expr):
    """``/`` — the document root of the context node."""


@dataclass(frozen=True, slots=True)
class ContextItem(Expr):
    """``.`` — the context node."""


@dataclass(frozen=True, slots=True)
class Path(Expr):
    """A start expression followed by location steps."""

    start: Expr | None  # None means relative to the context node
    steps: tuple[Step, ...] = ()


@dataclass(frozen=True, slots=True)
class Filter(Expr):
    """A primary expression filtered by predicates: ``$x[2]``."""

    base: Expr
    predicates: tuple[Expr, ...] = field(default_factory=tuple)
