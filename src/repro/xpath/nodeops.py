"""Node-level operations backing the XPath evaluator.

The node model stores attributes in a dict, so XPath's attribute axis is
served by lightweight :class:`AttributeNode` wrappers created on demand.
This module also provides document order, string-values and the axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..xmlmodel import (Comment, Document, Element, Node,
                        ProcessingInstruction, QName, Text)

__all__ = ["AttributeNode", "XPathNode", "string_value", "document_order_key",
           "axis_nodes", "sort_document_order"]


@dataclass(frozen=True)
class AttributeNode:
    """An attribute viewed as an XPath node."""

    owner: Element
    name: QName
    value: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttributeNode({self.name.clark}={self.value!r})"


XPathNode = Element | Document | Text | Comment | ProcessingInstruction | AttributeNode


def string_value(node: XPathNode) -> str:
    """The XPath string-value of a node."""
    if isinstance(node, Element):
        return node.text()
    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, (Text, Comment)):
        return node.value
    if isinstance(node, ProcessingInstruction):
        return node.data
    if isinstance(node, Document):
        return node.root_element.text()
    raise TypeError(f"not an XPath node: {node!r}")


def document_order_key(node: XPathNode) -> tuple:
    """A sort key realizing document order within one tree.

    Attributes order directly after their owner element, before its
    children, and among themselves by expanded name.
    """
    if isinstance(node, AttributeNode):
        base = document_order_key(node.owner)
        return base + ((0, node.name.uri or "", node.name.local),)
    indices: list[tuple] = []
    current: Node = node
    while current.parent is not None:
        parent = current.parent
        # identity-based position: structurally equal siblings are
        # distinct nodes and must not collapse onto the same index
        indices.append((1, _identity_index(parent.children, current)))
        current = parent
    indices.reverse()
    return (id(current),) + tuple(indices)


def _identity_index(children: list, node) -> int:
    for index, child in enumerate(children):
        if child is node:
            return index
    raise ValueError("node is not among its parent's children")


def sort_document_order(nodes: list[XPathNode]) -> list[XPathNode]:
    """Sort and deduplicate a node list into document order."""
    seen: set[int] = set()
    unique: list[XPathNode] = []
    for node in nodes:
        key = id(node) if not isinstance(node, AttributeNode) else hash(
            (id(node.owner), node.name))
        if key not in seen:
            seen.add(key)
            unique.append(node)
    unique.sort(key=document_order_key)
    return unique


def _children(node: XPathNode) -> list:
    if isinstance(node, (Element, Document)):
        return node.children
    return []


def _descendants(node: XPathNode) -> Iterator[XPathNode]:
    for child in _children(node):
        yield child
        yield from _descendants(child)


def axis_nodes(node: XPathNode, axis: str) -> Iterator[XPathNode]:
    """The nodes on ``axis`` starting from ``node``, in axis order."""
    if axis == "child":
        yield from _children(node)
    elif axis == "descendant":
        yield from _descendants(node)
    elif axis == "descendant-or-self":
        yield node
        yield from _descendants(node)
    elif axis == "self":
        yield node
    elif axis == "parent":
        parent = node.owner if isinstance(node, AttributeNode) else node.parent
        if parent is not None:
            yield parent
    elif axis in ("ancestor", "ancestor-or-self"):
        if axis == "ancestor-or-self":
            yield node
        current = (node.owner if isinstance(node, AttributeNode)
                   else node.parent)
        while current is not None:
            yield current
            current = current.parent
    elif axis == "attribute":
        if isinstance(node, Element):
            for name, value in node.attributes.items():
                yield AttributeNode(node, name, value)
    elif axis == "following-sibling":
        yield from _siblings(node, forward=True)
    elif axis == "preceding-sibling":
        yield from _siblings(node, forward=False)
    else:  # pragma: no cover - parser rejects unknown axes
        raise ValueError(f"unsupported axis: {axis}")


def _siblings(node: XPathNode, forward: bool) -> Iterator[XPathNode]:
    if isinstance(node, AttributeNode) or node.parent is None:
        return
    siblings = node.parent.children
    index = _identity_index(siblings, node)
    if forward:
        yield from siblings[index + 1:]
    else:
        yield from reversed(siblings[:index])
