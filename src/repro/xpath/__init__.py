"""An XPath 1.0 subset: lexer, parser, evaluator, core function library.

One of the Logic-Programming-style "match free variables" query languages
of the paper's Section 3 (cf. XPathLog [May04]); also the path engine
underneath XQ-lite (:mod:`repro.xq`).
"""

from .ast import Expr
from .evaluator import (Context, XPathEvaluationError, as_boolean, as_nodeset,
                        as_number, as_string, evaluate, evaluate_expr)
from .lexer import Lexer, Token, TokenError
from .nodeops import (AttributeNode, XPathNode, axis_nodes,
                      document_order_key, sort_document_order, string_value)
from .parser import XPathParser, XPathSyntaxError, parse_xpath

__all__ = [
    "Expr", "parse_xpath", "XPathSyntaxError", "XPathParser",
    "Lexer", "Token", "TokenError",
    "Context", "evaluate", "evaluate_expr", "XPathEvaluationError",
    "as_string", "as_number", "as_boolean", "as_nodeset",
    "AttributeNode", "XPathNode", "string_value", "document_order_key",
    "sort_document_order", "axis_nodes",
]
