"""Recursive-descent parser for the XPath 1.0 subset.

Supports location paths with the forward/reverse axes used in practice,
abbreviations (``//``, ``@``, ``.``, ``..``), predicates, the full
expression grammar (boolean, comparison, arithmetic, union), variables,
literals and function calls.
"""

from __future__ import annotations

from .ast import (And, Arithmetic, Comparison, ContextItem, Expr, Filter,
                  FunctionCall, KindTest, Literal, NameTest, Negate, NodeTest,
                  NumberLiteral, Or, Path, Root, Step, Union, VariableRef)
from .lexer import Lexer, Token, TokenError

__all__ = ["XPathSyntaxError", "parse_xpath", "XPathParser"]

AXES = frozenset({
    "child", "descendant", "descendant-or-self", "self", "parent",
    "ancestor", "ancestor-or-self", "attribute", "following-sibling",
    "preceding-sibling",
})

_KIND_TESTS = frozenset({"node", "text", "comment", "processing-instruction"})


class XPathSyntaxError(ValueError):
    """Raised when an expression does not conform to the grammar."""


class XPathParser:
    """Parses one expression from a :class:`Lexer`.

    The XQ-lite parser subclasses this and overrides :meth:`parse_primary`
    to add constructors and FLWOR expressions.
    """

    def __init__(self, lexer: Lexer) -> None:
        self.lexer = lexer

    # -- helpers -------------------------------------------------------------

    def error(self, message: str, token: Token) -> XPathSyntaxError:
        return XPathSyntaxError(f"{message} (at offset {token.position})")

    def expect_op(self, value: str) -> Token:
        token = self.lexer.next()
        if not token.is_op(value):
            raise self.error(f"expected {value!r}, found {token.value!r}",
                             token)
        return token

    # -- expression grammar ----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.lexer.peek().is_name("or"):
            self.lexer.next()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.lexer.peek().is_name("and"):
            self.lexer.next()
            left = And(left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while self.lexer.peek().is_op("=", "!="):
            op = self.lexer.next().value
            left = Comparison(op, left, self.parse_relational())
        return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while self.lexer.peek().is_op("<", "<=", ">", ">="):
            op = self.lexer.next().value
            left = Comparison(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.lexer.peek().is_op("+", "-"):
            op = self.lexer.next().value
            left = Arithmetic(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.lexer.peek()
            if token.is_op("*") or token.is_name("div", "mod"):
                self.lexer.next()
                op = token.value
                left = Arithmetic(op, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.lexer.peek().is_op("-"):
            self.lexer.next()
            return Negate(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        left = self.parse_path()
        while self.lexer.peek().is_op("|"):
            self.lexer.next()
            left = Union(left, self.parse_path())
        return left

    # -- paths -----------------------------------------------------------------

    def parse_path(self) -> Expr:
        token = self.lexer.peek()
        if token.is_op("/"):
            self.lexer.next()
            if self._starts_step(self.lexer.peek()):
                steps = self._parse_relative_steps()
                return Path(Root(), tuple(steps))
            return Root()
        if token.is_op("//"):
            self.lexer.next()
            steps = [Step("descendant-or-self", KindTest("node"))]
            steps.extend(self._parse_relative_steps())
            return Path(Root(), tuple(steps))
        if self._starts_primary(token) or self._is_function_start(token):
            base = self.parse_primary()
            predicates = self._parse_predicates()
            if predicates:
                base = Filter(base, tuple(predicates))
            if self.lexer.peek().is_op("/", "//"):
                steps = self._continue_steps()
                return Path(base, tuple(steps))
            return base
        steps = self._parse_relative_steps()
        return Path(None, tuple(steps))

    def _continue_steps(self) -> list[Step]:
        steps: list[Step] = []
        while True:
            token = self.lexer.peek()
            if token.is_op("//"):
                self.lexer.next()
                steps.append(Step("descendant-or-self", KindTest("node")))
                steps.append(self._parse_step())
            elif token.is_op("/"):
                self.lexer.next()
                steps.append(self._parse_step())
            else:
                return steps

    def _parse_relative_steps(self) -> list[Step]:
        steps = [self._parse_step()]
        steps.extend(self._continue_steps())
        return steps

    @staticmethod
    def _starts_step(token: Token) -> bool:
        return (token.kind == "name" or token.is_op("@", ".", "*")
                or (token.kind == "op" and token.value == ".."))

    @staticmethod
    def _starts_primary(token: Token) -> bool:
        return (token.kind in ("string", "number")
                or token.is_op("(", "$"))

    def _peek_ahead(self, count: int) -> list[Token]:
        """The next ``count`` tokens, without consuming them."""
        taken = [self.lexer.next() for _ in range(count)]
        for token in reversed(taken):
            self.lexer.push_back(token)
        return taken

    def _is_function_start(self, token: Token) -> bool:
        """True when the upcoming tokens are ``name(`` or ``pfx:name(``
        and the name is not a kind test (``text()`` etc. are steps)."""
        if token.kind != "name" or token.value in _KIND_TESTS:
            return False
        ahead = self._peek_ahead(4)
        if ahead[1].is_op("("):
            return True
        return (ahead[1].is_op(":") and ahead[2].kind == "name"
                and ahead[3].is_op("("))

    def _parse_step(self) -> Step:
        token = self.lexer.next()
        if token.is_op("."):
            if self.lexer.peek().is_op("."):
                self.lexer.next()
                return Step("parent", KindTest("node"),
                            tuple(self._parse_predicates()))
            return Step("self", KindTest("node"),
                        tuple(self._parse_predicates()))
        axis = "child"
        if token.is_op("@"):
            axis = "attribute"
            token = self.lexer.next()
        elif token.kind == "name" and self.lexer.peek().is_op("::"):
            if token.value not in AXES:
                raise self.error(f"unknown axis {token.value!r}", token)
            axis = token.value
            self.lexer.next()
            token = self.lexer.next()
        test = self._parse_node_test(token)
        return Step(axis, test, tuple(self._parse_predicates()))

    def _parse_node_test(self, token: Token) -> NodeTest:
        if token.is_op("*"):
            return NameTest(None, "*")
        if token.kind != "name":
            raise self.error(f"expected a node test, found {token.value!r}",
                             token)
        if token.value in _KIND_TESTS and self.lexer.peek().is_op("("):
            self.lexer.next()
            self.expect_op(")")
            return KindTest(token.value)
        prefix: str | None = None
        local = token.value
        if self.lexer.peek().is_op(":"):
            self.lexer.next()
            prefix = local
            after = self.lexer.next()
            if after.is_op("*"):
                local = "*"
            elif after.kind == "name":
                local = after.value
            else:
                raise self.error("expected local name after prefix", after)
        return NameTest(prefix, local)

    def _parse_predicates(self) -> list[Expr]:
        predicates: list[Expr] = []
        while self.lexer.peek().is_op("["):
            self.lexer.next()
            predicates.append(self.parse_expr())
            self.expect_op("]")
        return predicates

    # -- primaries ---------------------------------------------------------------

    def parse_primary(self) -> Expr:
        token = self.lexer.next()
        if token.kind == "string":
            return Literal(token.value)
        if token.kind == "number":
            return NumberLiteral(float(token.value))
        if token.is_op("$"):
            name = self.lexer.next()
            if name.kind != "name":
                raise self.error("expected variable name after '$'", name)
            return VariableRef(name.value)
        if token.is_op("("):
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if token.kind == "name":
            name = token.value
            if self.lexer.peek().is_op(":"):
                # prefixed function name such as fn:count
                self.lexer.next()
                local = self.lexer.next()
                name = f"{name}:{local.value}"
            self.expect_op("(")
            arguments: list[Expr] = []
            if not self.lexer.peek().is_op(")"):
                arguments.append(self.parse_expr())
                while self.lexer.peek().is_op(","):
                    self.lexer.next()
                    arguments.append(self.parse_expr())
            self.expect_op(")")
            return FunctionCall(name, tuple(arguments))
        raise self.error(f"unexpected token {token.value!r}", token)

    # -- entry -------------------------------------------------------------------

    def parse_complete(self) -> Expr:
        expr = self.parse_expr()
        trailing = self.lexer.next()
        if trailing.kind != "eof":
            raise self.error(
                f"unexpected trailing input {trailing.value!r}", trailing)
        return expr


def parse_xpath(text: str) -> Expr:
    """Parse an XPath expression string into an AST."""
    try:
        return XPathParser(Lexer(text)).parse_complete()
    except TokenError as exc:
        raise XPathSyntaxError(str(exc)) from exc
