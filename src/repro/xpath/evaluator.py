"""Evaluation of XPath expressions against the XML node model.

Implements the XPath 1.0 data model: four value types (node-set, string,
number, boolean), existential comparison semantics, and the core function
library.  The :class:`Context` carries the context node, position/size,
variable bindings and in-scope namespace prefixes — variables are how the
ECA framework pushes rule bindings into component queries (Sec. 3 of the
paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..xmlmodel import Comment, Document, Element, ProcessingInstruction, Text
from .ast import (And, Arithmetic, Comparison, ContextItem, Expr, Filter,
                  FunctionCall, KindTest, Literal, NameTest, Negate,
                  NumberLiteral, Or, Path, Root, Step, Union, VariableRef)
from .nodeops import (AttributeNode, XPathNode, axis_nodes,
                      sort_document_order, string_value)
from .parser import parse_xpath

__all__ = ["Context", "XPathEvaluationError", "evaluate", "evaluate_expr",
           "as_string", "as_number", "as_boolean", "as_nodeset"]

XPathValue = Any  # list[XPathNode] | str | float | bool


class XPathEvaluationError(ValueError):
    """Raised for type errors, unknown functions or unbound variables."""


@dataclass(frozen=True)
class Context:
    """Evaluation context for one expression."""

    node: XPathNode
    position: int = 1
    size: int = 1
    variables: dict[str, XPathValue] = field(default_factory=dict)
    namespaces: dict[str, str] = field(default_factory=dict)
    default_element_namespace: str | None = None
    functions: dict[str, Callable] = field(default_factory=dict)

    def with_node(self, node: XPathNode, position: int, size: int) -> "Context":
        return replace(self, node=node, position=position, size=size)


# -- type coercions (XPath 1.0 §3.2/§4) ---------------------------------------


def as_string(value: XPathValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return _format_number(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return string_value(value[0]) if value else ""
    raise XPathEvaluationError(f"cannot convert {type(value).__name__} to string")


def _format_number(number: float) -> str:
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == int(number):
        return str(int(number))
    return repr(number)


def as_number(value: XPathValue) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return math.nan
    if isinstance(value, list):
        return as_number(as_string(value))
    raise XPathEvaluationError(f"cannot convert {type(value).__name__} to number")


def as_boolean(value: XPathValue) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return bool(value) and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, list):
        return bool(value)
    raise XPathEvaluationError(f"cannot convert {type(value).__name__} to boolean")


def as_nodeset(value: XPathValue) -> list[XPathNode]:
    if isinstance(value, list):
        return value
    if isinstance(value, (Element, Document, Text, Comment,
                          ProcessingInstruction, AttributeNode)):
        return [value]
    raise XPathEvaluationError("expression did not yield a node-set")


# -- comparison semantics ------------------------------------------------------


def _normalize_operand(value: XPathValue) -> XPathValue:
    """A bare node (e.g. a variable bound to one element) acts as a
    singleton node-set in comparisons."""
    if isinstance(value, (Element, Document, Text, Comment,
                          ProcessingInstruction, AttributeNode)):
        return [value]
    return value


def _compare(op: str, left: XPathValue, right: XPathValue) -> bool:
    left = _normalize_operand(left)
    right = _normalize_operand(right)
    left_is_ns = isinstance(left, list)
    right_is_ns = isinstance(right, list)
    if left_is_ns and right_is_ns:
        return any(_compare_atoms(op, string_value(a), string_value(b))
                   for a in left for b in right)
    if left_is_ns:
        return any(_compare_atoms(op, string_value(node), right)
                   for node in left)
    if right_is_ns:
        return any(_compare_atoms(op, left, string_value(node))
                   for node in right)
    return _compare_atoms(op, left, right)


def _compare_atoms(op: str, left: XPathValue, right: XPathValue) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = as_boolean(left) == as_boolean(right)
        elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
            result = as_number(left) == as_number(right)
        else:
            result = as_string(left) == as_string(right)
        return result if op == "=" else not result
    left_num, right_num = as_number(left), as_number(right)
    if op == "<":
        return left_num < right_num
    if op == "<=":
        return left_num <= right_num
    if op == ">":
        return left_num > right_num
    return left_num >= right_num


# -- the core function library -------------------------------------------------


def _fn_last(context: Context, args: list) -> float:
    return float(context.size)


def _fn_position(context: Context, args: list) -> float:
    return float(context.position)


def _fn_count(context: Context, args: list) -> float:
    return float(len(as_nodeset(args[0])))


def _fn_string(context: Context, args: list) -> str:
    if not args:
        return string_value(context.node)
    return as_string(args[0])


def _fn_name(context: Context, args: list) -> str:
    nodes = as_nodeset(args[0]) if args else [context.node]
    if not nodes:
        return ""
    node = nodes[0]
    if isinstance(node, (Element, AttributeNode)):
        return node.name.local
    if isinstance(node, ProcessingInstruction):
        return node.target
    return ""


def _fn_namespace_uri(context: Context, args: list) -> str:
    nodes = as_nodeset(args[0]) if args else [context.node]
    if nodes and isinstance(nodes[0], (Element, AttributeNode)):
        return nodes[0].name.uri or ""
    return ""


def _fn_concat(context: Context, args: list) -> str:
    if len(args) < 2:
        raise XPathEvaluationError("concat() requires at least two arguments")
    return "".join(as_string(arg) for arg in args)


def _fn_substring(context: Context, args: list) -> str:
    text = as_string(args[0])
    start = round(as_number(args[1]))
    if len(args) > 2:
        length = round(as_number(args[2]))
        if math.isnan(length):
            return ""
        end = start + length
    else:
        end = len(text) + 1
    begin = max(1, start)
    if math.isnan(start) or begin >= end:
        return ""
    return text[begin - 1:end - 1]


def _fn_substring_before(context: Context, args: list) -> str:
    text, sep = as_string(args[0]), as_string(args[1])
    index = text.find(sep)
    return text[:index] if index >= 0 else ""


def _fn_substring_after(context: Context, args: list) -> str:
    text, sep = as_string(args[0]), as_string(args[1])
    index = text.find(sep)
    return text[index + len(sep):] if index >= 0 else ""


def _fn_translate(context: Context, args: list) -> str:
    text, source, target = (as_string(arg) for arg in args[:3])
    table: dict[int, int | None] = {}
    for index, ch in enumerate(source):
        if ord(ch) not in table:
            table[ord(ch)] = ord(target[index]) if index < len(target) else None
    return text.translate(table)


def _fn_sum(context: Context, args: list) -> float:
    return float(sum(as_number(string_value(node))
                     for node in as_nodeset(args[0])))


_FUNCTIONS: dict[str, Callable[[Context, list], XPathValue]] = {
    "last": _fn_last,
    "position": _fn_position,
    "count": _fn_count,
    "string": _fn_string,
    "name": _fn_name,
    "local-name": _fn_name,
    "namespace-uri": _fn_namespace_uri,
    "concat": _fn_concat,
    "starts-with": lambda c, a: as_string(a[0]).startswith(as_string(a[1])),
    "ends-with": lambda c, a: as_string(a[0]).endswith(as_string(a[1])),
    "contains": lambda c, a: as_string(a[1]) in as_string(a[0]),
    "substring": _fn_substring,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "string-length": lambda c, a: float(
        len(as_string(a[0]) if a else string_value(c.node))),
    "normalize-space": lambda c, a: " ".join(
        (as_string(a[0]) if a else string_value(c.node)).split()),
    "translate": _fn_translate,
    "boolean": lambda c, a: as_boolean(a[0]),
    "not": lambda c, a: not as_boolean(a[0]),
    "true": lambda c, a: True,
    "false": lambda c, a: False,
    "number": lambda c, a: as_number(a[0] if a else [c.node]),
    "sum": _fn_sum,
    "floor": lambda c, a: math.floor(as_number(a[0])),
    "ceiling": lambda c, a: math.ceil(as_number(a[0])),
    "round": lambda c, a: float(math.floor(as_number(a[0]) + 0.5)),
    "abs": lambda c, a: abs(as_number(a[0])),
    # XQuery 1.0 additions usable from XQ-lite and tests
    "exists": lambda c, a: bool(as_nodeset(a[0])) if isinstance(a[0], list)
    else True,
    "empty": lambda c, a: not a[0] if isinstance(a[0], list) else False,
    "distinct-values": lambda c, a: _fn_distinct_values(c, a),
    "string-join": lambda c, a: _fn_string_join(c, a),
    "min": lambda c, a: _fn_aggregate(a[0], min),
    "max": lambda c, a: _fn_aggregate(a[0], max),
    "avg": lambda c, a: _fn_avg(a[0]),
}


def _atomized_strings(value: XPathValue) -> list[str]:
    if isinstance(value, list):
        return [string_value(item) if not isinstance(item, (str, int, float,
                                                            bool))
                else as_string(item) for item in value]
    return [as_string(value)]


def _fn_distinct_values(context: Context, args: list) -> list:
    seen: list[str] = []
    for text in _atomized_strings(args[0]):
        if text not in seen:
            seen.append(text)
    return seen  # a sequence of atomic values (XQ-lite semantics)


def _fn_string_join(context: Context, args: list) -> str:
    separator = as_string(args[1]) if len(args) > 1 else ""
    return separator.join(_atomized_strings(args[0]))


def _fn_aggregate(value: XPathValue, chooser) -> float:
    numbers = [as_number(text) for text in _atomized_strings(value)]
    if not numbers:
        return math.nan
    return chooser(numbers)


def _fn_avg(value: XPathValue) -> float:
    numbers = [as_number(text) for text in _atomized_strings(value)]
    if not numbers:
        return math.nan
    return sum(numbers) / len(numbers)


# -- the evaluator ---------------------------------------------------------------


def evaluate_expr(expr: Expr, context: Context) -> XPathValue:
    """Evaluate a parsed expression in the given context."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, VariableRef):
        if expr.name not in context.variables:
            raise XPathEvaluationError(f"unbound variable ${expr.name}")
        return context.variables[expr.name]
    if isinstance(expr, Or):
        return (as_boolean(evaluate_expr(expr.left, context))
                or as_boolean(evaluate_expr(expr.right, context)))
    if isinstance(expr, And):
        return (as_boolean(evaluate_expr(expr.left, context))
                and as_boolean(evaluate_expr(expr.right, context)))
    if isinstance(expr, Comparison):
        return _compare(expr.op, evaluate_expr(expr.left, context),
                        evaluate_expr(expr.right, context))
    if isinstance(expr, Arithmetic):
        left = as_number(evaluate_expr(expr.left, context))
        right = as_number(evaluate_expr(expr.right, context))
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "div":
            if right == 0:
                return math.nan if left == 0 else math.copysign(
                    math.inf, left)
            return left / right
        return math.nan if right == 0 else math.fmod(left, right)
    if isinstance(expr, Negate):
        return -as_number(evaluate_expr(expr.operand, context))
    if isinstance(expr, Union):
        left = as_nodeset(evaluate_expr(expr.left, context))
        right = as_nodeset(evaluate_expr(expr.right, context))
        return sort_document_order(left + right)
    if isinstance(expr, FunctionCall):
        return _call_function(expr, context)
    if isinstance(expr, Root):
        return [_root_of(context.node)]
    if isinstance(expr, ContextItem):
        return [context.node]
    if isinstance(expr, Path):
        return _evaluate_path(expr, context)
    if isinstance(expr, Step):
        return _evaluate_steps([context.node], [expr], context)
    if isinstance(expr, Filter):
        nodes = as_nodeset(evaluate_expr(expr.base, context))
        return _apply_predicates(nodes, expr.predicates, context)
    raise XPathEvaluationError(f"cannot evaluate {type(expr).__name__}")


def _call_function(expr: FunctionCall, context: Context) -> XPathValue:
    handler = context.functions.get(expr.name) or _FUNCTIONS.get(
        expr.name.partition(":")[2] or expr.name) or _FUNCTIONS.get(expr.name)
    if handler is None:
        raise XPathEvaluationError(f"unknown function {expr.name}()")
    arguments = [evaluate_expr(arg, context) for arg in expr.arguments]
    return handler(context, arguments)


def _root_of(node: XPathNode) -> XPathNode:
    if isinstance(node, AttributeNode):
        node = node.owner
    return node.root()


def _evaluate_path(path: Path, context: Context) -> XPathValue:
    if path.start is None:
        start_nodes: list[XPathNode] = [context.node]
    else:
        start_nodes = as_nodeset(evaluate_expr(path.start, context))
    return _evaluate_steps(start_nodes, list(path.steps), context)


def _evaluate_steps(nodes: list[XPathNode], steps: list[Step],
                    context: Context) -> list[XPathNode]:
    current = nodes
    for step in steps:
        gathered: list[XPathNode] = []
        for node in current:
            along_axis = [candidate
                          for candidate in axis_nodes(node, step.axis)
                          if _matches_test(candidate, step, context)]
            # axis_nodes yields in axis order (reverse axes: nearest first),
            # which is exactly the order position() counts in.
            along_axis = _apply_predicates(along_axis, step.predicates,
                                           context)
            gathered.extend(along_axis)
        current = sort_document_order(gathered)
    return current


def _apply_predicates(nodes: list[XPathNode], predicates,
                      context: Context) -> list[XPathNode]:
    current = nodes
    for predicate in predicates:
        size = len(current)
        kept = []
        for index, node in enumerate(current):
            position = index + 1
            inner = context.with_node(node, position, size)
            value = evaluate_expr(predicate, inner)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if float(value) == float(position):
                    kept.append(node)
            elif as_boolean(value):
                kept.append(node)
        current = kept
    return current


def _matches_test(node: XPathNode, step: Step, context: Context) -> bool:
    test = step.test
    if isinstance(test, KindTest):
        if test.kind == "node":
            return True
        if test.kind == "text":
            return isinstance(node, Text)
        if test.kind == "comment":
            return isinstance(node, Comment)
        return isinstance(node, ProcessingInstruction)
    assert isinstance(test, NameTest)
    if step.axis == "attribute":
        if not isinstance(node, AttributeNode):
            return False
        name = node.name
        expected_uri = None
    else:
        if not isinstance(node, Element):
            return False
        name = node.name
        expected_uri = context.default_element_namespace
    if test.prefix is not None:
        if test.prefix not in context.namespaces:
            raise XPathEvaluationError(
                f"undeclared prefix {test.prefix!r} in name test")
        expected_uri = context.namespaces[test.prefix]
    if test.local != "*" and name.local != test.local:
        return False
    if test.local == "*" and test.prefix is None:
        return True
    return name.uri == expected_uri or (expected_uri is None
                                        and name.uri is None)


def evaluate(xpath: str, node: XPathNode,
             variables: dict[str, XPathValue] | None = None,
             namespaces: dict[str, str] | None = None,
             default_element_namespace: str | None = None) -> XPathValue:
    """Parse and evaluate an XPath expression against ``node``.

    ``variables`` provides ``$name`` bindings; ``namespaces`` resolves
    prefixes in name tests.  ``default_element_namespace`` optionally
    applies a namespace to unprefixed element name tests (XPath 2.0-style
    convenience; XPath 1.0 semantics when left ``None``).
    """
    expr = parse_xpath(xpath)
    context = Context(node=node, variables=dict(variables or {}),
                      namespaces=dict(namespaces or {}),
                      default_element_namespace=default_element_namespace)
    return evaluate_expr(expr, context)
