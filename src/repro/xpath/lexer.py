"""Tokenizer shared by the XPath and XQ-lite parsers.

The token stream is deliberately simple: names, numbers, strings,
variables (``$name``) and multi-character operators.  The XQ-lite parser
additionally switches the lexer into *raw* mode to read direct element
constructors, so the lexer exposes its position for hand-off.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "Lexer", "TokenError"]

_TWO_CHAR_OPS = ("//", "!=", "<=", ">=", "::", ":=")
_ONE_CHAR_OPS = "/[]()@.,|*+-=<>$"


class TokenError(ValueError):
    """Raised on unexpected characters or unterminated literals."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


@dataclass(frozen=True, slots=True)
class Token:
    kind: str       # 'name' | 'number' | 'string' | 'op' | 'eof'
    value: str
    position: int

    def is_op(self, *values: str) -> bool:
        return self.kind == "op" and self.value in values

    def is_name(self, *values: str) -> bool:
        return self.kind == "name" and (not values or self.value in values)


class Lexer:
    """Tokenizes an expression string with one-token lookahead."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self._pushed: list[Token] = []

    # -- raw access for the XQ-lite constructor parser ---------------------

    def raw_tail(self) -> str:
        """The unscanned remainder of the input (after pushed-back tokens)."""
        start = self._pushed[0].position if self._pushed else self.pos
        return self.text[start:]

    def seek(self, offset: int) -> None:
        """Reposition the scanner (used after raw constructor parsing)."""
        self._pushed.clear()
        self.pos = offset

    def offset_of_next(self) -> int:
        token = self.peek()
        return token.position

    # -- token interface -----------------------------------------------------

    def push_back(self, token: Token) -> None:
        self._pushed.append(token)

    def peek(self) -> Token:
        token = self.next()
        self.push_back(token)
        return token

    def next(self) -> Token:
        if self._pushed:
            return self._pushed.pop()
        self._skip_space()
        if self.pos >= len(self.text):
            return Token("eof", "", self.pos)
        start = self.pos
        ch = self.text[start]
        if ch in "'\"":
            return self._string(ch)
        if ch.isdigit() or (ch == "." and self._peek_char(1).isdigit()):
            return self._number()
        if ch.isalpha() or ch == "_":
            return self._name()
        two = self.text[start:start + 2]
        if two in _TWO_CHAR_OPS:
            self.pos += 2
            return Token("op", two, start)
        if ch == "{" or ch == "}" or ch == ";":
            self.pos += 1
            return Token("op", ch, start)
        if ch in _ONE_CHAR_OPS or ch == ":":
            self.pos += 1
            return Token("op", ch, start)
        raise TokenError(f"unexpected character {ch!r}", start)

    def _peek_char(self, ahead: int) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def _skip_space(self) -> None:
        text = self.text
        while self.pos < len(text):
            if text[self.pos].isspace():
                self.pos += 1
            elif text.startswith("(:", self.pos):  # XQuery-style comment
                end = text.find(":)", self.pos + 2)
                if end < 0:
                    raise TokenError("unterminated comment", self.pos)
                self.pos = end + 2
            else:
                return

    def _string(self, quote: str) -> Token:
        start = self.pos
        end = self.text.find(quote, start + 1)
        if end < 0:
            raise TokenError("unterminated string literal", start)
        self.pos = end + 1
        return Token("string", self.text[start + 1:end], start)

    def _number(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and text[self.pos].isdigit():
            self.pos += 1
        if self.pos < len(text) and text[self.pos] == ".":
            self.pos += 1
            while self.pos < len(text) and text[self.pos].isdigit():
                self.pos += 1
        return Token("number", text[start:self.pos], start)

    def _name(self) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (text[self.pos].isalnum()
                                        or text[self.pos] in "_-."):
            self.pos += 1
        return Token("name", text[start:self.pos], start)
