"""The test (condition) language.

Section 4.5: *"The test component (which corresponds to the WHERE clause
in SQL) contains a condition over the bound variables which discards
those tuples that do not satisfy the condition.  In general, it is
evaluated locally, using only simple comparison predicates."*

The language is the XPath expression grammar restricted to value
expressions: variable references, literals, comparisons, boolean
connectives, arithmetic and the core functions.  Because variables may be
bound to XML fragments (Sec. 3), path navigation *into a variable* is
allowed (``$Car/class = "B"``); free-standing paths are rejected — a test
has no context document.
"""

from __future__ import annotations

from ..bindings import Binding, Relation, Uri
from ..xmlmodel import Document, Element
from ..xpath.ast import (And, Arithmetic, Comparison, ContextItem, Expr,
                         Filter, FunctionCall, Literal, Negate, NumberLiteral,
                         Or, Path, Root, Union, VariableRef)
from ..xpath.evaluator import (Context, XPathEvaluationError, as_boolean,
                               evaluate_expr)
from ..xpath.parser import parse_xpath, XPathSyntaxError

__all__ = ["TestExpression", "TestSyntaxError", "TestEvaluationError",
           "TEST_NS"]

#: Language URI of the built-in test language.
TEST_NS = "http://www.semwebtech.org/languages/2006/test"


class TestSyntaxError(ValueError):
    """Raised when a test expression is malformed or not a value expression."""

    __test__ = False  # not a pytest class, despite the name


class TestEvaluationError(ValueError):
    """Raised when a test cannot be evaluated over a binding."""

    __test__ = False  # not a pytest class, despite the name


def _collect_variables(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, VariableRef):
        out.add(expr.name)
    elif isinstance(expr, (Or, And)):
        _collect_variables(expr.left, out)
        _collect_variables(expr.right, out)
    elif isinstance(expr, (Comparison, Arithmetic, Union)):
        _collect_variables(expr.left, out)
        _collect_variables(expr.right, out)
    elif isinstance(expr, Negate):
        _collect_variables(expr.operand, out)
    elif isinstance(expr, FunctionCall):
        for argument in expr.arguments:
            _collect_variables(argument, out)
    elif isinstance(expr, Filter):
        _collect_variables(expr.base, out)
        for predicate in expr.predicates:
            _collect_variables(predicate, out)
    elif isinstance(expr, Path):
        if expr.start is not None:
            _collect_variables(expr.start, out)
        for step in expr.steps:
            for predicate in step.predicates:
                _collect_variables(predicate, out)


def _reject_free_paths(expr: Expr) -> None:
    """Paths must be anchored in a variable (tests have no context node)."""
    if isinstance(expr, Path):
        if expr.start is None or isinstance(expr.start, (Root, ContextItem)):
            raise TestSyntaxError(
                "test expressions may only navigate into variables "
                "($Var/...); free paths have no context document")
        _reject_free_paths(expr.start)
        for step in expr.steps:
            for predicate in step.predicates:
                _reject_free_paths(predicate)
    elif isinstance(expr, (Root, ContextItem)):
        raise TestSyntaxError("test expressions have no context node")
    elif isinstance(expr, (Or, And, Comparison, Arithmetic, Union)):
        _reject_free_paths(expr.left)
        _reject_free_paths(expr.right)
    elif isinstance(expr, Negate):
        _reject_free_paths(expr.operand)
    elif isinstance(expr, FunctionCall):
        for argument in expr.arguments:
            _reject_free_paths(argument)
    elif isinstance(expr, Filter):
        _reject_free_paths(expr.base)
        for predicate in expr.predicates:
            _reject_free_paths(predicate)


class TestExpression:
    """A compiled boolean test over variable bindings."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, source: str,
                 namespaces: dict[str, str] | None = None) -> None:
        source = source.strip()
        if not source:
            raise TestSyntaxError("empty test expression")
        try:
            self._expr = parse_xpath(source)
        except XPathSyntaxError as exc:
            raise TestSyntaxError(str(exc)) from exc
        _reject_free_paths(self._expr)
        self.source = source
        self.namespaces = dict(namespaces or {})
        names: set[str] = set()
        _collect_variables(self._expr, names)
        self._variables = frozenset(names)

    def variables(self) -> frozenset[str]:
        """The variables the expression refers to (must be bound earlier)."""
        return self._variables

    def holds(self, binding: Binding) -> bool:
        """Evaluate the test over one tuple of bindings."""
        converted = {}
        for name, value in binding.items():
            if isinstance(value, Element):
                converted[name] = [value]
            elif isinstance(value, Uri):
                converted[name] = str(value)
            elif isinstance(value, (int, float)) and not isinstance(value,
                                                                    bool):
                converted[name] = float(value)
            else:
                converted[name] = value
        context = Context(node=Document([]), variables=converted,
                          namespaces=self.namespaces)
        try:
            return as_boolean(evaluate_expr(self._expr, context))
        except XPathEvaluationError as exc:
            raise TestEvaluationError(
                f"cannot evaluate test {self.source!r}: {exc}") from exc

    def filter(self, relation: Relation) -> Relation:
        """Keep the tuples satisfying the test (the Sec. 4.5 semantics)."""
        return relation.select(self.holds)

    def __repr__(self) -> str:
        return f"TestExpression({self.source!r})"
