"""The test/condition component language (Sec. 4.5 of the paper)."""

from .language import (TEST_NS, TestEvaluationError, TestExpression,
                       TestSyntaxError)

__all__ = ["TestExpression", "TestSyntaxError", "TestEvaluationError",
           "TEST_NS"]
