"""Variable bindings: tuples, relations, natural join, answer markup.

The central data structure of the paper's rule semantics (Section 3):
communication between the ECA engine and every component language happens
by exchanging *sets of tuples of variable bindings*.
"""

from .markup import (ANSWER, ANSWERS, RESULT, VARIABLE, MarkupError,
                     answer_to_binding, answers_to_relation,
                     binding_to_answer, element_to_value,
                     relation_to_answers, results_from_answer,
                     value_to_element, value_to_text)
from .relation import Binding, BindingError, Relation
from .values import Uri, Value, value_sort_key, values_equal

__all__ = [
    "Binding", "Relation", "BindingError",
    "Uri", "Value", "values_equal", "value_sort_key",
    "relation_to_answers", "answers_to_relation",
    "binding_to_answer", "answer_to_binding",
    "value_to_element", "element_to_value", "value_to_text",
    "results_from_answer", "MarkupError",
    "ANSWERS", "ANSWER", "VARIABLE", "RESULT",
]
