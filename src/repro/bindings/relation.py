"""Tuples of variable bindings and relational operations on sets of them.

The global semantics of an ECA rule (Sec. 3) is: each component maps a set
of tuples of variable bindings to a new set — the event component produces
the initial tuples, query components *extend* them (and restrict them via
join conditions), the test component *filters* them, and the action
component is executed once per remaining tuple.  The workhorse operation
is the **natural join** (Fig. 11: available cars ⋈ owned-car classes).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from .values import Value, value_sort_key, values_equal, _join_key

__all__ = ["Binding", "Relation", "BindingError"]


class BindingError(ValueError):
    """Raised on conflicting or malformed bindings."""


class Binding(Mapping[str, Value]):
    """One immutable tuple of variable bindings (variable name → value)."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[str, Value] | Iterable[tuple[str, Value]]
                 = ()) -> None:
        mapping = dict(data)
        for name in mapping:
            if not name or not isinstance(name, str):
                raise BindingError(f"invalid variable name: {name!r}")
        self._data = mapping
        self._hash: int | None = None

    # -- Mapping interface ----------------------------------------------------

    def __getitem__(self, name: str) -> Value:
        return self._data[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- algebra ---------------------------------------------------------------

    def compatible(self, other: "Binding") -> bool:
        """True when the two tuples agree on all shared variables."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return all(name not in large or values_equal(value, large[name])
                   for name, value in small.items())

    def merged(self, other: "Binding") -> "Binding":
        """The union of two compatible tuples."""
        if not self.compatible(other):
            raise BindingError(f"incompatible bindings: {self} vs {other}")
        merged = dict(self._data)
        merged.update(other._data)
        return Binding(merged)

    def extended(self, name: str, value: Value) -> "Binding":
        """This tuple with one more variable bound (must be fresh or equal)."""
        if name in self._data and not values_equal(self._data[name], value):
            raise BindingError(
                f"variable {name!r} already bound to a different value")
        data = dict(self._data)
        data[name] = value
        return Binding(data)

    def projected(self, names: Iterable[str]) -> "Binding":
        keep = set(names)
        return Binding({name: value for name, value in self._data.items()
                        if name in keep})

    # -- comparison --------------------------------------------------------------

    def _key(self) -> frozenset:
        return frozenset((name, _join_key(value))
                         for name, value in self._data.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Binding):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}"
                          for name, value in sorted(self._data.items()))
        return f"{{{inner}}}"


class Relation:
    """An ordered, duplicate-free set of binding tuples.

    Order is insertion order (deterministic for tests and benchmarks);
    duplicates — under value equality — are dropped on construction, as the
    paper's semantics is set-based.
    """

    __slots__ = ("_tuples",)

    def __init__(self, tuples: Iterable[Binding | Mapping[str, Value]] = ())\
            -> None:
        unique: dict[Binding, None] = {}
        for item in tuples:
            binding = item if isinstance(item, Binding) else Binding(item)
            unique.setdefault(binding, None)
        self._tuples: tuple[Binding, ...] = tuple(unique)

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def unit(cls) -> "Relation":
        """The join identity: one empty tuple."""
        return cls([Binding()])

    @classmethod
    def empty(cls) -> "Relation":
        """The join absorber: no tuples."""
        return cls()

    # -- basic accessors -------------------------------------------------------------

    def __iter__(self) -> Iterator[Binding]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return frozenset(self._tuples) == frozenset(other._tuples)

    def __hash__(self) -> int:
        return hash(frozenset(self._tuples))

    def variables(self) -> set[str]:
        """All variable names bound in at least one tuple."""
        names: set[str] = set()
        for binding in self._tuples:
            names.update(binding)
        return names

    def common_variables(self) -> set[str]:
        """Variable names bound in *every* tuple (the reliable schema)."""
        if not self._tuples:
            return set()
        names = set(self._tuples[0])
        for binding in self._tuples[1:]:
            names &= set(binding)
        return names

    # -- relational algebra ---------------------------------------------------------

    def join(self, other: "Relation") -> "Relation":
        """Natural join (Fig. 11): hash join over the shared variables."""
        if not self._tuples or not other._tuples:
            return Relation.empty()
        left, right = self, other
        shared = sorted(left.common_variables() & right.common_variables())
        if not shared:
            # No guaranteed-shared variables: fall back to pairwise
            # compatibility (handles heterogeneous tuples and products).
            return Relation(a.merged(b) for a in left for b in right
                            if a.compatible(b))
        if len(left) > len(right):
            left, right = right, left
        index: dict[tuple, list[Binding]] = {}
        for binding in left:
            key = tuple(_join_key(binding[name]) for name in shared)
            index.setdefault(key, []).append(binding)
        out: list[Binding] = []
        for probe in right:
            key = tuple(_join_key(probe[name]) for name in shared)
            for match in index.get(key, ()):
                if match.compatible(probe):
                    out.append(match.merged(probe))
        return Relation(out)

    def select(self, predicate: Callable[[Binding], bool]) -> "Relation":
        return Relation(b for b in self._tuples if predicate(b))

    def project(self, names: Iterable[str]) -> "Relation":
        keep = list(names)
        return Relation(b.projected(keep) for b in self._tuples)

    def union(self, other: "Relation") -> "Relation":
        return Relation((*self._tuples, *other._tuples))

    def extend_each(self, name: str,
                    producer: Callable[[Binding], Iterable[Value]]) \
            -> "Relation":
        """Bind ``name`` in each tuple to every value ``producer`` yields.

        This is the ``<eca:variable>`` semantics (Sec. 3 / Fig. 8): a
        functional component is evaluated once per input tuple and *each*
        of its results yields a separate output tuple; tuples whose
        producer yields nothing are dropped.
        """
        out: list[Binding] = []
        for binding in self._tuples:
            for value in producer(binding):
                out.append(binding.extended(name, value))
        return Relation(out)

    def extend_many(self, producer: Callable[[Binding],
                                             Iterable["Binding | Mapping"]]) \
            -> "Relation":
        """Extend each tuple with every compatible binding the producer
        yields for it (a per-tuple join against computed results)."""
        out: list[Binding] = []
        for binding in self._tuples:
            for extra in producer(binding):
                other = extra if isinstance(extra, Binding) else Binding(extra)
                if binding.compatible(other):
                    out.append(binding.merged(other))
        return Relation(out)

    # -- presentation ------------------------------------------------------------------

    def sorted(self) -> "Relation":
        """Deterministically ordered copy (for table printing)."""
        def key(binding: Binding):
            return tuple((name, value_sort_key(value))
                         for name, value in sorted(binding.items()))
        return Relation(sorted(self._tuples, key=key))

    def to_table(self) -> str:
        """Render as an ASCII table like the binding tables in Figs. 6–11."""
        columns = sorted(self.variables())
        if not columns:
            return f"({len(self)} tuple{'s' if len(self) != 1 else ''})"
        from .markup import value_to_text
        rows = [[value_to_text(binding.get(column, "")) if column in binding
                 else "—" for column in columns]
                for binding in self.sorted()]
        widths = [max(len(column), *(len(row[i]) for row in rows))
                  if rows else len(column)
                  for i, column in enumerate(columns)]
        def line(cells):
            return "| " + " | ".join(cell.ljust(width)
                                     for cell, width in zip(cells, widths)) + " |"
        sep = "+-" + "-+-".join("-" * width for width in widths) + "-+"
        out = [sep, line(columns), sep]
        out.extend(line(row) for row in rows)
        out.append(sep)
        return "\n".join(out)

    def __repr__(self) -> str:
        return f"Relation({list(self._tuples)!r})"
