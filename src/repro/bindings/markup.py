"""XML markup for answers and variable bindings (the ``log:`` vocabulary).

The ECA engine and the component services exchange *sets of tuples of
variable bindings* as XML messages (Figs. 6–9 of the paper)::

    <log:answers xmlns:log="...">
      <log:answer>
        <log:variable name="Person">John Doe</log:variable>
        <log:variable name="OwnCar" type="xml"><car .../></log:variable>
      </log:answer>
      ...
    </log:answers>

Framework-aware functional services (the wrapped Saxon node of Fig. 8)
return one ``<log:result>`` per functional result inside each answer;
:func:`results_from_answer` extracts them for ``eca:variable`` binding.
"""

from __future__ import annotations

from ..xmlmodel import Element, LOG_NS, QName, Text
from .relation import Binding, BindingError, Relation
from .values import Uri, Value

__all__ = [
    "ANSWERS", "ANSWER", "VARIABLE", "RESULT",
    "relation_to_answers", "answers_to_relation",
    "binding_to_answer", "answer_to_binding",
    "value_to_element", "element_to_value", "value_to_text",
    "results_from_answer", "MarkupError",
]

ANSWERS = QName(LOG_NS, "answers")
ANSWER = QName(LOG_NS, "answer")
VARIABLE = QName(LOG_NS, "variable")
RESULT = QName(LOG_NS, "result")

_NAME = QName(None, "name")
_TYPE = QName(None, "type")


class MarkupError(ValueError):
    """Raised on malformed answer markup."""


def value_to_text(value: Value) -> str:
    """The textual form of a value (used in tables and opaque substitution)."""
    if isinstance(value, Element):
        from ..xmlmodel import serialize
        return serialize(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def value_to_element(name: str, value: Value) -> Element:
    """Wrap one binding as a ``log:variable`` element."""
    element = Element(VARIABLE, {_NAME: name})
    if isinstance(value, Element):
        element.set(_TYPE, "xml")
        element.append(value.copy())
    elif isinstance(value, bool):
        element.set(_TYPE, "boolean")
        element.append(Text("true" if value else "false"))
    elif isinstance(value, Uri):
        element.set(_TYPE, "uri")
        element.append(Text(str(value)))
    elif isinstance(value, (int, float)):
        element.set(_TYPE, "number")
        element.append(Text(value_to_text(value)))
    else:
        element.append(Text(str(value)))
    return element


def element_to_value(element: Element) -> tuple[str, Value]:
    """Read one ``log:variable`` element back into (name, value)."""
    if element.name != VARIABLE:
        raise MarkupError(f"expected log:variable, got {element.name.clark}")
    name = element.get(_NAME)
    if not name:
        raise MarkupError("log:variable without name attribute")
    kind = element.get(_TYPE, "string")
    if kind == "xml":
        children = list(element.elements())
        if len(children) != 1:
            raise MarkupError(
                f"xml-typed variable {name!r} must contain exactly one element")
        return name, children[0].copy()
    text = element.text()
    if kind == "string":
        return name, text
    if kind == "uri":
        return name, Uri(text)
    if kind == "boolean":
        if text not in ("true", "false"):
            raise MarkupError(f"invalid boolean value {text!r}")
        return name, text == "true"
    if kind == "number":
        try:
            return name, int(text)
        except ValueError:
            try:
                return name, float(text)
            except ValueError:
                raise MarkupError(f"invalid number value {text!r}") from None
    raise MarkupError(f"unknown variable type {kind!r}")


def binding_to_answer(binding: Binding,
                      results: list[Value] | None = None) -> Element:
    """Wrap one tuple as a ``log:answer`` element."""
    answer = Element(ANSWER)
    for name in sorted(binding):
        answer.append(value_to_element(name, binding[name]))
    for result in results or ():
        wrapper = Element(RESULT)
        if isinstance(result, Element):
            wrapper.set(_TYPE, "xml")
            wrapper.append(result.copy())
        else:
            # Reuse the variable encoding to pick the right type tag.
            encoded = value_to_element("_", result)
            if encoded.get(_TYPE):
                wrapper.set(_TYPE, encoded.get(_TYPE))
            wrapper.append(Text(encoded.text()))
        answer.append(wrapper)
    return answer


def answer_to_binding(answer: Element) -> Binding:
    """Read the variable bindings of one ``log:answer`` element."""
    if answer.name != ANSWER:
        raise MarkupError(f"expected log:answer, got {answer.name.clark}")
    data: dict[str, Value] = {}
    for child in answer.findall(VARIABLE):
        name, value = element_to_value(child)
        if name in data:
            raise MarkupError(f"duplicate variable {name!r} in answer")
        data[name] = value
    try:
        return Binding(data)
    except BindingError as exc:
        raise MarkupError(str(exc)) from exc


def results_from_answer(answer: Element) -> list[Value]:
    """The ``log:result`` values of one answer (functional components)."""
    results: list[Value] = []
    for child in answer.findall(RESULT):
        kind = child.get(_TYPE, "string")
        if kind == "xml":
            inner = list(child.elements())
            if len(inner) != 1:
                raise MarkupError("xml-typed result must contain one element")
            results.append(inner[0].copy())
        elif kind == "number":
            text = child.text()
            try:
                results.append(int(text))
            except ValueError:
                results.append(float(text))
        elif kind == "boolean":
            results.append(child.text() == "true")
        elif kind == "uri":
            results.append(Uri(child.text()))
        else:
            results.append(child.text())
    return results


def relation_to_answers(relation: Relation) -> Element:
    """Serialize a whole relation as a ``log:answers`` message."""
    answers = Element(ANSWERS, nsdecls={"log": LOG_NS})
    for binding in relation:
        answers.append(binding_to_answer(binding))
    return answers


def answers_to_relation(answers: Element) -> Relation:
    """Parse a ``log:answers`` message back into a relation."""
    if answers.name != ANSWERS:
        raise MarkupError(f"expected log:answers, got {answers.name.clark}")
    return Relation(answer_to_binding(child)
                    for child in answers.findall(ANSWER))
