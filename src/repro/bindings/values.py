"""The value model for variable bindings.

Section 3 of the paper: *"Variables can be bound to values/literals,
references (URIs), XML or RDF fragments, or events (marked up as XML...)"*.
We therefore admit:

* strings, numbers (int/float) and booleans — literals,
* :class:`Uri` — references,
* :class:`~repro.xmlmodel.Element` — XML fragments (events are XML
  fragments carrying their own markup; RDF fragments are serialized RDF/XML
  descriptions).

Equality between values (used by the join, Fig. 11) is type-aware:
numbers compare numerically, XML fragments structurally, and strings never
equal numbers — ``"2"`` and ``2`` are different values.
"""

from __future__ import annotations

from ..xmlmodel import Element

__all__ = ["Uri", "Value", "values_equal", "value_sort_key"]


class Uri(str):
    """A URI reference value (distinct from a plain string in joins)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"Uri({str.__repr__(self)})"


Value = str | int | float | bool | Uri | Element


def values_equal(left: Value, right: Value) -> bool:
    """Type-aware equality used as the join predicate."""
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num and right_num:
        return float(left) == float(right)
    if left_num != right_num:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) \
            and left == right
    if isinstance(left, Element) or isinstance(right, Element):
        return isinstance(left, Element) and isinstance(right, Element) \
            and left == right
    if isinstance(left, Uri) != isinstance(right, Uri):
        return False
    return str(left) == str(right)


def _join_key(value: Value):
    """A hashable key consistent with :func:`values_equal`."""
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", float(value))
    if isinstance(value, Element):
        return ("xml", hash(value))
    if isinstance(value, Uri):
        return ("uri", str(value))
    return ("str", str(value))


def value_sort_key(value: Value):
    """A total order over values, for deterministic relation printing."""
    key = _join_key(value)
    return (key[0], str(key[1]))
