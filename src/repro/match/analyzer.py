"""The pattern analyzer: compiles detectors into discrimination keys.

A registered event component is a tree of detector nodes whose leaves
are :class:`~repro.events.atomic.AtomicPattern` templates.  The analyzer
answers two questions about such a tree *once, at registration time*:

* **Which events can possibly advance it?**  Every known operator of the
  SNOOP and XChange algebras changes state only when one of its leaf
  patterns produces an occurrence, so an event that matches no leaf can
  be withheld from the whole tree without changing its behaviour — the
  basis of the discrimination network (PROTOCOL.md §13).
* **What is the cheapest necessary condition for each leaf?**  Each leaf
  is compiled to one :class:`LeafKey` — a hashable index key the network
  buckets alpha nodes under.  An incoming event derives its own (small)
  set of :func:`probe_keys`; a leaf can only match the event if the
  leaf's *home key* is among the event's probe keys, so one hash lookup
  per probe key finds every candidate leaf.

Key grammar, most selective first:

``attr``
    the pattern's root carries a constant attribute equality
    (``person="mehl"``); keyed on ``(root tag, attribute, value)``.
``child-text``
    a childless child element of the root carries constant text
    (``<to>Vienna</to>``); keyed on ``(root tag, child tag, text)``.
``text``
    the (childless) root itself carries constant text; keyed on
    ``(root tag, text)``.
``tag``
    anything else — variable-only templates index on the root tag alone
    (always a concrete expanded name: templates are literal XML).

Trees the analyzer cannot prove event-driven go to the network's
*fallback bucket* and are offered every event, exactly like the linear
path: ``snoop:periodic`` (its ``feed`` advances a clock, so even a
non-matching event can fire detections) and any detector type outside
the two built-in algebras (exact-type checks — a subclass may override
``feed`` arbitrarily).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events.atomic import AtomicPattern, _classify
from ..events.snoop import (And, Any, Aperiodic, AperiodicCumulative, Atomic,
                            Detector, Not, Or, Periodic, Seq)
from ..events.xchange import (AndQuery, OrQuery, PatternQuery, SeqQuery,
                              WithoutQuery)
from ..xmlmodel import Element, QName, canonicalize

__all__ = ["LeafKey", "Analysis", "analyze", "compile_pattern",
           "pattern_identity", "probe_keys"]


@dataclass(frozen=True)
class LeafKey:
    """One hash-index key: ``kind`` ∈ {tag, attr, text, child-text}."""

    kind: str
    tag: QName
    detail: tuple = ()


def compile_pattern(pattern: AtomicPattern) -> LeafKey:
    """The *home key* of one leaf — its most selective constant test.

    Every test encoded in a key is a **necessary** condition for
    :meth:`AtomicPattern.match`, so bucketing the leaf's alpha node
    under its home key never hides it from an event it could match.
    """
    template = pattern.template
    constant_attrs = sorted(
        ((name, value) for name, value in template.attributes.items()
         if _classify(value)[0] == "lit"),
        key=lambda item: (item[0].uri or "", item[0].local, item[1]))
    if constant_attrs:
        return LeafKey("attr", template.name, constant_attrs[0])
    children = list(template.elements())
    child_texts = []
    for child in children:
        if next(child.elements(), None) is not None:
            continue
        text = child.text().strip()
        if text and _classify(text)[0] == "lit":
            child_texts.append((child.name.uri or "", child.name.local,
                                text, child.name))
    if child_texts:
        _, _, text, name = min(child_texts)
        return LeafKey("child-text", template.name, (name, text))
    if not children:
        text = template.text().strip()
        if text and _classify(text)[0] == "lit":
            return LeafKey("text", template.name, (text,))
    return LeafKey("tag", template.name)


def probe_keys(payload: Element) -> list[LeafKey]:
    """Every home key an event with this payload could light up.

    Mirrors :func:`compile_pattern`: one ``tag`` key, one ``attr`` key
    per attribute, one ``text`` key when the root has text, and one
    ``child-text`` key per child element with text.  The list is small
    (bounded by the event's own size) and independent of how many
    patterns are registered.
    """
    name = payload.name
    keys = [LeafKey("tag", name)]
    seen = {keys[0]}
    for attribute, value in payload.attributes.items():
        key = LeafKey("attr", name, (attribute, value))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    text = payload.text().strip()
    if text:
        key = LeafKey("text", name, (text,))
        if key not in seen:
            seen.add(key)
            keys.append(key)
    for child in payload.elements():
        child_text = child.text().strip()
        if child_text:
            key = LeafKey("child-text", name, (child.name, child_text))
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


def pattern_identity(pattern: AtomicPattern) -> str:
    """A canonical identity under which equivalent leaves share one
    alpha node (and therefore one match per event).

    Two leaves share iff their templates are structurally equal (same
    canonical serialization — attribute order and prefixes ignored) and
    they bind the matched event to the same variable.
    """
    return (canonicalize(pattern.template) + "\x00"
            + (pattern.bind_event_to or ""))


@dataclass(frozen=True)
class Analysis:
    """What the analyzer concluded about one registered detector."""

    patterns: tuple[AtomicPattern, ...] = ()
    fallback: bool = False
    reason: str | None = None
    #: the tree is (or may be) time-driven: its ``poll`` can produce
    #: detections, so the service must keep polling it
    pollable: bool = False


def analyze(detector: Detector) -> Analysis:
    """Analyze a detector tree for discrimination-network insertion."""
    leaves: list[AtomicPattern] = []
    reason = _collect(detector, leaves)
    if reason is not None:
        return Analysis(fallback=True, reason=reason, pollable=True)
    return Analysis(patterns=tuple(leaves))


def _collect(detector: Detector, out: list[AtomicPattern]) -> str | None:
    """Gather leaf patterns; a string reason means *not indexable*.

    Exact-type dispatch on the built-in operator classes only: every
    operator listed here provably changes state and produces output
    only via leaf occurrences, so leaf discrimination is sound.  A
    subclass could override ``feed``/``poll``, so it falls back.
    """
    kind = type(detector)
    if kind is Atomic or kind is PatternQuery:
        out.append(detector.pattern)
        return None
    if kind is Or:
        return _collect_all(detector.children, out)
    if kind is And or kind is Seq:
        return _collect_all((detector.left, detector.right), out)
    if kind is Any:
        return _collect_all(detector.children, out)
    if kind is Not:
        # the forbidden child's events mutate state too (they record
        # blocking times), so its leaves route events just the same
        return _collect_all((detector.initiator, detector.forbidden,
                             detector.terminator), out)
    if kind is Aperiodic or kind is AperiodicCumulative:
        return _collect_all((detector.opener, detector.body,
                             detector.closer), out)
    if kind is Periodic:
        return "snoop:periodic is time-driven (feed advances its clock)"
    if kind is AndQuery or kind is SeqQuery:
        return _collect_all(detector.queries, out)
    if kind is OrQuery:
        return _collect_all(detector.queries, out)
    if kind is WithoutQuery:
        return _collect_all((detector.positive, detector.without), out)
    return f"unknown detector type {kind.__name__}"


def _collect_all(children, out: list[AtomicPattern]) -> str | None:
    for child in children:
        reason = _collect(child, out)
        if reason is not None:
            return reason
    return None
