"""The discrimination network: alpha indexing and beta routing.

A Rete-style (Forgy) two-stage structure shared by all event-detection
services (PROTOCOL.md §13):

* **Alpha stage** — every *unique* leaf pattern (by canonical identity,
  :func:`~repro.match.analyzer.pattern_identity`) owns one
  :class:`AlphaNode`, hash-bucketed under its home
  :class:`~repro.match.analyzer.LeafKey`.  An incoming event derives its
  probe keys, looks up only the matching buckets, and each candidate
  node runs its pattern test **once** — its result (the alpha memory
  for this event) is shared by every registered component that uses an
  equivalent leaf.
* **Beta stage** — a fired alpha node routes the event to the composite
  detectors subscribed to it; detectors none of whose leaves fired are
  never touched.  The per-event cost is therefore proportional to the
  *affected* components, not the registered population.
* **Fallback bucket** — trees the analyzer cannot prove event-driven
  (``snoop:periodic``, unknown detector types) are offered every event,
  preserving the linear path's semantics exactly.

Ordering guarantee: candidates are delivered in **registration order**
(the order a linear scan of the registration dict would visit them), so
detection sequences — and the service's monotonically assigned
detection ids — are byte-for-byte identical to the linear path.

The network itself is not synchronized; the owning service serializes
``insert``/``remove``/``route``/``pollable`` under its lock.
"""

from __future__ import annotations

import itertools
import threading

from ..events.base import Event, Occurrence
from ..events.snoop import Atomic, Detector
from ..events.xchange import PatternQuery
from .analyzer import (Analysis, LeafKey, analyze, compile_pattern,
                       pattern_identity, probe_keys)

__all__ = ["AlphaNode", "DiscriminationNetwork", "Candidate"]

#: (component_id, detector, shared occurrences or None) — ``route``'s
#: per-candidate result; occurrences are pre-computed only when the
#: component's whole detector *is* the shared leaf (alpha-memory reuse)
Candidate = tuple  # (str, Detector, list[Occurrence] | None)


class AlphaNode:
    """One unique leaf pattern and the components subscribed to it."""

    __slots__ = ("key", "identity", "pattern", "subscribers",
                 "_memo_event", "_memo_occurrence")

    def __init__(self, key: LeafKey, identity: str, pattern) -> None:
        self.key = key
        self.identity = identity
        self.pattern = pattern
        #: entry seq → _Entry; insertion does not matter (routing sorts)
        self.subscribers: dict[int, "_Entry"] = {}
        self._memo_event: Event | None = None
        self._memo_occurrence: Occurrence | None = None

    def test(self, event: Event) -> Occurrence | None:
        """Match ``event`` once; memoized per event object (the shared
        alpha memory — N subscribers cost one match, not N)."""
        if self._memo_event is not event:
            self._memo_event = event
            self._memo_occurrence = self.pattern.match(event)
        return self._memo_occurrence


class _Entry:
    """One registered component inside the network."""

    __slots__ = ("component_id", "detector", "seq", "nodes", "fallback",
                 "reason", "leaf")

    def __init__(self, component_id: str, detector: Detector,
                 seq: int) -> None:
        self.component_id = component_id
        self.detector = detector
        self.seq = seq
        self.nodes: list[AlphaNode] = []   # unique nodes this entry uses
        self.fallback = False
        self.reason: str | None = None
        #: set when the whole detector is one bare leaf sharing
        #: ``nodes[0]``'s pattern — its feed result IS the alpha memory
        self.leaf: AlphaNode | None = None


class DiscriminationNetwork:
    """Incrementally maintained index over registered detectors."""

    def __init__(self, service_name: str = "event-detection") -> None:
        self.service_name = service_name
        self._buckets: dict[LeafKey, dict[str, AlphaNode]] = {}
        self._nodes: dict[str, AlphaNode] = {}        # identity → node
        self._entries: dict[str, _Entry] = {}         # registration order
        self._fallback: dict[str, _Entry] = {}        # registration order
        self._seq = itertools.count()
        # lifetime counters for instrumentation (§13 observability)
        self.events_routed = 0
        self.candidates_delivered = 0
        self.last_candidates = 0
        self.alpha_tests = 0
        self._lock = threading.Lock()  # guards counters read by scrapes
        from .instrument import register_network
        register_network(self)

    # -- registration churn ------------------------------------------------

    def insert(self, component_id: str, detector: Detector) -> Analysis:
        """Index one component; O(leaves), no rebuild of existing state."""
        if component_id in self._entries:
            self.remove(component_id)
        entry = _Entry(component_id, detector, next(self._seq))
        analysis = analyze(detector)
        if analysis.fallback:
            entry.fallback = True
            entry.reason = analysis.reason
            self._fallback[component_id] = entry
        else:
            seen: set[str] = set()
            for pattern in analysis.patterns:
                identity = pattern_identity(pattern)
                if identity in seen:
                    continue
                seen.add(identity)
                node = self._nodes.get(identity)
                if node is None:
                    node = AlphaNode(compile_pattern(pattern), identity,
                                     pattern)
                    self._nodes[identity] = node
                    self._buckets.setdefault(node.key, {})[identity] = node
                node.subscribers[entry.seq] = entry
                entry.nodes.append(node)
            if (type(detector) in (Atomic, PatternQuery)
                    and len(entry.nodes) == 1):
                entry.leaf = entry.nodes[0]
        self._entries[component_id] = entry
        return analysis

    def remove(self, component_id: str) -> bool:
        """Drop one component; empty alpha nodes and buckets go with it."""
        entry = self._entries.pop(component_id, None)
        if entry is None:
            return False
        self._fallback.pop(component_id, None)
        for node in entry.nodes:
            node.subscribers.pop(entry.seq, None)
            if not node.subscribers:
                self._nodes.pop(node.identity, None)
                bucket = self._buckets.get(node.key)
                if bucket is not None:
                    bucket.pop(node.identity, None)
                    if not bucket:
                        del self._buckets[node.key]
        return True

    def clear(self) -> None:
        for component_id in list(self._entries):
            self.remove(component_id)

    def __contains__(self, component_id: str) -> bool:
        return component_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def component_ids(self) -> list[str]:
        return list(self._entries)

    # -- routing -----------------------------------------------------------

    def route(self, event: Event) -> list[Candidate]:
        """The components this event must be offered to, in registration
        order, with shared alpha-memory occurrences where reusable."""
        fired: dict[int, _Entry] = {}
        occurrences: dict[int, Occurrence] = {}
        tests = 0
        for key in probe_keys(event.payload):
            bucket = self._buckets.get(key)
            if not bucket:
                continue
            for node in bucket.values():
                tests += 1
                occurrence = node.test(event)
                if occurrence is None:
                    continue
                for seq, entry in node.subscribers.items():
                    fired[seq] = entry
                    if entry.leaf is node:
                        occurrences[seq] = occurrence
        ordered: list[tuple[int, Candidate]] = []
        for entry in self._fallback.values():
            ordered.append((entry.seq,
                            (entry.component_id, entry.detector, None)))
        for seq, entry in fired.items():
            shared = occurrences.get(seq)
            ordered.append((seq, (entry.component_id, entry.detector,
                                  [shared] if shared is not None else None)))
        ordered.sort(key=lambda item: item[0])
        candidates: list[Candidate] = [candidate for _, candidate in ordered]
        with self._lock:
            self.events_routed += 1
            self.alpha_tests += tests
            self.candidates_delivered += len(candidates)
            self.last_candidates = len(candidates)
        return candidates

    def pollable(self) -> list[tuple[str, Detector]]:
        """Components whose ``poll`` may produce detections, in
        registration order (only time-driven/fallback trees — every
        other built-in operator's ``poll`` provably returns nothing)."""
        return [(entry.component_id, entry.detector)
                for entry in self._fallback.values()]

    # -- introspection -----------------------------------------------------

    @property
    def alpha_node_count(self) -> int:
        return len(self._nodes)

    @property
    def shared_memory_count(self) -> int:
        """Alpha nodes serving more than one subscription — each is a
        leaf test the linear path would have run once *per rule*."""
        return sum(1 for node in self._nodes.values()
                   if len(node.subscribers) > 1)

    @property
    def fallback_count(self) -> int:
        return len(self._fallback)

    def stats(self) -> dict:
        with self._lock:
            routed = self.events_routed
            delivered = self.candidates_delivered
            last = self.last_candidates
            tests = self.alpha_tests
        subscriptions = sum(len(node.subscribers)
                            for node in self._nodes.values())
        return {
            "service": self.service_name,
            "registered": len(self._entries),
            "indexed": len(self._entries) - len(self._fallback),
            "fallback": len(self._fallback),
            "alpha_nodes": len(self._nodes),
            "shared_memories": self.shared_memory_count,
            "subscriptions": subscriptions,
            "buckets": len(self._buckets),
            "events_routed": routed,
            "alpha_tests": tests,
            "candidates_delivered": delivered,
            "last_candidates": last,
            "mean_candidates": (delivered / routed) if routed else 0.0,
        }

    def snapshot(self) -> dict:
        """The `/introspect/match` view: stats plus key-family and
        fallback-reason breakdowns."""
        view = self.stats()
        families: dict[str, int] = {}
        for key, bucket in self._buckets.items():
            families[key.kind] = families.get(key.kind, 0) + len(bucket)
        reasons: dict[str, int] = {}
        for entry in self._fallback.values():
            reason = entry.reason or "unknown"
            reasons[reason] = reasons.get(reason, 0) + 1
        view["key_families"] = families
        view["fallback_reasons"] = reasons
        return view
