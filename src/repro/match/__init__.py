"""``repro.match`` — Rete-style event discrimination (PROTOCOL.md §13).

Turns per-event matching cost from O(registered components) into
~O(affected components): registered detectors are compiled into an
alpha-indexed discrimination network shared by all event-detection
services, so a million-rule registration stays serviceable under an
event storm.  See :mod:`repro.match.analyzer` for the indexable-key
grammar and :mod:`repro.match.network` for routing semantics.
"""

from .analyzer import (Analysis, LeafKey, analyze, compile_pattern,
                       pattern_identity, probe_keys)
from .instrument import (CANDIDATE_BUCKETS, MatchInstruments,
                         install_match_metrics, live_networks,
                         live_snapshots, register_network)
from .network import AlphaNode, DiscriminationNetwork

__all__ = [
    "Analysis", "LeafKey", "analyze", "compile_pattern",
    "pattern_identity", "probe_keys",
    "AlphaNode", "DiscriminationNetwork",
    "MatchInstruments", "install_match_metrics", "live_networks",
    "live_snapshots", "register_network", "CANDIDATE_BUCKETS",
]
