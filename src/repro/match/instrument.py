"""Match-network observability: gauges, histograms, admin snapshots.

Every :class:`~repro.match.network.DiscriminationNetwork` registers
itself (weakly) with this module when constructed, so two consumers can
see the whole process without any extra wiring:

* :func:`install_match_metrics` adds scrape-time gauges and the
  candidate-set histogram family to a
  :class:`~repro.obs.metrics.MetricsRegistry`; the gauges aggregate
  over all live networks, labelled by service name;
* the admin surface's ``/introspect/match`` route renders
  :func:`live_snapshots` (PROTOCOL.md §13.4).

The weak registry never keeps a network (or the service owning it)
alive: a dropped service disappears from scrapes on the next cycle.
"""

from __future__ import annotations

import threading
import weakref

__all__ = ["register_network", "live_networks", "live_snapshots",
           "install_match_metrics", "MatchInstruments",
           "CANDIDATE_BUCKETS"]

#: histogram buckets for candidates-per-event — the quantity the whole
#: subsystem exists to keep small (candidate counts, not seconds)
CANDIDATE_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                     250.0, 1000.0, 10000.0)

_lock = threading.Lock()
_networks: "weakref.WeakSet" = weakref.WeakSet()


def register_network(network) -> None:
    """Track a live network for process-wide metrics/introspection."""
    with _lock:
        _networks.add(network)


def live_networks() -> list:
    with _lock:
        return list(_networks)


def live_snapshots() -> list[dict]:
    """One `/introspect/match` snapshot per live network, stable order."""
    snapshots = [network.snapshot() for network in live_networks()]
    snapshots.sort(key=lambda view: (view["service"],
                                     -view["registered"]))
    return snapshots


def _aggregate(field: str) -> dict[tuple[str, ...], float]:
    """Sum one stats field per service label over live networks."""
    totals: dict[tuple[str, ...], float] = {}
    for network in live_networks():
        label = (network.service_name,)
        totals[label] = totals.get(label, 0.0) + network.stats()[field]
    return totals


class MatchInstruments:
    """The handle a service uses to record per-event observations."""

    def __init__(self, candidates_histogram, events_counter) -> None:
        self._histogram = candidates_histogram
        self._events = events_counter

    def observe(self, service_name: str, candidates: int) -> None:
        self._histogram.labels(service_name).observe(float(candidates))
        self._events.labels(service_name).inc()


def install_match_metrics(registry) -> MatchInstruments:
    """Register the §13 match metrics on ``registry`` (idempotent).

    Scrape-time gauges (no per-event cost):

    * ``eca_match_alpha_nodes{service=…}`` — unique leaf patterns;
    * ``eca_match_shared_memories{service=…}`` — alpha nodes serving
      more than one subscription (sharing actually happening);
    * ``eca_match_fallback_patterns{service=…}`` — linear-bucket size.

    Per-event instruments, returned for the owning service to drive:

    * ``eca_match_candidates{service=…}`` histogram — candidate-set
      size per routed event;
    * ``eca_match_events_total{service=…}`` counter.
    """
    registry.gauge(
        "eca_match_alpha_nodes",
        "Unique alpha nodes in the event discrimination network",
        labels=("service",),
        callback=lambda: _aggregate("alpha_nodes"))
    registry.gauge(
        "eca_match_shared_memories",
        "Alpha nodes shared by more than one registered component",
        labels=("service",),
        callback=lambda: _aggregate("shared_memories"))
    registry.gauge(
        "eca_match_fallback_patterns",
        "Registered components in the linear fallback bucket",
        labels=("service",),
        callback=lambda: _aggregate("fallback"))
    histogram = registry.histogram(
        "eca_match_candidates",
        "Candidate components offered one event after discrimination",
        labels=("service",), buckets=CANDIDATE_BUCKETS)
    counter = registry.counter(
        "eca_match_events_total",
        "Events routed through the discrimination network",
        labels=("service",))
    return MatchInstruments(histogram, counter)
