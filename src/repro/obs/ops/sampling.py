"""Trace samplers: keep the traces that matter, afford the rest.

The PR-3 tracer exports every span of every rule instance.  At the
ROADMAP's traffic (millions of rule instances) that is neither
affordable nor useful — observability systems for event/action
processing keep *representative* healthy traces plus *all* interesting
ones.  Two complementary mechanisms:

**Head sampling** (:class:`ProbabilisticSampler`,
:class:`RateLimitedSampler`) decides when a trace *starts*: the tracer
asks ``sampler.sample(trace_id)`` once per root span, children inherit
the verdict, and unsampled spans are timed but never exported.  The
verdict also rides the ``traceparent`` flags byte (``…-00``), so a
remote service skips server-side span capture for a trace nobody will
keep (PROTOCOL.md §9).  Head sampling is the cheapest — unsampled
traces cost one hash — but it is blind: it drops erroring traces at the
same rate as healthy ones.

**Tail sampling** (:class:`TailSampler`) decides when a trace *ends*:
it sits in the exporter chain, buffers each trace's spans until the
root arrives (the engine finishes the root last), and then keeps the
whole trace iff it is *interesting* — a span erred, a resilience event
(retry, breaker, dead-letter) was recorded on it, or the root exceeded
a latency threshold — or, for healthy traces, with a configured
probability.  Tail sampling sees everything, so it keeps 100% of
failures while retaining only p of the healthy bulk.

Samplers are deterministic: the probabilistic verdict is a CRC-32 hash
of the trace id mixed with a caller-supplied seed, so a test (or a
replay) with pinned ids gets pinned decisions, and the same trace id
always gets the same verdict across engines sharing a seed.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import OrderedDict
from typing import Callable, Protocol, runtime_checkable

__all__ = ["Sampler", "AlwaysSampler", "ProbabilisticSampler",
           "RateLimitedSampler", "TailSampler", "DEFAULT_TAIL_MARKERS"]


@runtime_checkable
class Sampler(Protocol):
    """Head sampler contract: one verdict per new trace."""

    def sample(self, trace_id: str) -> bool:
        """``True`` keeps the trace; called once per root span."""
        ...


class AlwaysSampler:
    """Keeps everything — the explicit form of ``sampler=None``."""

    def sample(self, trace_id: str) -> bool:
        return True


def _hash_fraction(trace_id: str, seed: int) -> float:
    """A uniform-ish fraction in [0, 1) from a trace id and a seed.

    CRC-32 over the id text, then a multiply-xorshift finalizer
    (lowbias32) folding in the seed.  The CRC alone would not do: it is
    linear over GF(2), so two seeds entering via XOR or via the CRC
    start value differ by a *constant* across same-length ids and
    reseeding would barely change any threshold decision.  The
    finalizer diffuses the seed through every bit while staying cheap,
    stable across processes, and decoupled from the id-generation
    sequence.
    """
    x = (zlib.crc32(trace_id.encode()) + (seed & 0xFFFFFFFF)) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x7FEB352D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x846CA68B) & 0xFFFFFFFF
    x ^= x >> 16
    return x / 4294967296.0


class ProbabilisticSampler:
    """Head sampler keeping a fixed fraction of traces.

    The verdict is a pure function of ``(trace_id, seed)`` — no RNG
    state, no lock, deterministic under replay.
    """

    def __init__(self, probability: float, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.probability = probability
        self.seed = seed

    def sample(self, trace_id: str) -> bool:
        return _hash_fraction(trace_id, self.seed) < self.probability


class RateLimitedSampler:
    """Head sampler admitting at most ``max_per_second`` new traces.

    A token bucket (capacity ``burst``, default one second's worth):
    under the rate everything is kept; over it, excess traces are shed
    deterministically by arrival order.  Thread-safe — detections may
    start traces from several threads.
    """

    def __init__(self, max_per_second: float, burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_per_second <= 0:
            raise ValueError("max_per_second must be positive")
        self.max_per_second = max_per_second
        self.burst = burst if burst is not None else max(1.0, max_per_second)
        self.clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed = 0

    def sample(self, trace_id: str) -> bool:
        now = self.clock()
        with self._lock:
            elapsed = now - self._refilled_at
            if elapsed > 0:
                self._tokens = min(self.burst,
                                   self._tokens
                                   + elapsed * self.max_per_second)
                self._refilled_at = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.admitted += 1
                return True
            self.shed += 1
            return False


#: span-attribute keys that mark a trace as interesting to the tail
#: sampler; the resilience observer stamps them on the active GRH
#: request span (see ``Observability.install``)
DEFAULT_TAIL_MARKERS = ("retries", "breaker_open", "breaker_reject",
                        "dead_letter")


class TailSampler:
    """Exporter-chain tail sampler: buffer a trace, keep it if it earned it.

    Sits between the tracer and the real exporters.  ``export`` buffers
    spans per trace id; the engine finishes a rule instance's *root*
    span last, so a root's arrival means the trace is complete and the
    verdict can be taken over the whole tree:

    * any span with ``status != "ok"`` → keep (erroring and
      dead-lettered instances always survive — the engine marks a
      failed instance's root span ``error``);
    * any span carrying a *marker* attribute (resilience events:
      retry, breaker open/rejection, dead-letter) → keep;
    * root duration ≥ ``latency_threshold`` (seconds) → keep;
    * otherwise keep with ``probability`` (same deterministic
      ``(trace_id, seed)`` hash as the head sampler).

    A kept trace's spans are flushed to ``downstream`` in finish order;
    a dropped trace's spans are discarded.  Traces whose root never
    arrives (a crashed instance, spans from adopt-only paths) are
    evicted oldest-first once ``max_buffered_traces`` is exceeded and
    *flushed* rather than dropped — the tail sampler must never lose a
    trace it could not judge.
    """

    def __init__(self, probability: float = 0.0,
                 latency_threshold: float | None = None,
                 markers: tuple[str, ...] = DEFAULT_TAIL_MARKERS,
                 seed: int = 0, max_buffered_traces: int = 1024,
                 downstream: tuple = ()) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.probability = probability
        self.latency_threshold = latency_threshold
        self.markers = frozenset(markers)
        self.seed = seed
        self.max_buffered_traces = max_buffered_traces
        self.downstream = list(downstream)
        self._buffers: OrderedDict[str, list] = OrderedDict()
        self._lock = threading.Lock()
        self.kept = 0
        self.dropped = 0
        self.evicted = 0

    # -- the exporter contract ---------------------------------------------

    def export(self, span) -> None:
        flush: list | None = None
        evict: list | None = None
        with self._lock:
            buffer = self._buffers.get(span.trace_id)
            if buffer is None:
                buffer = self._buffers[span.trace_id] = []
            buffer.append(span)
            if span.parent_id is None:
                # the root arrived: the trace is complete — judge it
                del self._buffers[span.trace_id]
                if self._keep(buffer, span):
                    self.kept += 1
                    flush = buffer
                else:
                    self.dropped += 1
            elif len(self._buffers) > self.max_buffered_traces:
                _, evict = self._buffers.popitem(last=False)
                self.evicted += 1
        # exporting outside the lock: downstream exporters take their
        # own locks, and holding ours across theirs invites ordering
        # deadlocks under concurrent finishers
        if flush is not None:
            self._flush(flush)
        if evict is not None:
            self._flush(evict)

    def _keep(self, spans: list, root) -> bool:
        for span in spans:
            if span.status != "ok":
                return True
            if self.markers and not self.markers.isdisjoint(span.attributes):
                return True
        if self.latency_threshold is not None and \
                root.duration >= self.latency_threshold:
            return True
        if self.probability:
            return _hash_fraction(root.trace_id, self.seed) \
                < self.probability
        return False

    def _flush(self, spans: list) -> None:
        for exporter in self.downstream:
            for span in spans:
                exporter.export(span)

    # -- introspection ------------------------------------------------------

    def pending_traces(self) -> int:
        """Traces buffered awaiting their root span."""
        with self._lock:
            return len(self._buffers)
