"""Production operations for the observability core: ``repro.obs.ops``.

The PR-3 core (:mod:`repro.obs`) traces every rule instance in full and
exposes metrics; this package makes that affordable and operable at
production traffic:

* :mod:`~repro.obs.ops.sampling` — head-based (probabilistic,
  rate-limited) and tail-based trace samplers, wired through
  ``Tracer(sampler=…)`` / the exporter chain and propagated to remote
  services via the ``traceparent`` flags byte;
* :mod:`~repro.obs.ops.logs` — :class:`StructuredLogger`: JSON-lines
  structured logging (stdlib ``logging``-backed, size-capped rotating
  sink) where every record carries the active trace/span/rule/instance
  context;
* :mod:`~repro.obs.ops.admin` — the live introspection/health surface:
  ``GET /healthz``, ``/readyz`` and ``/introspect/*`` routes served by
  :class:`~repro.services.HttpServiceServer` or the standalone
  :class:`ObsAdminServer`.

Everything composes through the one :class:`repro.obs.Observability`
switch: ``Observability(sampler=…, tail=…, log_path=…)``.
"""

from .sampling import (AlwaysSampler, DEFAULT_TAIL_MARKERS,
                       ProbabilisticSampler, RateLimitedSampler, Sampler,
                       TailSampler)
from .logs import StructuredLogger
from .admin import (INTROSPECTION_ROUTES, IntrospectionSurface,
                    ObsAdminServer)

__all__ = ["Sampler", "AlwaysSampler", "ProbabilisticSampler",
           "RateLimitedSampler", "TailSampler", "DEFAULT_TAIL_MARKERS",
           "StructuredLogger", "IntrospectionSurface", "ObsAdminServer",
           "INTROSPECTION_ROUTES"]
