"""The live introspection and health surface of a running engine.

Kubernetes-style probes plus read-only JSON views over engine state,
served by any :class:`repro.services.HttpServiceServer` built with
``introspection=`` (co-hosted with a service and ``/metrics``) or by the
standalone :class:`ObsAdminServer`:

* ``GET /healthz`` — liveness: the process answers, nothing more;
* ``GET /readyz`` — readiness: 200 once crash recovery has completed
  and the journal is writable, 503 before (load balancers hold traffic
  until the engine can honour exactly-once replay); the payload also
  carries a breaker summary so an operator sees *why* a ready engine is
  degraded;
* ``GET /introspect/rules | /instances | /breakers | /dead-letters |
  /journal | /runtime | /replicas | /match | /sparql`` — JSON snapshots of the
  rule table, retained rule instances (``?rule=…&limit=…``),
  per-endpoint breaker/retry state, parked dead letters, the durability
  journal, the concurrent runtime (per-shard queue depths, utilization,
  admission and batcher counters), the replica health board
  (per-replica state, failover/hedge counters, prober status —
  PROTOCOL.md §12), the event discrimination networks hosted in this
  process (alpha nodes, shared memories, fallback buckets,
  candidates-per-event — PROTOCOL.md §13) and the planned SPARQL
  backends hosted in this process (store sizes, predicate statistics,
  recent plans with estimates vs actuals — PROTOCOL.md §15);
* ``GET /introspect/profile`` — the sampling profiler's recent window
  (per-subsystem shares, hottest stacks); ``?seconds=N`` takes a fresh
  blocking capture, ``?format=folded`` adds flamegraph-ready folded
  stacks (PROTOCOL.md §14);
* ``GET /introspect/latency`` — the critical-path analyzer's latency
  budget: per-phase shares and per-rule p50/p99 (PROTOCOL.md §14).

Snapshot discipline: every view first *copies* the shared state it
reads (under the owning component's lock where one exists, e.g.
``ResilienceManager.snapshot``), then builds plain dicts; JSON
serialization happens in the HTTP layer with no engine lock held.  The
engine side mutates its collections without locks (single evaluation
thread), so copies retry the handful of times a scrape can race a
mutation (``RuntimeError: … changed size during iteration``) instead of
locking the hot path.
"""

from __future__ import annotations

__all__ = ["IntrospectionSurface", "ObsAdminServer", "INTROSPECTION_ROUTES"]

#: every route the surface answers; HttpServiceServer dispatches on these
INTROSPECTION_ROUTES = ("/healthz", "/readyz", "/introspect/rules",
                        "/introspect/instances", "/introspect/breakers",
                        "/introspect/dead-letters", "/introspect/journal",
                        "/introspect/runtime", "/introspect/replicas",
                        "/introspect/match", "/introspect/sparql",
                        "/introspect/profile", "/introspect/latency")

#: how many times a copy retries when a scrape races an engine mutation
_SNAPSHOT_RETRIES = 5

#: default and hard cap for the instances view
_DEFAULT_INSTANCE_LIMIT = 100
_MAX_INSTANCE_LIMIT = 1000

#: longest blocking capture ``/introspect/profile?seconds=`` will honour
_MAX_CAPTURE_SECONDS = 30.0


def _copy(make):
    """Run a copying callable, retrying the benign iteration races."""
    for _ in range(_SNAPSHOT_RETRIES):
        try:
            return make()
        except RuntimeError:
            continue
    return make()


class IntrospectionSurface:
    """Read-only JSON views over one engine, for the admin routes.

    ``handle(path, params)`` returns ``(http_status, payload_dict)``;
    the HTTP layer owns serialization and transport concerns.
    """

    def __init__(self, engine, observability=None) -> None:
        self.engine = engine
        self.observability = observability if observability is not None \
            else engine.observability

    def handles(self, path: str) -> bool:
        # the surface owns the whole /introspect/ namespace: an unknown
        # sub-route answers its JSON 404 rather than falling through to
        # whatever service shares the port
        return path in INTROSPECTION_ROUTES or \
            path.startswith("/introspect/")

    def handle(self, path: str, params: dict | None = None):
        params = params or {}
        if path == "/healthz":
            return self.healthz()
        if path == "/readyz":
            return self.readyz()
        if path == "/introspect/rules":
            return 200, self.rules()
        if path == "/introspect/instances":
            limit = params.get("limit")
            return 200, self.instances(
                rule=params.get("rule"),
                limit=int(limit) if limit is not None else None)
        if path == "/introspect/breakers":
            return 200, self.breakers()
        if path == "/introspect/dead-letters":
            return 200, self.dead_letters()
        if path == "/introspect/journal":
            return 200, self.journal()
        if path == "/introspect/runtime":
            return 200, self.runtime()
        if path == "/introspect/replicas":
            return 200, self.replicas()
        if path == "/introspect/match":
            return 200, self.match()
        if path == "/introspect/sparql":
            return 200, self.sparql()
        if path == "/introspect/profile":
            return self.profile(params)
        if path == "/introspect/latency":
            return 200, self.latency()
        return 404, {"error": f"unknown introspection route {path!r}"}

    # -- probes --------------------------------------------------------------

    def healthz(self):
        """Liveness: answering at all is the signal — keep it that cheap."""
        return 200, {"status": "ok"}

    def readyz(self):
        """Readiness: recovery complete and the journal accepts writes."""
        engine = self.engine
        checks = {"recovery_complete": bool(getattr(engine, "ready", True))}
        durability = engine.durability
        if durability is not None:
            checks["journal_writable"] = bool(
                durability.journal_status().get("writable"))
        runtime = engine.runtime
        if runtime is not None:
            # the admission gate IS the readiness signal for a pooled
            # engine: a stopped or saturated pool must shed traffic at
            # the balancer, not at the ingestion queue
            checks["runtime_accepting"] = bool(runtime.accepting)
        breakers = _copy(lambda: {
            address: breaker.state for address, breaker
            in engine.grh.resilience._breakers.items()})
        ready = all(checks.values())
        return (200 if ready else 503), {
            "status": "ready" if ready else "unready",
            "checks": checks,
            "breakers": {
                "open": sum(1 for state in breakers.values()
                            if state != "closed"),
                "states": breakers,
            },
        }

    # -- views ---------------------------------------------------------------

    def rules(self):
        engine = self.engine
        registered = _copy(lambda: list(engine.rules.items()))
        rules = []
        for rule_id, entry in registered:
            rule = entry.rule
            bucket = engine._instances_by_rule.get(rule_id)
            rules.append({
                "rule": rule_id,
                "priority": rule.priority,
                "queries": len(rule.queries),
                "has_test": rule.test is not None,
                "actions": len(rule.actions),
                "event_component": entry.event_component_id,
                "retained_instances": len(bucket) if bucket is not None
                else 0,
            })
        return {"rules": rules, "stats": dict(engine.stats)}

    def instances(self, rule: str | None = None, limit: int | None = None):
        engine = self.engine
        if limit is None:
            limit = _DEFAULT_INSTANCE_LIMIT
        limit = max(0, min(limit, _MAX_INSTANCE_LIMIT))
        if rule is not None:
            retained = _copy(lambda: list(engine.instances_of(rule)))
        else:
            retained = _copy(lambda: list(engine.instances))
        recent = retained[-limit:] if limit else []
        entries = []
        for instance in recent:
            entry = {
                "id": instance.instance_id,
                "rule": instance.rule_id,
                "status": instance.status,
                "actions": instance.actions_executed,
                "tuples": len(instance.relation),
                "stages": [stage for stage, _ in instance.trace],
            }
            if instance.error:
                entry["error"] = instance.error
            entries.append(entry)
        return {"total_retained": len(retained),
                "returned": len(entries),
                "instances": entries}

    def breakers(self):
        # ResilienceManager.snapshot copies under its own lock
        return self.engine.grh.resilience.snapshot()

    def dead_letters(self):
        queue = self.engine.grh.resilience.dead_letters
        letters = _copy(lambda: [
            {
                "kind": letter.kind,
                "error": letter.error,
                "attempts": letter.attempts,
                "component": letter.component_id
                if letter.kind == "action"
                else (letter.detection.component_id
                      if letter.detection is not None else None),
                "tuples": len(letter.bindings)
                if letter.bindings is not None else None,
            }
            for letter in queue])
        return {"parked": len(letters), "dropped": queue.dropped,
                "letters": letters}

    def journal(self):
        durability = self.engine.durability
        if durability is None:
            return {"durable": False}
        status = durability.journal_status()
        status["durable"] = True
        return status

    def replicas(self):
        """Replica routing view (PROTOCOL.md §12): the health board,
        per-service replica sets, failover/hedge counters and prober
        status."""
        grh = self.engine.grh
        resilience = grh.resilience
        board = resilience.health
        view = {
            "replicas": board.snapshot() if board is not None else {},
            "services": _copy(lambda: {
                uri: list(addresses)
                for uri, addresses in grh._endpoints.items()}),
            "failovers": resilience.failovers,
            "hedges": dict(resilience.hedge_outcomes,
                           launched=resilience.hedges_launched),
        }
        prober = getattr(grh, "health_prober", None)
        view["prober"] = {
            "running": prober.running, "cycles": prober.cycles,
        } if prober is not None else None
        return view

    def match(self):
        """Discrimination-network view (PROTOCOL.md §13): one snapshot
        per live network in the process — event services are autonomous
        (they may not even share the engine's process), so the view
        reports whatever this process hosts rather than reaching
        through the engine."""
        from ...match import live_snapshots
        networks = _copy(live_snapshots)
        return {"networks": networks,
                "total_registered": sum(view["registered"]
                                        for view in networks)}

    def sparql(self):
        """SPARQL-backend view (PROTOCOL.md §15): store sizes,
        per-predicate statistics and recent plans (estimates vs
        actuals) for every planned SPARQL service this process hosts —
        like :meth:`match`, the view reports process-local services
        rather than reaching through the engine."""
        from ...sparql import live_snapshots
        services = _copy(live_snapshots)
        return {"services": services,
                "total_triples": sum(view["store"]["triples"]
                                     for view in services)}

    def profile(self, params: dict | None = None):
        """Sampling-profiler view (PROTOCOL.md §14).

        Without parameters, a snapshot of the running profiler's recent
        window; ``?seconds=N`` blocks this HTTP worker up to
        ``_MAX_CAPTURE_SECONDS`` while a fresh capture accumulates
        (starting the profiler transiently when it is not running);
        ``?format=folded`` adds flamegraph-ready folded stack lines.
        """
        obs = self.observability
        profiler = obs.profiler if obs is not None else None
        if profiler is None:
            return 200, {"enabled": False}
        params = params or {}
        folded = params.get("format") == "folded"
        raw = params.get("seconds")
        if raw is not None:
            try:
                seconds = float(raw)
            except ValueError:
                return 400, {"error": f"bad seconds value {raw!r}"}
            seconds = max(0.0, min(seconds, _MAX_CAPTURE_SECONDS))
            view = profiler.capture(seconds, folded=folded)
        else:
            view = profiler.snapshot(folded=folded)
        view["enabled"] = True
        return 200, view

    def latency(self):
        """Critical-path latency budget view (PROTOCOL.md §14)."""
        obs = self.observability
        analyzer = obs.critical if obs is not None else None
        if analyzer is None:
            return {"enabled": False}
        view = analyzer.snapshot()
        view["enabled"] = True
        return view

    def runtime(self):
        runtime = self.engine.runtime
        if runtime is None:
            return {"concurrent": False}
        view = {
            "concurrent": True,
            "workers": runtime.workers,
            "running": runtime.running,
            "accepting": runtime.accepting,
            "saturated": runtime.saturated,
            "backpressure": runtime.backpressure,
            "queue_capacity": runtime.queue_capacity,
            "inflight_window": runtime.inflight,
            "queue_depths": list(runtime.queue_depths()),
            "inflight_depths": list(runtime.inflight_depths()),
            "utilization": [round(u, 4) for u in runtime.utilization()],
            "counters": runtime.counters(),
        }
        batcher = runtime.batcher
        if batcher is not None:
            view["batcher"] = batcher.counters()
        pool_stats = getattr(self.engine.grh.transport, "pool_stats", None)
        if pool_stats is not None:
            view["http_pools"] = pool_stats()
        return view


class ObsAdminServer:
    """A standalone localhost admin endpoint for one engine.

    Serves every introspection route plus ``GET /metrics`` (when the
    engine has observability installed) on its own port — production
    deployments keep the admin surface off the service ports.
    """

    def __init__(self, engine, observability=None) -> None:
        # imported here so ``repro.obs.ops`` stays importable without
        # dragging in the whole services/transport stack
        from ...services.transports import HttpServiceServer
        self.surface = IntrospectionSurface(engine, observability)
        obs = self.surface.observability
        self._server = HttpServiceServer(
            metrics=obs.metrics if obs is not None else None,
            introspection=self.surface)

    def start(self) -> str:
        return self._server.start()

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
