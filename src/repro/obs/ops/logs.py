"""Structured JSON-lines logging, correlated with the active trace.

One :class:`StructuredLogger` per :class:`~repro.obs.Observability`.
Every record is a single JSON object on one line, carrying:

* ``ts`` (Unix seconds), ``level``, ``event`` (a dotted event name,
  e.g. ``grh.request.failed``);
* ``trace_id``/``span_id`` pulled from the tracer's *current* span, so
  a log line can be joined to its trace without the caller passing
  anything;
* ``rule_uri``/``instance_id`` from the innermost
  :meth:`StructuredLogger.bound` context (the engine binds them around
  each rule-instance evaluation) or, failing that, from the open
  ``rule`` root span's attributes;
* whatever keyword fields the call site adds.

The emission path is stdlib ``logging``: records flow through a real
``logging.Logger`` (so standard tooling — levels, extra handlers,
``logging.disable`` — keeps working) into a JSON formatter and a
size-capped :class:`~repro.obs.sink.RotatingSink`, the same rotation
helper the span JSONL exporter uses.  Level gating happens *before* a
record dict is built: a ``debug`` call under an ``INFO`` logger costs
one ``isEnabledFor``.
"""

from __future__ import annotations

import io
import json
import logging
import threading
import time
from contextlib import contextmanager

from ..sink import RotatingSink

__all__ = ["StructuredLogger"]

#: serial number so each StructuredLogger gets a private stdlib Logger
#: (shared names would accumulate handlers across engines and tests)
_LOGGER_IDS = iter(range(1, 1 << 62))
_LOGGER_IDS_LOCK = threading.Lock()


class _JsonLineFormatter(logging.Formatter):
    """Renders a record whose ``msg`` is the payload dict as one JSON
    line; non-dict messages (from foreign handlers reusing the logger)
    degrade to a ``{"message": …}`` wrapper."""

    def format(self, record: logging.LogRecord) -> str:
        payload = record.msg
        if not isinstance(payload, dict):
            payload = {"ts": record.created, "level":
                       record.levelname.lower(),
                       "message": record.getMessage()}
        return json.dumps(payload, separators=(",", ":"), default=str)


class _SinkHandler(logging.Handler):
    """A ``logging.Handler`` writing formatted lines to a sink with a
    ``write(line)`` method (:class:`RotatingSink` or a text stream)."""

    def __init__(self, sink) -> None:
        super().__init__()
        self.sink = sink

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.sink.write(self.format(record))
        except Exception:  # logging must never take the engine down
            self.handleError(record)


class _StreamSink:
    """Adapts a text stream to the sink contract (adds the newline)."""

    def __init__(self, stream: io.TextIOBase) -> None:
        self.stream = stream

    def write(self, line: str) -> None:
        self.stream.write(line + "\n")

    def flush(self) -> None:
        self.stream.flush()

    def close(self) -> None:  # never close a borrowed stream
        pass


class StructuredLogger:
    """JSON-lines logger bound to one tracer's context.

    ``path`` appends records to a rotating file (``max_bytes``/
    ``backups`` as in :class:`~repro.obs.sink.RotatingSink`);
    ``stream`` writes to an open text stream instead (tests, stdout
    pipelines).  Exactly one of the two is required.  ``level`` is a
    stdlib level name or number; records below it are dropped before
    any formatting work.
    """

    def __init__(self, path: str | None = None, stream=None,
                 level: int | str = logging.INFO,
                 max_bytes: int | None = None, backups: int = 3,
                 tracer=None,
                 clock=time.time) -> None:
        if (path is None) == (stream is None):
            raise ValueError("pass exactly one of path= or stream=")
        self.tracer = tracer
        self.clock = clock
        if path is not None:
            self.sink = RotatingSink(path, max_bytes=max_bytes,
                                     backups=backups)
        else:
            self.sink = _StreamSink(stream)
        with _LOGGER_IDS_LOCK:
            name = f"repro.obs.structured.{next(_LOGGER_IDS)}"
        self._logger = logging.getLogger(name)
        self._logger.propagate = False  # records are already terminal JSON
        self._logger.setLevel(level)
        handler = _SinkHandler(self.sink)
        handler.setFormatter(_JsonLineFormatter())
        self._logger.addHandler(handler)
        self._local = threading.local()
        self.emitted = 0

    # -- context ------------------------------------------------------------

    @contextmanager
    def bound(self, **fields):
        """Attach fields (``rule_uri=…, instance_id=…``) to every record
        emitted on this thread inside the block.  Nests; inner wins."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(fields)
        try:
            yield
        finally:
            stack.pop()

    def _context(self) -> dict:
        context: dict = {}
        tracer = self.tracer
        if tracer is not None:
            span = tracer.current()
            if span is not None and span.trace_id:
                context["trace_id"] = span.trace_id
                context["span_id"] = span.span_id
                # the rule root span names the evaluating instance; walk
                # the (short) open-ancestor chain to find it
                node = span
                while node is not None:
                    if node.name == "rule":
                        context["rule_uri"] = node.attributes.get("rule")
                        context["instance_id"] = \
                            node.attributes.get("instance")
                        break
                    node = getattr(node, "_token", None)
        stack = getattr(self._local, "stack", None)
        if stack:
            for fields in stack:
                context.update(fields)
        return context

    # -- emission -----------------------------------------------------------

    def log(self, level: int, event: str, **fields) -> None:
        if not self._logger.isEnabledFor(level):
            return
        payload = {"ts": self.clock(),
                   "level": logging.getLevelName(level).lower(),
                   "event": event}
        payload.update(self._context())
        payload.update(fields)
        self._logger.log(level, payload)
        self.emitted += 1

    def debug(self, event: str, **fields) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log(logging.ERROR, event, **fields)

    def enabled_for(self, level: int) -> bool:
        return self._logger.isEnabledFor(level)

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        for handler in list(self._logger.handlers):
            self._logger.removeHandler(handler)
            handler.close()
        self.sink.close()
