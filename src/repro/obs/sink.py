"""A size-capped, rotating line sink for append-only telemetry files.

Long-running engines emit telemetry forever — span JSONL files and
structured logs grow without bound unless something caps them.  This
module is that something: :class:`RotatingSink` appends UTF-8 lines to a
file and, when the file would exceed ``max_bytes``, rotates it through a
fixed ladder of numbered backups (``path`` → ``path.1`` → … →
``path.N``), dropping the oldest.  Rotation happens *between* lines, so
every file in the ladder is a sequence of whole records — a consumer
tailing the ladder never sees a torn JSON line.

Both the span exporter (:class:`repro.obs.trace.JsonlExporter` with a
``max_bytes`` cap) and the structured logger
(:class:`repro.obs.ops.StructuredLogger`) write through this one class,
so their retention behavior is identical and tested once.

``max_bytes=None`` (the default) disables rotation entirely — the sink
degrades to a plain append-only file, the pre-rotation behavior.
"""

from __future__ import annotations

import os
import threading

__all__ = ["RotatingSink"]


class RotatingSink:
    """Thread-safe append-only line sink with size-capped rotation."""

    def __init__(self, path: str, max_bytes: int | None = None,
                 backups: int = 3) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        if backups < 0:
            raise ValueError("backups must be non-negative")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")
        # resuming an existing file: cap accounting starts at its size
        self._size = os.path.getsize(path)

    def write(self, line: str) -> None:
        """Append one line (terminator added here).

        When the write would push the file past ``max_bytes``, the file
        is rotated first; a single line larger than the whole cap still
        lands (in a file of its own) rather than being dropped —
        telemetry is never silently discarded by the sink itself.
        """
        data = line + "\n"
        encoded_size = len(data.encode("utf-8"))
        with self._lock:
            if (self.max_bytes is not None and self._size
                    and self._size + encoded_size > self.max_bytes):
                self._rotate()
            self._file.write(data)
            self._size += encoded_size

    def _rotate(self) -> None:
        """Shift ``path`` → ``path.1`` → … dropping the oldest backup.
        The caller holds the lock."""
        self._file.close()
        if self.backups == 0:
            # no backups kept: truncate in place
            self._file = open(self.path, "w", encoding="utf-8")
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
            self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed
