"""Thread-local wait attribution: where a request's milliseconds went.

A GRH request span measures one wall-clock interval, but that interval
hides several qualitatively different waits: the request may have been
parked in the :class:`~repro.runtime.DispatchBatcher`, blocked on HTTP
pool acquisition, slept through retry backoff, or idled out a hedge
delay.  The aggregate histograms (``eca_runtime_queue_wait_seconds``
and friends) see these in bulk; the critical-path analyzer
(:mod:`repro.obs.profile`) needs them *per request*, attached to the
request span itself.

This module is the hand-off.  It mirrors the span-sink pattern of
:mod:`repro.obs.trace`: the GRH opens a *wait scope* on its own thread
for the duration of one dispatch, the layers underneath call
:func:`record_wait` as they block, and the GRH copies the totals onto
the request span before finishing it.  With no scope open (tracing off,
or a call outside the GRH) ``record_wait`` is a no-op costing one
thread-local read — the instrumented layers never need to know whether
anybody is listening.

Cross-thread hand-off: the hedged-read path runs its attempts on a
shared executor (``ResilienceManager._call_hedged``), off the thread
that owns the scope.  :func:`bind_wait_scope` pushes an *existing*
scope onto another thread's stack so those attempts attribute into the
caller's scope; :class:`WaitScope` takes a lock per add, so concurrent
branches (primary + hedge) accumulate safely.  Concurrent branches can
both record the same kind of wait (each branch really did back off),
which may over-attribute relative to the caller's wall interval — the
analyzer clamps every wait into the request span's remaining budget,
so the phase sum stays exact (PROTOCOL.md §14).

Everything here is stdlib-``threading`` only; no imports from the rest
of the package, so any layer (transports, resilience, batcher) can use
it without cycles.
"""

from __future__ import annotations

import threading

__all__ = ["WaitScope", "WAIT_KINDS", "push_wait_scope", "pop_wait_scope",
           "current_wait_scope", "bind_wait_scope", "unbind_wait_scope",
           "record_wait"]

#: the wait kinds the instrumented layers record, and the span-attribute
#: keys the critical-path analyzer reads back (PROTOCOL.md §14)
WAIT_KINDS = ("batch_park", "pool_wait", "retry_backoff", "hedge_wait")

_LOCAL = threading.local()


class WaitScope:
    """Accumulated waits of one logical GRH dispatch, by kind."""

    __slots__ = ("_waits", "_lock")

    def __init__(self) -> None:
        self._waits: dict[str, float] = {}
        self._lock = threading.Lock()

    def add(self, kind: str, seconds: float) -> None:
        if seconds <= 0.0:
            return
        with self._lock:
            self._waits[kind] = self._waits.get(kind, 0.0) + seconds

    def items(self) -> list[tuple[str, float]]:
        with self._lock:
            return list(self._waits.items())

    def total(self, kind: str) -> float:
        with self._lock:
            return self._waits.get(kind, 0.0)

    def __bool__(self) -> bool:
        return bool(self._waits)


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def push_wait_scope() -> WaitScope:
    """Open a fresh scope on this thread (scopes nest: a cascaded
    dispatch inside a co-located service gets its own)."""
    scope = WaitScope()
    _stack().append(scope)
    return scope


def pop_wait_scope() -> WaitScope:
    return _stack().pop()


def current_wait_scope() -> WaitScope | None:
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


def bind_wait_scope(scope: WaitScope) -> None:
    """Make an existing scope current on *this* thread (the hedge
    executor binding the dispatching caller's scope).  Pairs with
    :func:`unbind_wait_scope`."""
    _stack().append(scope)


def unbind_wait_scope() -> None:
    _stack().pop()


def record_wait(kind: str, seconds: float) -> None:
    """Attribute *seconds* of blocking to the innermost open scope.

    No scope open → no-op.  Never raises: the instrumented layers call
    this inside hot paths and error paths alike.
    """
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        stack[-1].add(kind, seconds)
