"""The one observability switch: config, wiring, and trace lookup.

An :class:`Observability` object owns a tracer (ring buffer and optional
JSONL file exporters) and a metrics registry, and knows how to wire them
into a running engine: ``ECAEngine(..., observability=obs)`` calls
:meth:`Observability.install`, which hooks the GRH, the resilience
manager, and the durability layer of *that* engine.

Everything is off by default — an engine constructed without an
``observability`` argument carries no instrumentation beyond a handful
of ``is not None`` checks, and ``Observability(enabled=False)`` exposes
no-op instruments so user code holding the handle keeps working.

Metric taxonomy (all scrapeable via ``render_prometheus()`` or the
``/metrics`` route of :class:`~repro.services.HttpServiceServer`):

========================================  =========  =======================
name                                      kind       source
========================================  =========  =======================
``eca_detections_total``                  counter    engine stats
``eca_rule_instances_total``              counter    engine stats
``eca_instances_total{status}``           counter    engine stats
``eca_actions_total``                     counter    engine stats
``eca_instances_evicted_total``           counter    engine stats
``eca_kept_instances``                    gauge      engine retention
``eca_registered_rules``                  gauge      engine rule table
``eca_phase_latency_seconds{phase}``      histogram  engine hot path
``eca_grh_requests_total``                counter    GRH
``eca_grh_cache_hits_total``              counter    GRH opaque cache
``eca_grh_request_latency_seconds{kind}`` histogram  GRH hot path
``eca_retries_total``                     counter    resilience
``eca_attempts_total``                    counter    resilience
``eca_breaker_opens_total``               counter    resilience
``eca_breaker_rejections_total``          counter    resilience
``eca_breaker_state{endpoint}``           gauge      0 closed, 0.5 half, 1 open
``eca_service_requests_total{endpoint,outcome}``  counter  resilience
``eca_failover_total``                    counter    replica failovers
``eca_hedge_total{outcome}``              counter    hedged reads
``eca_replica_health{replica,state}``     gauge      replica health board
``eca_dead_letters``                      gauge      dead letter queue
``eca_dead_letters_dropped_total``        counter    dead letter queue
``eca_journal_records_total``             counter    durability journal
``eca_journal_fsync_seconds``             histogram  durability hot path
``eca_checkpoint_seconds``                histogram  durability hot path
``eca_runtime_queue_depth{shard}``        gauge      concurrent runtime
``eca_runtime_worker_utilization{shard}`` gauge      concurrent runtime
``eca_runtime_accepting``                 gauge      admission gate
``eca_runtime_detections_total{outcome}`` counter    concurrent runtime
``eca_runtime_queue_wait_seconds``        histogram  concurrent runtime
``eca_runtime_batches_total``             counter    dispatch batcher
``eca_runtime_batched_requests_total``    counter    dispatch batcher
``eca_latency_budget_seconds{phase}``     histogram  critical-path analyzer
``eca_latency_selfcheck_total{outcome}``  counter    critical-path analyzer
``eca_profile_samples_total``             counter    sampling profiler
``eca_profile_overhead_fraction``         gauge      sampling profiler
``eca_metrics_dropped_labels_total``      counter    registry cardinality cap
========================================  =========  =======================
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .ops.logs import StructuredLogger
from .profile import CriticalPathAnalyzer, SamplingProfiler
from .trace import (JsonlExporter, NOOP_TRACER, RingBufferExporter, Span,
                    Tracer, render_trace)

__all__ = ["Observability"]

#: the component phases of one rule instance, in evaluation order
PHASES = ("event", "query", "test", "action")
#: span names per phase, prebuilt off the hot path
_PHASE_SPAN_NAMES = {phase: "phase:" + phase for phase in PHASES}

#: request kinds the GRH dispatches (plus the opaque per-tuple fetch)
REQUEST_KINDS = ("register-event", "unregister-event", "query", "test",
                 "action", "fetch")

_BREAKER_STATE_VALUE = {"closed": 0.0, "half_open": 0.5, "open": 1.0}


class Observability:
    """Configuration and wiring for tracing + metrics of one engine.

    ``trace_buffer`` bounds the in-memory span ring; ``trace_jsonl``
    additionally streams every finished span to a JSONL file
    (size-capped and rotated when ``trace_jsonl_max_bytes`` is set).
    Pass ``metrics=`` to share one registry between several engines
    (their counters then aggregate into one exposition).

    Production operations (``repro.obs.ops``) hang off the same switch:

    * ``sampler=`` — a head sampler (``ProbabilisticSampler``,
      ``RateLimitedSampler``): unsampled traces are timed but never
      exported, and the verdict rides the ``traceparent`` flags byte so
      services skip capture too;
    * ``tail=`` — a ``TailSampler`` spliced between the tracer and the
      ring/JSONL exporters: complete traces are kept when they erred,
      hit a resilience event, or ran long — plus a probability of the
      healthy rest;
    * ``log_path=``/``log_stream=`` — a :class:`StructuredLogger`
      (exposed as ``self.log``) that the engine, GRH and resilience
      layer emit trace-correlated JSON records through;
    * ``profiler=`` — ``True`` (or a :class:`SamplingProfiler`) starts
      a continuous wall-clock sampling profiler at engine install;
      snapshots via ``self.profiler`` or ``/introspect/profile``;
    * ``critical=`` — ``True`` (or a :class:`CriticalPathAnalyzer`)
      splices a latency-budget analyzer onto the exporter chain: every
      completed rule-instance trace is decomposed into queue / engine
      / wait / service / network phases (``self.critical``,
      ``/introspect/latency``, ``eca_latency_budget_seconds``).
    """

    def __init__(self, enabled: bool = True, trace_buffer: int = 4096,
                 trace_jsonl: str | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 sampler=None, tail=None,
                 trace_jsonl_max_bytes: int | None = None,
                 trace_jsonl_backups: int = 3,
                 log_path: str | None = None, log_stream=None,
                 log_level="INFO", log_max_bytes: int | None = None,
                 log_backups: int = 3,
                 profiler: bool | SamplingProfiler | None = None,
                 critical: bool | CriticalPathAnalyzer | None = None) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring: RingBufferExporter | None = None
        self.jsonl: JsonlExporter | None = None
        self.sampler = None
        self.tail = None
        self.log: StructuredLogger | None = None
        self.profiler: SamplingProfiler | None = None
        self.critical: CriticalPathAnalyzer | None = None
        if not enabled:
            self.tracer = NOOP_TRACER
            self._phase_hist = {}
            self._grh_hist = {}
            return
        if profiler:
            self.profiler = profiler if isinstance(
                profiler, SamplingProfiler) else SamplingProfiler()
        if critical:
            self.critical = critical if isinstance(
                critical, CriticalPathAnalyzer) else CriticalPathAnalyzer()
            self.critical.bind_metrics(self.metrics)
        if tracer is None:
            self.ring = RingBufferExporter(trace_buffer)
            exporters = [self.ring]
            if trace_jsonl is not None:
                self.jsonl = JsonlExporter(
                    trace_jsonl, max_bytes=trace_jsonl_max_bytes,
                    backups=trace_jsonl_backups)
                exporters.append(self.jsonl)
            if tail is not None:
                # the tail sampler fronts the chain: it buffers whole
                # traces and flushes the keepers to the real exporters
                if not tail.downstream:
                    tail.downstream.extend(exporters)
                exporters = [tail]
                self.tail = tail
            if self.critical is not None:
                # the analyzer sits beside the chain head, not behind
                # the tail sampler: it must see EVERY completed trace,
                # including the healthy ones the tail discards
                exporters.append(self.critical)
            tracer = Tracer(exporters, sampler=sampler)
        else:
            if sampler is not None and tracer.sampler is None:
                tracer.sampler = sampler
            if self.critical is not None:
                tracer.add_exporter(self.critical)
        self.sampler = tracer.sampler
        self.tracer = tracer
        if log_path is not None or log_stream is not None:
            self.log = StructuredLogger(
                path=log_path, stream=log_stream, level=log_level,
                max_bytes=log_max_bytes, backups=log_backups,
                tracer=self.tracer)
        phase_family = self.metrics.histogram(
            "eca_phase_latency_seconds",
            "Rule-instance component phase latency", labels=("phase",))
        self._phase_hist = {phase: phase_family.labels(phase)
                            for phase in PHASES}
        grh_family = self.metrics.histogram(
            "eca_grh_request_latency_seconds",
            "GRH request round-trip latency", labels=("kind",))
        self._grh_hist = {kind: grh_family.labels(kind)
                          for kind in REQUEST_KINDS}

    # -- hot-path helpers --------------------------------------------------

    def begin_phase(self, phase: str, component_id: str) -> Span:
        """Start the child span for one component phase."""
        return self.tracer.begin(_PHASE_SPAN_NAMES.get(phase) or
                                 "phase:" + phase,
                                 {"component": component_id})

    def end_phase(self, phase: str, span: Span) -> None:
        """Finish a phase span and feed its latency histogram."""
        self.tracer.finish(span)
        histogram = self._phase_hist.get(phase)
        if histogram is not None:
            histogram.observe(span.ended_at - span.started_at)
        log = self.log
        if log is not None:
            # per-phase records are debug-level: one isEnabledFor check
            # on the hot path unless an operator turns them on
            log.debug("engine.phase", phase=phase,
                      component=span.attributes.get("component"),
                      duration=span.ended_at - span.started_at)

    def observe_request(self, kind: str, span: Span) -> None:
        """Feed one finished GRH request span into the latency family."""
        histogram = self._grh_hist.get(kind)
        if histogram is None:
            histogram = self._grh_hist[kind] = self.metrics.histogram(
                "eca_grh_request_latency_seconds",
                labels=("kind",)).labels(kind)
        histogram.observe(span.ended_at - span.started_at)

    # -- wiring ------------------------------------------------------------

    def install(self, engine) -> None:
        """Hook this observability into one engine and its GRH stack.

        Called by ``ECAEngine.__init__``; idempotent per engine, and
        re-installation (e.g. after crash recovery builds a fresh
        engine over the same GRH) re-binds the scrape-time callbacks to
        the new objects.
        """
        if not self.enabled:
            return
        metrics = self.metrics
        profiler = self.profiler
        if profiler is not None:
            profiler.start()
            metrics.counter("eca_profile_samples_total",
                            "Stack samples taken by the profiler",
                            callback=lambda: profiler.samples)
            metrics.gauge(
                "eca_profile_overhead_fraction",
                "Fraction of wall time spent taking stack samples",
                callback=profiler.overhead)
        stats = engine.stats
        metrics.counter("eca_detections_total",
                        "Detections accepted by the engine",
                        callback=lambda: stats["detections"])
        metrics.counter("eca_rule_instances_total",
                        "Rule instances created",
                        callback=lambda: stats["instances"])
        metrics.counter(
            "eca_instances_total", "Finished rule instances by status",
            labels=("status",),
            callback=lambda: {"completed": stats["completed"],
                              "dead": stats["dead"],
                              "failed": stats["failed"]})
        metrics.counter("eca_actions_total", "Action executions",
                        callback=lambda: stats["actions"])
        metrics.counter("eca_instances_evicted_total",
                        "Instances dropped by the retention caps",
                        callback=lambda: stats.get("evicted", 0))
        metrics.gauge("eca_kept_instances",
                      "Instances currently retained for introspection",
                      callback=lambda: len(engine.instances))
        metrics.gauge("eca_registered_rules", "Registered rules",
                      callback=lambda: len(engine.rules))

        grh = engine.grh
        grh.observability = self
        metrics.counter("eca_grh_requests_total",
                        "Requests mediated by the GRH",
                        callback=lambda: grh.request_count)
        metrics.counter("eca_grh_cache_hits_total",
                        "Opaque-request cache hits",
                        callback=lambda: grh.cache_hits)

        resilience = grh.resilience
        resilience.observer = self._on_resilience_event
        metrics.counter("eca_retries_total", "Service request retries",
                        callback=lambda: resilience.retries)
        metrics.counter("eca_attempts_total", "Service request attempts",
                        callback=lambda: resilience.attempts)
        metrics.counter("eca_breaker_opens_total", "Circuit breaker opens",
                        callback=lambda: resilience.breaker_opens)
        metrics.counter("eca_breaker_rejections_total",
                        "Requests shed by open breakers",
                        callback=lambda: resilience.breaker_rejections)
        metrics.gauge(
            "eca_breaker_state",
            "Breaker state per endpoint (0 closed, 0.5 half-open, 1 open)",
            labels=("endpoint",),
            callback=lambda: {
                address: _BREAKER_STATE_VALUE.get(breaker.state, 1.0)
                for address, breaker in resilience._breakers.items()})
        metrics.counter(
            "eca_service_requests_total",
            "Per-endpoint request outcomes", labels=("endpoint", "outcome"),
            callback=lambda: {
                (address, outcome): count
                for address, counts in resilience._per_service.items()
                for outcome, count in counts.items()})
        metrics.counter("eca_failover_total",
                        "Mid-call retargets onto an alternative replica",
                        callback=lambda: resilience.failovers)
        metrics.counter(
            "eca_hedge_total",
            "Hedged read requests by outcome (plus launches)",
            labels=("outcome",),
            callback=lambda: dict(resilience.hedge_outcomes,
                                  launched=resilience.hedges_launched))
        metrics.gauge(
            "eca_replica_health",
            "Replica health board (1 on the current state's row)",
            labels=("replica", "state"),
            callback=lambda: {
                (address, info["state"]): 1.0
                for address, info in (
                    resilience.health.snapshot()
                    if resilience.health is not None else {}).items()})
        queue = resilience.dead_letters
        metrics.gauge("eca_dead_letters", "Dead letters awaiting replay",
                      callback=lambda: len(queue))
        metrics.counter("eca_dead_letters_dropped_total",
                        "Dead letters dropped on queue overflow",
                        callback=lambda: queue.dropped)

        pool_stats = getattr(grh.transport, "pool_stats", None)
        if pool_stats is not None:
            metrics.gauge(
                "eca_http_pool_connections",
                "Pooled HTTP connections per origin by state",
                labels=("origin", "state"),
                callback=lambda: {
                    (origin, state): float(stats[state])
                    for origin, stats in pool_stats().items()
                    for state in ("idle", "in_use")})
            metrics.counter(
                "eca_http_pool_events_total",
                "Pooled HTTP connection lifecycle events per origin",
                labels=("origin", "event"),
                callback=lambda: {
                    (origin, event): stats[event]
                    for origin, stats in pool_stats().items()
                    for event in ("created", "reused", "retired", "reaped")})

        runtime = engine.runtime
        if runtime is not None:
            metrics.gauge(
                "eca_runtime_queue_depth",
                "Queued detections per worker shard", labels=("shard",),
                callback=lambda: {str(shard): depth for shard, depth
                                  in enumerate(runtime.queue_depths())})
            metrics.gauge(
                "eca_runtime_inflight_depth",
                "Popped-but-incomplete detections per worker shard",
                labels=("shard",),
                callback=lambda: {str(shard): depth for shard, depth
                                  in enumerate(runtime.inflight_depths())})
            metrics.gauge(
                "eca_runtime_worker_utilization",
                "Busy fraction per worker since attach", labels=("shard",),
                callback=lambda: {str(shard): busy for shard, busy
                                  in enumerate(runtime.utilization())})
            metrics.gauge("eca_runtime_accepting",
                          "Admission gate (1 accepting, 0 saturated/stopped)",
                          callback=lambda: 1.0 if runtime.accepting else 0.0)
            metrics.counter(
                "eca_runtime_detections_total",
                "Detections by runtime admission outcome",
                labels=("outcome",),
                callback=lambda: {"submitted": runtime.submitted,
                                  "completed": runtime.completed,
                                  "dropped": runtime.dropped,
                                  "rejected": runtime.rejected,
                                  "errors": runtime.errors})
            runtime.on_wait = self.metrics.histogram(
                "eca_runtime_queue_wait_seconds",
                "Time a detection waited queued before a worker ran it"
            ).observe
            batcher = runtime.batcher
            if batcher is not None:
                metrics.counter(
                    "eca_runtime_batches_total",
                    "GRH dispatch batches shipped",
                    callback=lambda: batcher.batches)
                metrics.counter(
                    "eca_runtime_batched_requests_total",
                    "Requests that travelled inside a batch envelope",
                    callback=lambda: batcher.batched_requests)

        durability = engine.durability
        if durability is not None:
            journal = durability.journal
            metrics.counter("eca_journal_records_total",
                            "Records appended to the write-ahead journal",
                            callback=lambda: journal.appended)
            metrics.gauge("eca_in_flight_detections",
                          "Journaled detections not yet completed",
                          callback=lambda: len(durability.in_flight))
            journal.on_fsync = self.metrics.histogram(
                "eca_journal_fsync_seconds",
                "Journal fsync latency").observe
            durability.checkpoint_observer = self.metrics.histogram(
                "eca_checkpoint_seconds",
                "Checkpoint write duration").observe

    def _on_resilience_event(self, event: str, address: str) -> None:
        """ResilienceManager observer: mark the active span and log.

        The marker attributes (``retries``, ``breaker_open``,
        ``breaker_reject``, ``dead_letter``) are what the tail sampler's
        default marker set looks for — a retried or shed request makes
        its whole trace worth keeping even when every span ends "ok".
        Called outside the resilience lock (see ResilienceManager), so
        taking the tracer's and sink's locks here is safe.
        """
        span = self.tracer.current()
        if span is not None and span.trace_id:
            if event == "retry":
                span.set_attribute(
                    "retries", span.attributes.get("retries", 0) + 1)
            elif event != "breaker_close":
                span.set_attribute(event, True)
        log = self.log
        if log is not None:
            emit = log.warning if event in ("breaker_open", "dead_letter") \
                else log.info
            emit("resilience." + event, endpoint=address)

    # -- trace lookup ------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Distinct trace ids retained in the ring buffer, oldest first."""
        return self.ring.trace_ids() if self.ring is not None else []

    def trace(self, trace_id: str) -> list[Span]:
        return self.ring.trace(trace_id) if self.ring is not None else []

    def trace_of_instance(self, instance_id: int) -> list[Span]:
        """The spans of the trace whose root is the given rule instance."""
        if self.ring is None:
            return []
        for span in self.ring.spans():
            if span.name == "rule" and \
                    span.attributes.get("instance") == instance_id:
                return self.ring.trace(span.trace_id)
        return []

    def render(self, trace_id: str | None = None) -> str:
        """Render one trace as an indented tree (latest when no id)."""
        if self.ring is None:
            return ""
        if trace_id is None:
            ids = self.ring.trace_ids()
            if not ids:
                return ""
            trace_id = ids[-1]
        return render_trace(self.ring.trace(trace_id))

    def render_prometheus(self) -> str:
        return self.metrics.render_prometheus()

    def close(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()
        if self.jsonl is not None:
            self.jsonl.close()
        if self.log is not None:
            self.log.close()
