"""The tracing core: spans, tracers, exporters, ``traceparent``.

A *span* is one timed unit of work — a rule instance, one component
phase, one GRH request, one remote service invocation.  Spans form a
tree: the rule instance is the root, component phases are its children,
each GRH request is a child of the phase that issued it, and a remote
service's server-side span is a child of the GRH request that reached
it.  The tree is keyed by a *trace id* shared by every span of one rule
evaluation, so a trace can be reassembled even when its spans were
recorded by different processes.

Propagation uses a W3C-style ``traceparent`` string
(``00-<32 hex trace id>-<16 hex span id>-01``) carried in the
``log:request`` envelope (PROTOCOL.md §8); a remote service that
receives one answers with a ``log:spans`` annotation holding its own
server-side spans, which the GRH *adopts* into the originating tracer —
that is what stitches an HTTP round-trip into one trace.  A service
co-located with the engine skips both the envelope and the markup: it
drops its span record into the dispatching GRH's thread-local *span
sink* instead (same stitched result, none of the serialization cost).

Timing is monotonic (``time.perf_counter``); cross-process spans carry
their own duration, measured on the remote clock, and are anchored at
adoption time on the local one.

Everything here is allocation-light: spans use ``__slots__``, ids come
from one ``os.urandom`` seed plus a counter (no per-span entropy), and
the disabled path is a :class:`NoopTracer` whose spans are a shared
singleton.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Callable, Iterable

from ..xmlmodel import Element, LOG_NS, QName
from .sink import RotatingSink

__all__ = ["Span", "Tracer", "NoopSpan", "NoopTracer", "NOOP_TRACER",
           "RingBufferExporter", "JsonlExporter", "format_traceparent",
           "parse_traceparent", "traceparent_sampled", "span_to_dict",
           "spans_to_xml", "xml_to_span_dicts", "render_trace",
           "SPANS_QNAME", "push_span_sink", "pop_span_sink",
           "current_span_sink", "next_annotation_id"]

SPANS_QNAME = QName(LOG_NS, "spans")
_SPAN = QName(LOG_NS, "span")


# -- traceparent ---------------------------------------------------------------

def format_traceparent(trace_id: str, span_id: str,
                       sampled: bool = True) -> str:
    """The wire form of a span's identity (W3C trace-context style).

    The trailing flags byte carries the sampling decision: ``01`` for a
    sampled trace, ``00`` for one the head sampler dropped — a remote
    service seeing ``00`` skips server-side span capture entirely
    (PROTOCOL.md §9).
    """
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def parse_traceparent(value: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a ``traceparent`` string, or
    ``None`` for anything malformed (propagation is best-effort: a bad
    header never fails the request it rode in on)."""
    if not value:
        return None
    parts = value.split("-")
    if len(parts) != 4:
        return None
    _, trace_id, span_id, _ = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    return trace_id, span_id


def traceparent_sampled(value: str | None) -> bool:
    """The sampling flag of a ``traceparent`` string.

    Only an explicit ``00`` flags byte opts *out* of span capture;
    anything else — including malformed input — reads as sampled, so a
    caller that predates the flag keeps the pre-sampling behavior.
    """
    return not (value is not None and value.endswith("-00"))


# -- spans ---------------------------------------------------------------------

class Span:
    """One timed unit of work inside a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "started_at",
                 "ended_at", "status", "attributes", "remote", "sampled",
                 "_token")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, started_at: float,
                 attributes: dict | None = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = started_at
        self.ended_at: float | None = None
        self.status = "ok"
        self.attributes = attributes if attributes is not None else {}
        #: recorded by another process and adopted here (its timestamps
        #: are anchored locally; only the duration is authoritative)
        self.remote = False
        #: the head sampler's verdict for this span's trace; an
        #: unsampled span is timed normally but never exported, and its
        #: ``traceparent`` carries the ``00`` flags byte
        self.sampled = True
        self._token = None

    @property
    def duration(self) -> float:
        """Seconds from start to end (to now, while still open)."""
        end = self.ended_at if self.ended_at is not None \
            else time.perf_counter()
        return end - self.started_at

    @property
    def traceparent(self) -> str:
        return format_traceparent(self.trace_id, self.span_id, self.sampled)

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.3f}ms" if self.ended_at is not None \
            else "open"
        return f"<Span {self.name!r} {state} trace={self.trace_id[:8]}…>"


class NoopSpan:
    """The disabled tracer's span: every operation is a no-op."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    attributes: dict = {}
    duration = 0.0
    #: ``None`` so callers never stamp a traceparent from a noop span
    traceparent = None
    #: noop spans never capture, so sampling-gated paths skip them too
    sampled = False

    def set_attribute(self, key: str, value) -> None:
        pass


NOOP_SPAN = NoopSpan()

#: the span id of every head-unsampled span.  Nothing downstream ever
#: keys on an unsampled span's id (they are never exported, never
#: parsed — remote services gate on the ``-00`` flags byte before
#: looking at ids), so skipping the per-span id formatting is free
#: speed on the sampled-out fast path.
_UNSAMPLED_SPAN_ID = "0" * 16


class _TracerThreadStats:
    """Per-thread lifecycle tallies (see ``Tracer.started``)."""

    __slots__ = ("started", "finished", "unsampled")

    def __init__(self) -> None:
        self.started = 0
        self.finished = 0
        self.unsampled = 0


# -- tracers -------------------------------------------------------------------

class Tracer:
    """Creates spans, tracks the active one, exports finished ones.

    The active span is thread-local: concurrent GRH dispatches each see
    their own ancestry.  ``begin`` makes the new span current and
    ``finish`` restores its predecessor, so straight-line code gets
    correct parent/child links without passing spans around.

    ``sampler`` (see :mod:`repro.obs.ops.sampling`) decides, per *root*
    span, whether the trace is kept: children inherit the root's
    verdict, unsampled spans are timed but never exported, and the
    verdict rides the ``traceparent`` flags byte so remote services skip
    capture too.  ``started``/``finished``/``unsampled`` are lifecycle
    counters; they may be driven from several threads at once, so each
    thread tallies into its own slots (no hot-path lock) and the
    properties sum across threads on read.
    """

    def __init__(self, exporters: Iterable = (),
                 clock: Callable[[], float] = time.perf_counter,
                 sampler=None) -> None:
        self._exporters = list(exporters)
        # bound export methods, looped on every finish — hot path
        self._exports = [exporter.export for exporter in self._exporters]
        self.clock = clock
        self.sampler = sampler
        # ids: one 64-bit random seed, then a counter — unique within
        # and (by the seed) across processes, no per-span entropy cost
        self._seed = int.from_bytes(os.urandom(8), "big")
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._all_stats: list[_TracerThreadStats] = []

    def add_exporter(self, exporter) -> None:
        """Append an exporter to the chain (before any span finishes)."""
        self._exporters.append(exporter)
        self._exports.append(exporter.export)

    def _stats(self) -> _TracerThreadStats:
        local = self._local
        stats = getattr(local, "stats", None)
        if stats is None:
            stats = local.stats = _TracerThreadStats()
            with self._stats_lock:
                self._all_stats.append(stats)
        return stats

    @property
    def started(self) -> int:
        """Spans begun, across every thread."""
        with self._stats_lock:
            return sum(stats.started for stats in self._all_stats)

    @property
    def finished(self) -> int:
        """Spans finished (or adopted), across every thread."""
        with self._stats_lock:
            return sum(stats.finished for stats in self._all_stats)

    @property
    def unsampled(self) -> int:
        """Spans dropped (not exported) by the head sampling verdict."""
        with self._stats_lock:
            return sum(stats.unsampled for stats in self._all_stats)

    # -- id generation -----------------------------------------------------

    def _next_span_id(self) -> str:
        return f"{(self._seed ^ next(self._ids)) & 0xFFFFFFFFFFFFFFFF:016x}"

    def _next_trace_id(self) -> str:
        return f"{self._seed:016x}{next(self._ids):016x}"

    # -- current span ------------------------------------------------------

    def current(self) -> Span | None:
        return getattr(self._local, "span", None)

    # -- lifecycle ---------------------------------------------------------

    def begin(self, name: str, attributes: dict | None = None,
              parent: Span | None | object = ...) -> Span:
        """Start a span and make it current.

        ``parent`` defaults to the current span; pass ``None`` to force
        a new root (a new trace id).
        """
        if parent is ...:
            parent = getattr(self._local, "span", None)
        if parent is None:
            trace_id = self._next_trace_id()
            parent_id = None
            sampled = self.sampler is None or \
                bool(self.sampler.sample(trace_id))
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            # children inherit the root's head-sampling verdict
            sampled = getattr(parent, "sampled", True)
        # an unsampled span is never exported or parsed, so it shares
        # one constant id instead of paying for per-span formatting
        span = Span(name, trace_id,
                    self._next_span_id() if sampled else _UNSAMPLED_SPAN_ID,
                    parent_id, self.clock(), attributes)
        span.sampled = sampled
        span._token = parent
        self._local.span = span
        self._stats().started += 1
        return span

    def finish(self, span: Span, status: str | None = None) -> None:
        """End a span, restore its predecessor as current, export it
        (unless its trace was head-sampled out)."""
        span.ended_at = self.clock()
        if status is not None:
            span.status = status
        self._local.span = span._token
        span._token = None
        stats = self._stats()
        stats.finished += 1
        if not span.sampled:
            stats.unsampled += 1
            return
        for export in self._exports:
            export(span)

    def adopt(self, span_dict: dict) -> Span | None:
        """Import a finished span recorded by another process.

        The remote clock is unrelated to ours, so the span is anchored
        at adoption time and only its duration is kept.  Returns the
        adopted span (also exported), or ``None`` for malformed input.
        """
        try:
            duration = float(span_dict.get("duration", 0.0))
            now = self.clock()
            span = Span(str(span_dict["name"]), str(span_dict["trace"]),
                        str(span_dict["id"]), span_dict.get("parent"),
                        now - duration,
                        dict(span_dict.get("attributes") or {}))
        except (KeyError, TypeError, ValueError):
            return None
        span.ended_at = span.started_at + duration
        span.status = str(span_dict.get("status", "ok"))
        span.remote = True
        self._stats().finished += 1
        for export in self._exports:
            export(span)
        return span

    def adopt_children(self, parent: Span, records: Iterable[tuple]) -> None:
        """Import span-sink records from co-located services, anchored
        as children of ``parent`` (the GRH request span that dispatched
        them).  Each record is ``(name, service, status, duration)``."""
        now = self.clock()
        stats = self._stats()
        for name, service, status, duration in records:
            span = Span(name, parent.trace_id, self._next_span_id(),
                        parent.span_id, now - duration,
                        {"service": service})
            span.ended_at = now
            span.status = status
            span.remote = True
            span.sampled = parent.sampled
            stats.finished += 1
            if not parent.sampled:
                continue
            for export in self._exports:
                export(span)


class NoopTracer:
    """API-compatible tracer that records nothing.

    :class:`~repro.obs.Observability` exposes it when disabled, so user
    code holding an observability handle can call ``tracer.begin`` /
    ``tracer.finish`` unconditionally at near-zero cost.
    """

    def current(self) -> None:
        return None

    def begin(self, name: str, attributes: dict | None = None,
              parent=...) -> NoopSpan:
        return NOOP_SPAN

    def finish(self, span, status: str | None = None) -> None:
        pass

    def adopt(self, span_dict: dict) -> None:
        return None

    def adopt_children(self, parent, records) -> None:
        return None


NOOP_TRACER = NoopTracer()


# -- exporters -----------------------------------------------------------------

def span_to_dict(span: Span) -> dict:
    """The span's portable form (JSONL lines, ``log:spans`` markup)."""
    record = {"trace": span.trace_id, "id": span.span_id,
              "parent": span.parent_id, "name": span.name,
              "status": span.status, "duration": span.duration}
    if span.attributes:
        record["attributes"] = span.attributes
    if span.remote:
        record["remote"] = True
    return record


class RingBufferExporter:
    """Keeps the last ``capacity`` finished spans in memory.

    Export and the read methods share one lock.  A bare ``deque.append``
    is atomic under the GIL, but a *reader* iterating the deque while
    another thread appends raises ``RuntimeError: deque mutated during
    iteration`` — so the writer must hold the same lock the snapshotting
    readers do, or a concurrent scrape can fail mid-copy.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[Span]:
        """Every retained span of one trace, oldest-finished first."""
        with self._lock:
            return [span for span in self._spans
                    if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, oldest first."""
        seen: dict[str, None] = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._spans)


class JsonlExporter:
    """Appends one JSON line per finished span to a file.

    ``max_bytes`` caps the file: when set, the file rotates through
    ``backups`` numbered siblings (``path.1`` … ``path.N``, oldest
    dropped) instead of growing without bound on long runs — the same
    :class:`~repro.obs.sink.RotatingSink` the structured logger writes
    through.  ``max_bytes=None`` keeps the unbounded seed behavior.
    """

    def __init__(self, path: str, max_bytes: int | None = None,
                 backups: int = 3) -> None:
        self.path = path
        self._sink = RotatingSink(path, max_bytes=max_bytes,
                                  backups=backups)

    @property
    def rotations(self) -> int:
        return self._sink.rotations

    def export(self, span: Span) -> None:
        self._sink.write(json.dumps(span_to_dict(span),
                                    separators=(",", ":")))

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self._sink.close()


# -- trace rendering -----------------------------------------------------------

def render_trace(spans: list[Span]) -> str:
    """An indented tree of one trace's spans, durations in ms.

    Spans whose parent was not retained (ring-buffer eviction) render as
    extra roots rather than disappearing.
    """
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        key = span.parent_id if span.parent_id in by_id else None
        children.setdefault(key, []).append(span)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        flags = " remote" if span.remote else ""
        status = "" if span.status == "ok" else f" [{span.status}]"
        attrs = ""
        if span.attributes:
            attrs = " " + " ".join(f"{k}={v}" for k, v in
                                   sorted(span.attributes.items()))
        lines.append(f"{'  ' * depth}{span.name} "
                     f"{span.duration * 1e3:.3f}ms{status}{flags}{attrs}")
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


# -- server-side span hand-off -------------------------------------------------
#
# A traced service returns its span record to the caller one of two
# ways.  Across a process boundary the record rides the response as a
# ``log:spans`` annotation (below).  But most deployments co-locate
# several services with the engine behind an in-process transport that
# still serializes every envelope for protocol fidelity — there, pushing
# the annotation through the serializer and parser would dominate the
# cost of tracing.  So the dispatching GRH opens a *span sink* on its
# own thread for the duration of the transport call; a service that sees
# the sink (same process, same thread — in-process transports dispatch
# synchronously) drops a minimal ``(name, service, status, duration)``
# tuple straight in and skips parsing, ids and markup entirely — the
# GRH turns the tuples into child spans of its own request span with
# :meth:`Tracer.adopt_children`.  A real remote service never sees the
# caller's sink and annotates as usual.

_SINKS = threading.local()

#: annotation span ids: same seed-plus-counter scheme as the tracer's
_annotation_seed = int.from_bytes(os.urandom(8), "big")
_annotation_ids = itertools.count(1)


def next_annotation_id() -> str:
    """A span id for a server-side annotation (no per-span entropy)."""
    return f"{(_annotation_seed ^ next(_annotation_ids)) & 0xFFFFFFFFFFFFFFFF:016x}"


def push_span_sink() -> list:
    """Open a collection point for span records from co-located services
    dispatched synchronously on this thread.  Pairs with
    :func:`pop_span_sink` (sinks nest: cascaded dispatches each get
    their own)."""
    stack = getattr(_SINKS, "stack", None)
    if stack is None:
        stack = _SINKS.stack = []
    sink: list = []
    stack.append(sink)
    return sink


def pop_span_sink() -> None:
    _SINKS.stack.pop()


def current_span_sink() -> list | None:
    """The innermost open sink on this thread, or ``None`` (the caller
    is in another process/thread — annotate the response instead)."""
    stack = getattr(_SINKS, "stack", None)
    return stack[-1] if stack else None


# -- log:spans markup ----------------------------------------------------------

def spans_to_xml(span_dicts: Iterable[dict]) -> Element:
    """``log:spans`` — server-side spans annotated onto a response."""
    wrapper = Element(SPANS_QNAME, nsdecls={"log": LOG_NS})
    for record in span_dicts:
        attributes = {QName(None, "trace"): str(record["trace"]),
                      QName(None, "id"): str(record["id"]),
                      QName(None, "name"): str(record["name"]),
                      QName(None, "status"): str(record.get("status", "ok")),
                      QName(None, "duration"):
                      repr(float(record.get("duration", 0.0)))}
        if record.get("parent"):
            attributes[QName(None, "parent")] = str(record["parent"])
        if record.get("attributes"):
            attributes[QName(None, "attrs")] = json.dumps(
                record["attributes"], separators=(",", ":"))
        wrapper.append(Element(_SPAN, attributes))
    return wrapper


def xml_to_span_dicts(element: Element) -> list[dict]:
    """Parse a ``log:spans`` annotation; malformed entries are skipped
    (observability must never fail the request it is annotating)."""
    records: list[dict] = []
    for child in element.findall(_SPAN):
        trace = child.get("trace")
        span_id = child.get("id")
        name = child.get("name")
        if not trace or not span_id or not name:
            continue
        record = {"trace": trace, "id": span_id, "name": name,
                  "parent": child.get("parent"),
                  "status": child.get("status", "ok"), "remote": True}
        try:
            record["duration"] = float(child.get("duration", "0"))
        except ValueError:
            record["duration"] = 0.0
        attrs = child.get("attrs")
        if attrs:
            try:
                record["attributes"] = json.loads(attrs)
            except ValueError:
                pass
        records.append(record)
    return records
