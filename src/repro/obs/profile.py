"""``repro.obs.profile``: continuous profiling and latency attribution.

Two complementary answers to *where does a detection's millisecond go*:

:class:`SamplingProfiler`
    a statistical, whole-process view.  A daemon thread samples
    ``sys._current_frames()`` at ~99 Hz, folds each thread's stack into
    a semicolon-joined line (flamegraph input format) and tags it with
    the engine subsystem of its innermost ``repro.*`` frame
    (runtime / grh / match / durability / services / engine / obs).
    Samples aggregate into per-second buckets kept in a bounded ring,
    so ``GET /introspect/profile?seconds=N`` serves the last N seconds
    without the profiler ever growing without bound.  Pure stdlib, no
    interpreter hooks: overhead is the sampler thread's own work,
    self-measured and reported (gated <3% by ``bench_profile.py``);
    disabled means *no thread exists* — zero cost.

:class:`CriticalPathAnalyzer`
    an exact, per-instance decomposition.  A rule instance runs start
    to finish on one thread (the runtime's unit of parallelism), so its
    wall time splits into disjoint intervals: shard queue wait, engine
    bookkeeping, per-phase component evaluation, and — inside each GRH
    request — batcher park, pool acquisition, retry backoff, hedge
    wait, remote service time, and the network/transport remainder.
    The analyzer sits in the tracer's exporter chain like
    :class:`~repro.obs.ops.sampling.TailSampler`: it buffers each
    trace's spans, and when the root (``rule``) span arrives walks the
    tree, reads the wait attributes the instrumented layers stamped
    (:mod:`repro.obs.attribution`), and emits the per-phase budget into
    ``eca_latency_budget_seconds{phase=…}`` plus bounded per-rule
    reservoirs served by ``GET /introspect/latency``.  A self-check
    verifies the phases sum to the instance's wall time within
    tolerance — the decomposition is arithmetic, so a violation means
    an instrumentation bug, not noise (PROTOCOL.md §14).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter, OrderedDict, deque

from .attribution import WAIT_KINDS

__all__ = ["SamplingProfiler", "CriticalPathAnalyzer", "subsystem_of",
           "PROFILE_SUBSYSTEMS", "BUDGET_PHASES"]

#: module-prefix → subsystem tag, most specific first
_SUBSYSTEM_PREFIXES = (
    ("repro.runtime", "runtime"),
    ("repro.grh", "grh"),
    ("repro.match", "match"),
    ("repro.durability", "durability"),
    ("repro.services", "services"),
    ("repro.obs", "obs"),
    ("repro.core", "engine"),
)

#: every subsystem tag the profiler can report (plus the catch-alls)
PROFILE_SUBSYSTEMS = tuple(tag for _, tag in _SUBSYSTEM_PREFIXES) + \
    ("repro", "external")

#: the phase taxonomy of the latency budget, in critical-path order
#: (PROTOCOL.md §14).  ``queue_wait`` precedes the root span; ``engine``
#: is the root's own bookkeeping; the component phases are their spans'
#: compute remainder; the wait kinds and ``service``/``network`` split
#: each GRH request span.
BUDGET_PHASES = ("queue_wait", "engine", "event", "query", "test",
                 "action") + WAIT_KINDS + ("service", "network")

#: component-phase span names → budget phase
_PHASE_OF_SPAN = {"phase:event": "event", "phase:query": "query",
                  "phase:test": "test", "phase:action": "action"}

#: span names of GRH dispatch spans (children of a phase span)
_REQUEST_SPANS = ("grh.request", "grh.fetch")


def subsystem_of(module: str | None) -> str:
    """The engine subsystem tag of one module name."""
    if not module or not module.startswith("repro"):
        return "external"
    for prefix, tag in _SUBSYSTEM_PREFIXES:
        if module.startswith(prefix):
            return tag
    return "repro"


class _Bucket:
    """One second's worth of samples."""

    __slots__ = ("second", "stacks", "subsystems", "samples")

    def __init__(self, second: int) -> None:
        self.second = second
        #: folded stack (tuple of frame labels, outermost first) → count
        self.stacks: _TallyCounter = _TallyCounter()
        #: subsystem tag → count
        self.subsystems: _TallyCounter = _TallyCounter()
        self.samples = 0


class SamplingProfiler:
    """Continuous ``sys._current_frames()`` sampling profiler.

    ``hz`` is the target sampling rate; ``window`` bounds the retained
    history in seconds (one ring bucket per second); ``max_depth``
    truncates pathological stacks.  ``start`` is idempotent; ``stop``
    joins the sampler thread.  All public readers take the bucket lock
    briefly and never block the sampler for long.
    """

    def __init__(self, hz: float = 99.0, window: float = 120.0,
                 max_depth: int = 48) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        if window < 1:
            raise ValueError("window must be >= 1 second")
        self.hz = hz
        self.interval = 1.0 / hz
        self.window = window
        self.max_depth = max_depth
        self._buckets: deque[_Bucket] = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._own_ident: int | None = None
        #: code object → (frame label, subsystem tag or None); keyed by
        #: the object itself so a GC'd code object cannot alias a new
        #: one the way a bare ``id()`` key could
        self._code_cache: dict[object, tuple[str, str | None]] = {}
        # lifetime tallies (self-accounting)
        self.samples = 0            # thread stacks recorded
        self.ticks = 0              # sampling passes taken
        self.sample_cost = 0.0      # seconds spent inside _sample_once
        self._started_at: float | None = None
        self._active_time = 0.0     # summed run time across start/stop

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="eca-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        if self._started_at is not None:
            self._active_time += time.monotonic() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the sampler thread --------------------------------------------------

    def _run(self) -> None:
        self._own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            try:
                self._sample_once()
            except Exception:
                # a profiler must never take the process down; skip the
                # tick and keep sampling
                continue

    def _label(self, frame) -> tuple[str, str | None]:
        code = frame.f_code
        cached = self._code_cache.get(code)
        if cached is None:
            module = frame.f_globals.get("__name__", "?")
            tag = subsystem_of(module)
            cached = (sys.intern(f"{module}:{code.co_name}"),
                      tag if tag != "external" else None)
            self._code_cache[code] = cached
        return cached

    def _sample_once(self) -> None:
        t0 = time.perf_counter()
        frames = sys._current_frames()
        own = self._own_ident
        second = int(time.monotonic())
        recorded = 0
        collected: list[tuple[tuple[str, ...], str]] = []
        for ident, frame in frames.items():
            if ident == own:
                continue
            stack: list[str] = []
            subsystem: str | None = None
            depth = 0
            while frame is not None and depth < self.max_depth:
                label, tag = self._label(frame)
                stack.append(label)
                if subsystem is None and tag is not None:
                    # the innermost repro frame names the subsystem
                    subsystem = tag
                frame = frame.f_back
                depth += 1
            stack.reverse()
            collected.append((tuple(stack), subsystem or "external"))
            recorded += 1
        with self._lock:
            bucket = self._buckets[-1] if self._buckets else None
            if bucket is None or bucket.second != second:
                bucket = _Bucket(second)
                self._buckets.append(bucket)
            for stack, subsystem in collected:
                bucket.stacks[stack] += 1
                bucket.subsystems[subsystem] += 1
            bucket.samples += recorded
        self.samples += recorded
        self.ticks += 1
        self.sample_cost += time.perf_counter() - t0

    # -- self-accounting -----------------------------------------------------

    def active_seconds(self) -> float:
        active = self._active_time
        if self._started_at is not None:
            active += time.monotonic() - self._started_at
        return active

    def overhead(self) -> float:
        """The sampler thread's own CPU share of its active wall time.

        This is the profiler's *self-measured* cost; the end-to-end
        throughput impact on a workload is gated by
        ``benchmarks/bench_profile.py`` (<3% at 99 Hz).
        """
        active = self.active_seconds()
        if active <= 0.0:
            return 0.0
        return self.sample_cost / active

    # -- reading the window --------------------------------------------------

    def _merge(self, seconds: float | None) -> tuple[
            _TallyCounter, _TallyCounter, int, int]:
        """(stacks, subsystems, samples, buckets) over the last
        *seconds* of the window (all of it when ``None``)."""
        cutoff = None if seconds is None \
            else int(time.monotonic()) - int(seconds)
        stacks: _TallyCounter = _TallyCounter()
        subsystems: _TallyCounter = _TallyCounter()
        samples = 0
        buckets = 0
        with self._lock:
            retained = list(self._buckets)
        for bucket in retained:
            if cutoff is not None and bucket.second < cutoff:
                continue
            stacks.update(bucket.stacks)
            subsystems.update(bucket.subsystems)
            samples += bucket.samples
            buckets += 1
        return stacks, subsystems, samples, buckets

    def folded_lines(self, seconds: float | None = None,
                     top: int | None = None) -> list[str]:
        """Flamegraph input: ``frame;frame;… count`` lines, heaviest
        first (feed to any stackcollapse-compatible renderer)."""
        stacks, _, _, _ = self._merge(seconds)
        ranked = stacks.most_common(top)
        return [f"{';'.join(stack)} {count}" for stack, count in ranked]

    def snapshot(self, seconds: float | None = None, top: int = 25,
                 folded: bool = False) -> dict:
        """A JSON-ready view over the last *seconds* of the window."""
        stacks, subsystems, samples, buckets = self._merge(seconds)
        total = max(samples, 1)
        view = {
            "running": self.running,
            "hz": self.hz,
            "window_seconds": len(self._buckets),
            "covered_seconds": buckets,
            "samples": samples,
            "samples_total": self.samples,
            "overhead_fraction": round(self.overhead(), 6),
            "subsystems": {
                tag: {"samples": count,
                      "share": round(count / total, 4)}
                for tag, count in subsystems.most_common()},
            "top_stacks": [
                {"stack": ";".join(stack), "samples": count,
                 "share": round(count / total, 4)}
                for stack, count in stacks.most_common(top)],
        }
        if folded:
            view["folded"] = [f"{';'.join(stack)} {count}"
                              for stack, count in stacks.most_common()]
        return view

    def capture(self, seconds: float, top: int = 25,
                folded: bool = False) -> dict:
        """Block for *seconds*, then return the snapshot of exactly that
        interval.  Starts the sampler for the capture when it is not
        already running (and stops it again after)."""
        seconds = max(0.05, float(seconds))
        transient = not self.running
        if transient:
            self.start()
        try:
            started = time.monotonic()
            time.sleep(seconds)
            elapsed = time.monotonic() - started
            # +1: the interval may straddle one extra bucket boundary
            view = self.snapshot(seconds=elapsed + 1, top=top,
                                 folded=folded)
        finally:
            if transient:
                self.stop()
        view["captured_seconds"] = round(seconds, 3)
        return view


# -- critical-path analysis ----------------------------------------------------


class _Reservoir:
    """A bounded sample of per-instance phase totals (seconds)."""

    __slots__ = ("values",)

    def __init__(self, size: int) -> None:
        self.values: deque[float] = deque(maxlen=size)

    def add(self, value: float) -> None:
        self.values.append(value)

    def percentile(self, fraction: float) -> float:
        data = sorted(self.values)
        if not data:
            return 0.0
        index = min(len(data) - 1, int(fraction * len(data)))
        return data[index]


class _RuleStats:
    """Latency-budget reservoirs of one rule."""

    __slots__ = ("instances", "wall", "phases")

    def __init__(self, size: int) -> None:
        self.instances = 0
        self.wall = _Reservoir(size)
        self.phases: dict[str, _Reservoir] = {}


class CriticalPathAnalyzer:
    """Exporter-chain stage decomposing each trace into a latency budget.

    Buffers spans per trace id (the root arrives last, exactly like
    :class:`~repro.obs.ops.sampling.TailSampler`); on root arrival the
    span tree is walked and the instance's wall time — root duration
    plus the ``queue_wait`` attribute the runtime stamped — is split
    into the :data:`BUDGET_PHASES`:

    * ``queue_wait`` — shard queue + in-flight-lane wait before the
      instance began (root attribute);
    * ``engine`` — root time not inside any component phase span
      (instance bookkeeping, durability hooks, joins);
    * ``event``/``query``/``test``/``action`` — phase-span time not
      inside any GRH request span (local evaluation: joins, binding,
      markup);
    * ``batch_park``/``pool_wait``/``retry_backoff``/``hedge_wait`` —
      request-span wait attributes (:mod:`repro.obs.attribution`),
      each clamped into the request's remaining budget;
    * ``service`` — summed durations of the request span's adopted
      server-side children, clamped likewise;
    * ``network`` — the request remainder: transport, serialization,
      and the wire.

    Because one thread executes the instance sequentially, the buckets
    are disjoint by construction and sum to the wall time exactly up to
    clamping; ``selfcheck`` counts instances whose |sum − wall| exceeds
    ``tolerance × wall + epsilon`` — a non-zero count is an
    instrumentation bug, not noise.

    Thread-safe: workers finish spans concurrently.  Only head-sampled
    traces reach any exporter, so the analyzer sees whatever fraction
    the head sampler admits — budgets are per-instance exact, coverage
    follows the sampling rate.
    """

    def __init__(self, tolerance: float = 0.05, epsilon: float = 0.001,
                 max_buffered_traces: int = 2048, reservoir: int = 512,
                 max_rules: int = 128) -> None:
        self.tolerance = tolerance
        self.epsilon = epsilon
        self.max_buffered_traces = max_buffered_traces
        self.reservoir = reservoir
        self.max_rules = max_rules
        self._buffers: OrderedDict[str, list] = OrderedDict()
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._overall: dict[str, _Reservoir] = {}
        self._wall = _Reservoir(max(reservoir * 4, reservoir))
        self._rules: OrderedDict[str, _RuleStats] = OrderedDict()
        self._totals: dict[str, float] = dict.fromkeys(BUDGET_PHASES, 0.0)
        self.instances = 0
        self.evicted = 0
        self.selfcheck_ok = 0
        self.selfcheck_failed = 0
        self._budget_hist = None
        self._selfcheck_counters = None

    # -- metrics wiring ------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Register the budget histograms on *registry* and start
        feeding them (called by ``Observability``)."""
        family = registry.histogram(
            "eca_latency_budget_seconds",
            "Per-instance critical-path latency budget by phase",
            labels=("phase",))
        self._budget_hist = {phase: family.labels(phase)
                             for phase in BUDGET_PHASES}
        selfcheck = registry.counter(
            "eca_latency_selfcheck_total",
            "Critical-path self-check verdicts "
            "(phases-sum-to-wall within tolerance)",
            labels=("outcome",))
        self._selfcheck_counters = {
            "ok": selfcheck.labels("ok"),
            "out_of_tolerance": selfcheck.labels("out_of_tolerance")}

    # -- the exporter contract -----------------------------------------------

    def export(self, span) -> None:
        trace: list | None = None
        with self._lock:
            buffer = self._buffers.get(span.trace_id)
            if buffer is None:
                buffer = self._buffers[span.trace_id] = []
            buffer.append(span)
            if span.parent_id is None:
                del self._buffers[span.trace_id]
                if span.name == "rule":
                    trace = buffer
            elif len(self._buffers) > self.max_buffered_traces:
                # rootless overflow (crashed instances, adopt-only
                # paths): evict oldest — the analyzer only ever needs
                # complete trees
                self._buffers.popitem(last=False)
                self.evicted += 1
        if trace is not None:
            try:
                self._analyze(trace, span)
            except Exception:
                # analysis must never fail the finishing worker
                pass

    # -- decomposition -------------------------------------------------------

    def _analyze(self, spans: list, root) -> None:
        children: dict[str | None, list] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        budget = dict.fromkeys(BUDGET_PHASES, 0.0)
        try:
            queue_wait = max(0.0, float(
                root.attributes.get("queue_wait") or 0.0))
        except (TypeError, ValueError):
            queue_wait = 0.0
        budget["queue_wait"] = queue_wait
        root_duration = root.duration
        phase_time = 0.0
        for phase_span in children.get(root.span_id, ()):
            phase = _PHASE_OF_SPAN.get(phase_span.name)
            if phase is None:
                continue
            phase_duration = phase_span.duration
            phase_time += phase_duration
            request_time = 0.0
            for request in children.get(phase_span.span_id, ()):
                if request.name not in _REQUEST_SPANS:
                    continue
                request_time += self._split_request(
                    request, children.get(request.span_id, ()), budget)
            # local evaluation: phase time not spent inside a dispatch
            budget[phase] += max(0.0, phase_duration - request_time)
        budget["engine"] = max(0.0, root_duration - phase_time)
        wall = root_duration + queue_wait
        attributed = sum(budget.values())
        ok = abs(attributed - wall) <= self.tolerance * wall + self.epsilon
        self._record(root, budget, wall, ok)

    def _split_request(self, request, request_children: list,
                       budget: dict) -> float:
        """Split one GRH request span into wait/service/network buckets;
        returns the request's duration (the phase's dispatch time)."""
        duration = request.duration
        remaining = duration
        attrs = request.attributes
        for kind in WAIT_KINDS:
            value = attrs.get(kind)
            if not value:
                continue
            try:
                wait = float(value)
            except (TypeError, ValueError):
                continue
            # clamp into the request's remaining budget: concurrent
            # hedge branches may jointly over-report relative to the
            # caller's wall interval
            wait = min(max(0.0, wait), remaining)
            budget[kind] += wait
            remaining -= wait
        service = 0.0
        for child in request_children:
            service += child.duration
        service = min(max(0.0, service), remaining)
        budget["service"] += service
        remaining -= service
        budget["network"] += max(0.0, remaining)
        return duration

    def _record(self, root, budget: dict, wall: float, ok: bool) -> None:
        hist = self._budget_hist
        if hist is not None:
            for phase, seconds in budget.items():
                if seconds > 0.0:
                    hist[phase].observe(seconds)
        counters = self._selfcheck_counters
        if counters is not None:
            counters["ok" if ok else "out_of_tolerance"].inc()
        rule_id = str(root.attributes.get("rule", "?"))
        with self._stats_lock:
            self.instances += 1
            if ok:
                self.selfcheck_ok += 1
            else:
                self.selfcheck_failed += 1
            self._wall.add(wall)
            for phase, seconds in budget.items():
                self._totals[phase] += seconds
                if seconds > 0.0:
                    reservoir = self._overall.get(phase)
                    if reservoir is None:
                        reservoir = self._overall[phase] = \
                            _Reservoir(self.reservoir)
                    reservoir.add(seconds)
            stats = self._rules.get(rule_id)
            if stats is None:
                stats = self._rules[rule_id] = _RuleStats(self.reservoir)
                while len(self._rules) > self.max_rules:
                    self._rules.popitem(last=False)
            else:
                self._rules.move_to_end(rule_id)
            stats.instances += 1
            stats.wall.add(wall)
            for phase, seconds in budget.items():
                if seconds > 0.0:
                    reservoir = stats.phases.get(phase)
                    if reservoir is None:
                        reservoir = stats.phases[phase] = \
                            _Reservoir(self.reservoir)
                    reservoir.add(seconds)

    # -- introspection -------------------------------------------------------

    def pending_traces(self) -> int:
        with self._lock:
            return len(self._buffers)

    @staticmethod
    def _phase_view(reservoirs: dict[str, _Reservoir]) -> dict:
        return {
            phase: {"p50_ms": round(res.percentile(0.50) * 1e3, 3),
                    "p99_ms": round(res.percentile(0.99) * 1e3, 3),
                    "samples": len(res.values)}
            for phase, res in reservoirs.items()}

    def snapshot(self) -> dict:
        """The ``GET /introspect/latency`` view: overall and per-rule
        p50/p99 per phase, total attribution shares, self-check."""
        with self._stats_lock:
            total_attributed = sum(self._totals.values())
            shares = {
                phase: round(seconds / total_attributed, 4)
                for phase, seconds in self._totals.items()
                if seconds > 0.0} if total_attributed > 0.0 else {}
            dominant = max(shares, key=shares.get) if shares else None
            view = {
                "instances": self.instances,
                "pending_traces": self.pending_traces(),
                "evicted_traces": self.evicted,
                "selfcheck": {
                    "ok": self.selfcheck_ok,
                    "out_of_tolerance": self.selfcheck_failed,
                    "tolerance": self.tolerance,
                },
                "wall": {
                    "p50_ms": round(self._wall.percentile(0.50) * 1e3, 3),
                    "p99_ms": round(self._wall.percentile(0.99) * 1e3, 3),
                },
                "shares": shares,
                "dominant_phase": dominant,
                "phases": self._phase_view(self._overall),
                "rules": {
                    rule_id: {
                        "instances": stats.instances,
                        "wall_p50_ms": round(
                            stats.wall.percentile(0.50) * 1e3, 3),
                        "wall_p99_ms": round(
                            stats.wall.percentile(0.99) * 1e3, 3),
                        "phases": self._phase_view(stats.phases),
                    }
                    for rule_id, stats in self._rules.items()},
            }
        return view
