"""Observability for the ECA engine: tracing, metrics, propagation.

The paper's engine evaluates each rule instance as a pipeline of
heterogeneous component calls mediated by the Generic Request Handler;
this package makes that pipeline visible:

* :mod:`repro.obs.trace` — spans and tracers: every rule instance is a
  root span with child spans per component phase and per GRH request,
  including server-side spans stitched back from remote services via
  the envelope-carried ``traceparent`` (PROTOCOL.md §8);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket latency
  histograms with Prometheus text exposition;
* :mod:`repro.obs.config` — the :class:`Observability` object that owns
  both and wires them into an engine
  (``ECAEngine(..., observability=Observability())``);
* :mod:`repro.obs.profile` — the latency observatory: a continuous
  wall-clock sampling profiler (folded-stack flamegraph export,
  per-subsystem attribution) and the critical-path analyzer that
  decomposes each completed rule-instance trace into a latency budget
  (queue / engine / phase compute / waits / service / network —
  PROTOCOL.md §14);
* :mod:`repro.obs.attribution` — thread-local wait scopes the runtime
  layers record blocking time into (batch park, pool acquisition,
  retry backoff, hedge waits), surfaced as request-span attributes;
* :mod:`repro.obs.ops` — production operations on top: head/tail trace
  sampling, structured JSON-lines logging, and the live
  introspection/health surface (``/healthz``, ``/readyz``,
  ``/introspect/*``).

Everything is off by default and costs nothing when off.
"""

from .attribution import (WAIT_KINDS, WaitScope, bind_wait_scope,
                          current_wait_scope, pop_wait_scope,
                          push_wait_scope, record_wait, unbind_wait_scope)
from .config import Observability
from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .profile import (BUDGET_PHASES, CriticalPathAnalyzer,
                      PROFILE_SUBSYSTEMS, SamplingProfiler, subsystem_of)
from .sink import RotatingSink
from .trace import (JsonlExporter, NOOP_TRACER, NoopSpan, NoopTracer,
                    RingBufferExporter, Span, Tracer, format_traceparent,
                    parse_traceparent, render_trace, span_to_dict,
                    spans_to_xml, traceparent_sampled, xml_to_span_dicts)

__all__ = ["Observability", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "DEFAULT_BUCKETS", "RotatingSink", "Span",
           "Tracer", "NoopSpan", "NoopTracer", "NOOP_TRACER",
           "RingBufferExporter", "JsonlExporter", "format_traceparent",
           "parse_traceparent", "render_trace", "span_to_dict",
           "spans_to_xml", "traceparent_sampled", "xml_to_span_dicts",
           "SamplingProfiler", "CriticalPathAnalyzer", "subsystem_of",
           "BUDGET_PHASES", "PROFILE_SUBSYSTEMS", "WAIT_KINDS",
           "WaitScope", "push_wait_scope", "pop_wait_scope",
           "current_wait_scope", "bind_wait_scope", "unbind_wait_scope",
           "record_wait"]
