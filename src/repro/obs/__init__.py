"""Observability for the ECA engine: tracing, metrics, propagation.

The paper's engine evaluates each rule instance as a pipeline of
heterogeneous component calls mediated by the Generic Request Handler;
this package makes that pipeline visible:

* :mod:`repro.obs.trace` — spans and tracers: every rule instance is a
  root span with child spans per component phase and per GRH request,
  including server-side spans stitched back from remote services via
  the envelope-carried ``traceparent`` (PROTOCOL.md §8);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket latency
  histograms with Prometheus text exposition;
* :mod:`repro.obs.config` — the :class:`Observability` object that owns
  both and wires them into an engine
  (``ECAEngine(..., observability=Observability())``);
* :mod:`repro.obs.ops` — production operations on top: head/tail trace
  sampling, structured JSON-lines logging, and the live
  introspection/health surface (``/healthz``, ``/readyz``,
  ``/introspect/*``).

Everything is off by default and costs nothing when off.
"""

from .config import Observability
from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .sink import RotatingSink
from .trace import (JsonlExporter, NOOP_TRACER, NoopSpan, NoopTracer,
                    RingBufferExporter, Span, Tracer, format_traceparent,
                    parse_traceparent, render_trace, span_to_dict,
                    spans_to_xml, traceparent_sampled, xml_to_span_dicts)

__all__ = ["Observability", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "DEFAULT_BUCKETS", "RotatingSink", "Span",
           "Tracer", "NoopSpan", "NoopTracer", "NOOP_TRACER",
           "RingBufferExporter", "JsonlExporter", "format_traceparent",
           "parse_traceparent", "render_trace", "span_to_dict",
           "spans_to_xml", "traceparent_sampled", "xml_to_span_dicts"]
