"""The metrics registry: counters, gauges, latency histograms.

Instruments follow the Prometheus data model and render in its text
exposition format (``render_prometheus``), so an engine's state can be
scraped straight off :class:`~repro.services.HttpServiceServer`'s
optional ``/metrics`` route.

Two ways to get a value into a metric:

* **hot-path instruments** — ``Counter.inc`` / ``Gauge.set`` /
  ``Histogram.observe``; all updates take the instrument's lock, so the
  same classes double as the thread-safe counters behind
  ``GenericRequestHandler.stats`` (its dispatch path may be driven from
  several threads at once);
* **scrape-time callbacks** — an instrument constructed with
  ``callback=`` reads its value(s) only when rendered.  State the
  engine already tracks (``engine.stats``, breaker states, queue
  lengths) is exposed this way at zero hot-path cost.

Histograms use fixed cumulative buckets (Prometheus ``le`` semantics);
the default ladder spans 100µs…10s, covering in-process component calls
and remote HTTP round-trips alike.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: latency bucket upper bounds, in seconds
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A value that can go up and down (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution of observations (thread-safe).

    Buckets are cumulative at render time (Prometheus ``le``); storage
    is per-bucket counts so ``observe`` is one bisect + two adds.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        self._counts = [0] * (len(self.buckets) + 1)   # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative: list[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return cumulative, total_sum, total_count


class _Family:
    """A labelled family of instruments of one kind.

    ``max_children`` caps label cardinality: once the family holds that
    many children, unseen label combinations share one hidden overflow
    instrument — writes to it land somewhere harmless instead of
    allocating, and it is never rendered, so a label built from an
    unbounded input (an attacker-chosen endpoint, a replayed rule id)
    cannot grow the exposition without limit.  ``on_overflow`` is
    called once per rejected lookup so the registry can count drops.
    """

    def __init__(self, make: Callable[[], object],
                 label_names: tuple[str, ...],
                 max_children: int | None = None,
                 on_overflow: Callable[[], None] | None = None) -> None:
        self._make = make
        self.label_names = label_names
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        self.max_children = max_children
        self._on_overflow = on_overflow
        self._overflow: object | None = None

    def labels(self, *values: str):
        """The child instrument for one label-value combination."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"expected {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {len(values)}")
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.max_children is not None and \
                            len(self._children) >= self.max_children:
                        if self._overflow is None:
                            self._overflow = self._make()
                        child = self._overflow
                    else:
                        child = self._children[key] = self._make()
            if child is self._overflow and self._on_overflow is not None:
                self._on_overflow()
        return child

    def items(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())


class _Metric:
    """One registered metric: name, help, kind and its instrument(s)."""

    __slots__ = ("name", "help", "kind", "instrument", "callback",
                 "label_names")

    def __init__(self, name: str, help_text: str, kind: str, instrument,
                 callback, label_names) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.instrument = instrument
        self.callback = callback
        self.label_names = label_names


_NAME_OK = set("abcdefghijklmnopqrstuvwxyz"
               "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _render_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(names, values)]
    pairs.extend(f'{name}="{_escape_label(value)}"'
                 for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class MetricsRegistry:
    """Owns every instrument and renders the exposition text.

    ``max_label_values`` bounds every labelled family's cardinality
    (see :class:`_Family`); lookups beyond the cap are tallied in the
    self-metric ``eca_metrics_dropped_labels_total``.
    """

    def __init__(self, max_label_values: int | None = 1024) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self.max_label_values = max_label_values
        self._dropped_labels = Counter()
        self._metrics["eca_metrics_dropped_labels_total"] = _Metric(
            "eca_metrics_dropped_labels_total",
            "Label lookups rejected by the cardinality cap",
            "counter", self._dropped_labels, None, ())

    @property
    def dropped_labels(self) -> int:
        """Label lookups absorbed by overflow instruments so far."""
        return self._dropped_labels.value

    # -- registration ------------------------------------------------------

    def _register(self, name: str, help_text: str, kind: str,
                  labels: tuple[str, ...], callback, make) -> object:
        if not name or not set(name) <= _NAME_OK or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}")
                if callback is not None:
                    # re-installation (e.g. a recovered engine over the
                    # same registry) re-binds the scrape-time source
                    existing.callback = callback
                return existing.instrument
            if callback is not None:
                instrument = None
            elif labels:
                instrument = _Family(make, labels,
                                     max_children=self.max_label_values,
                                     on_overflow=self._dropped_labels.inc)
            else:
                instrument = make()
            self._metrics[name] = _Metric(name, help_text, kind, instrument,
                                          callback, labels)
            return instrument

    def counter(self, name: str, help_text: str = "",
                labels: tuple[str, ...] = (),
                callback: Callable[[], object] | None = None):
        """A counter, a labelled counter family, or (with ``callback``)
        a scrape-time counter whose callback returns either a number or
        a ``{label-values-tuple: number}`` mapping."""
        return self._register(name, help_text, "counter", tuple(labels),
                              callback, Counter)

    def gauge(self, name: str, help_text: str = "",
              labels: tuple[str, ...] = (),
              callback: Callable[[], object] | None = None):
        return self._register(name, help_text, "gauge", tuple(labels),
                              callback, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: Iterable[float] = DEFAULT_BUCKETS):
        bucket_tuple = tuple(buckets)
        return self._register(name, help_text, "histogram", tuple(labels),
                              None, lambda: Histogram(bucket_tuple))

    def get(self, name: str):
        metric = self._metrics.get(name)
        return metric.instrument if metric is not None else None

    # -- exposition --------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(),
                             key=lambda metric: metric.name)
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.callback is not None:
                self._render_callback(lines, metric)
            elif metric.kind == "histogram":
                self._render_histograms(lines, metric)
            elif metric.label_names:
                for values, child in sorted(metric.instrument.items()):
                    labels = _render_labels(metric.label_names, values)
                    lines.append(f"{metric.name}{labels} "
                                 f"{_format_value(child.value)}")
            else:
                lines.append(
                    f"{metric.name} {_format_value(metric.instrument.value)}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_callback(lines: list[str], metric: _Metric) -> None:
        try:
            result = metric.callback()
        except Exception:
            # a scrape must never take the engine down with it
            return
        if isinstance(result, dict):
            for values, value in sorted(
                    (tuple(str(part) for part in
                           (key if isinstance(key, tuple) else (key,))),
                     value) for key, value in result.items()):
                labels = _render_labels(metric.label_names, values)
                lines.append(f"{metric.name}{labels} "
                             f"{_format_value(value)}")
        else:
            lines.append(f"{metric.name} {_format_value(result)}")

    @staticmethod
    def _render_histograms(lines: list[str], metric: _Metric) -> None:
        if metric.label_names:
            children = sorted(metric.instrument.items())
        else:
            children = [((), metric.instrument)]
        for values, histogram in children:
            cumulative, total_sum, total_count = histogram.snapshot()
            for bound, count in zip(histogram.buckets, cumulative):
                labels = _render_labels(metric.label_names, values,
                                        (("le", _format_value(bound)),))
                lines.append(f"{metric.name}_bucket{labels} {count}")
            labels = _render_labels(metric.label_names, values,
                                    (("le", "+Inf"),))
            lines.append(f"{metric.name}_bucket{labels} {cumulative[-1]}")
            labels = _render_labels(metric.label_names, values)
            lines.append(f"{metric.name}_sum{labels} "
                         f"{_format_value(total_sum)}")
            lines.append(f"{metric.name}_count{labels} {total_count}")
