"""Static validation of the binding-order constraint (Sec. 3).

*"A variable must be bound in the rule, in an earlier
(Event < Query < Test < Action) or at least the same component as where
it is used."*  This module checks that constraint at registration time,
to the extent it is statically determinable:

* the event component's produced variables come from its pattern,
* opaque components consume exactly their ``{Var}`` placeholders,
* ``eca:variable`` queries produce their bound variable,
* test components consume the variables of their expression,
* action components consume their template placeholders.

LP-style query components (SPARQL/Datalog markup) both produce and
consume; their variable sets are reported by per-language analyzers.
When a component's produced set cannot be determined, downstream
"unbound variable" findings are demoted to non-errors (the component
might produce anything) — but violations that are provable are rejected
with :class:`RuleValidationError`.
"""

from __future__ import annotations

import re

from ..actions import (ActionMarkupError, parse_action_component)
from ..conditions import TEST_NS, TestExpression, TestSyntaxError
from ..events import EventMarkupError, parse_event_component
from ..grh.component import ComponentSpec, opaque_placeholders
from .model import ECARule

__all__ = ["RuleValidationError", "validate_rule", "component_variables"]

_SPARQL_VAR_RE = re.compile(r"[?$]([A-Za-z_][A-Za-z0-9_]*)")
_DATALOG_VAR_RE = re.compile(r"\b([A-Z][A-Za-z0-9_]*)\b")


class RuleValidationError(ValueError):
    """The rule provably violates the binding-order constraint."""


def component_variables(spec: ComponentSpec) \
        -> tuple[set[str] | None, set[str]]:
    """``(produces, consumes)`` for one component; ``None`` = unknown."""
    if spec.family == "event":
        try:
            detector = parse_event_component(spec.content)
        except EventMarkupError as exc:
            raise RuleValidationError(
                f"malformed event component: {exc}") from exc
        return set(detector.variables()), set()

    if spec.family == "test":
        if spec.opaque is not None and spec.language == TEST_NS:
            try:
                expression = TestExpression(spec.opaque)
            except TestSyntaxError as exc:
                raise RuleValidationError(
                    f"malformed test component: {exc}") from exc
            return set(), set(expression.variables())
        if spec.opaque is not None:
            return set(), opaque_placeholders(spec.opaque)
        return set(), set()

    if spec.family == "action":
        if spec.opaque is not None:
            return set(), opaque_placeholders(spec.opaque)
        try:
            action = parse_action_component(spec.content)
        except ActionMarkupError as exc:
            raise RuleValidationError(
                f"malformed action component: {exc}") from exc
        return set(), action.variables()

    # query components
    produces: set[str] | None
    consumes: set[str]
    if spec.opaque is not None:
        consumes = opaque_placeholders(spec.opaque)
        produces = {spec.bind_to} if spec.bind_to else None
    else:
        text = spec.content.text()
        shape = _query_shape(spec)
        if shape == "sparql":
            produces = set(_SPARQL_VAR_RE.findall(text))
            consumes = set()
        elif shape == "datalog":
            produces = {name for name in _DATALOG_VAR_RE.findall(text)
                        if not name.startswith("_")}
            consumes = set()
        else:
            consumes = set()
            produces = {spec.bind_to} if spec.bind_to else None
        if spec.bind_to and produces is not None:
            produces.add(spec.bind_to)
    return produces, consumes


def _query_shape(spec: ComponentSpec) -> str:
    language = spec.language.lower()
    if "sparql" in language:
        return "sparql"
    if "datalog" in language:
        return "datalog"
    return "functional"


def validate_rule(rule: ECARule) -> None:
    """Check the binding-order constraint; raise on provable violations."""
    produced, _ = component_variables(rule.event)
    bound: set[str] = set(produced or ())
    anything_unknown = produced is None

    def check(consumes: set[str], where: str) -> None:
        missing = consumes - bound
        if missing and not anything_unknown:
            raise RuleValidationError(
                f"variables {sorted(missing)} are used in the {where} "
                "component but not bound in an earlier component "
                "(Event < Query < Test < Action, Sec. 3)")

    for index, query in enumerate(rule.queries):
        produces, consumes = component_variables(query)
        check(consumes, f"{_ordinal(index + 1)} query")
        if query.bind_to in bound:
            raise RuleValidationError(
                f"eca:variable {query.bind_to!r} is already bound by an "
                "earlier component")
        if produces is None:
            anything_unknown = True
        else:
            bound |= produces
    if rule.test is not None:
        _, consumes = component_variables(rule.test)
        check(consumes, "test")
    for index, action in enumerate(rule.actions):
        _, consumes = component_variables(action)
        check(consumes, f"{_ordinal(index + 1)} action")


def _ordinal(n: int) -> str:
    suffix = {1: "st", 2: "nd", 3: "rd"}.get(n if n < 20 else n % 10, "th")
    return f"{n}{suffix}"
