"""The paper's primary contribution: rule model, ECA-ML, the ECA engine."""

from .engine import ECAEngine, EngineError, RuleInstance
from .markup import (COMPOSITE_EVENT_LANGUAGES, RuleMarkupError, parse_rule,
                     rule_to_xml)
from .model import ECARule, RuleError
from .repository import RepositoryError, RuleRepository
from .validation import (RuleValidationError, component_variables,
                         validate_rule)

__all__ = [
    "ECAEngine", "RuleInstance", "EngineError",
    "ECARule", "RuleError",
    "RuleRepository", "RepositoryError",
    "parse_rule", "rule_to_xml", "RuleMarkupError",
    "COMPOSITE_EVENT_LANGUAGES",
    "validate_rule", "RuleValidationError", "component_variables",
]
