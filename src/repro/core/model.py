"""The rule model: ECA rules as objects (Fig. 1 of the paper).

A rule is composed of one event component, any number of query
components (some wrapped in ``eca:variable``), an optional test component
and one or more action components; every component *uses* a language.
Rules are Semantic-Web objects — :meth:`ECARule.to_rdf` exports a rule
and its component/language structure as RDF, following the UML model of
Fig. 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..grh.component import ComponentSpec
from ..grh.registry import ECA_ONTOLOGY
from ..rdf import BNode, Graph, Literal, RDF, URIRef
from ..xmlmodel import Element

__all__ = ["ECARule", "RuleError"]

_rule_counter = itertools.count(1)


class RuleError(ValueError):
    """Raised for structurally invalid rules."""


@dataclass(frozen=True)
class ECARule:
    """One ECA rule: E, Q*, T?, A+ (the paper's normal form, Fig. 1)."""

    rule_id: str
    event: ComponentSpec
    queries: tuple[ComponentSpec, ...]
    test: ComponentSpec | None
    actions: tuple[ComponentSpec, ...]
    source: Element | None = field(default=None, compare=False, repr=False)
    #: Higher-priority rules are evaluated first when one event triggers
    #: several rules (an extension beyond the paper; default 0).
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise RuleError("rule needs a non-empty id")
        if self.event.family != "event":
            raise RuleError("first component must be an event component")
        for query in self.queries:
            if query.family != "query":
                raise RuleError(f"not a query component: {query!r}")
        if self.test is not None and self.test.family != "test":
            raise RuleError("test slot holds a non-test component")
        if not self.actions:
            raise RuleError("a rule needs at least one action component")
        for action in self.actions:
            if action.family != "action":
                raise RuleError(f"not an action component: {action!r}")

    @staticmethod
    def fresh_id() -> str:
        return f"rule-{next(_rule_counter)}"

    def components(self) -> list[ComponentSpec]:
        """All components in evaluation order."""
        out: list[ComponentSpec] = [self.event, *self.queries]
        if self.test is not None:
            out.append(self.test)
        out.extend(self.actions)
        return out

    def languages(self) -> set[str]:
        """The languages (URIs/names) this rule combines."""
        return {component.language for component in self.components()}

    # -- ontology export (Fig. 1) ------------------------------------------------

    def to_rdf(self) -> Graph:
        """Describe this rule as an RDF graph per the Fig. 1 model."""
        graph = Graph()
        graph.bind("eca", str(ECA_ONTOLOGY))
        rule_node = URIRef(f"urn:eca:rule:{self.rule_id}")
        graph.add(rule_node, RDF.type, ECA_ONTOLOGY.ECARule)
        graph.add(rule_node, ECA_ONTOLOGY.ruleId, Literal(self.rule_id))
        kind_class = {
            "event": ECA_ONTOLOGY.EventComponent,
            "query": ECA_ONTOLOGY.QueryComponent,
            "test": ECA_ONTOLOGY.TestComponent,
            "action": ECA_ONTOLOGY.ActionComponent,
        }
        kind_property = {
            "event": ECA_ONTOLOGY.hasEventComponent,
            "query": ECA_ONTOLOGY.hasQueryComponent,
            "test": ECA_ONTOLOGY.hasTestComponent,
            "action": ECA_ONTOLOGY.hasActionComponent,
        }
        for index, component in enumerate(self.components()):
            node = BNode(f"{self.rule_id}_c{index}")
            graph.add(rule_node, kind_property[component.family], node)
            graph.add(node, RDF.type, kind_class[component.family])
            graph.add(node, ECA_ONTOLOGY.usesLanguage,
                      URIRef(component.language))
            graph.add(node, ECA_ONTOLOGY.position,
                      Literal.from_python(index))
            if component.bind_to:
                graph.add(node, ECA_ONTOLOGY.bindsVariable,
                          Literal(component.bind_to))
        return graph
