"""The ECA-ML rule markup (Figs. 3/4 and [MAA05a]).

A rule document::

    <eca:rule xmlns:eca="..." id="car-rental">
      <eca:event> <travel:booking person="{Person}" to="{To}"/> </eca:event>
      <eca:variable name="OwnCar">
        <eca:query> <xq:xquery>for $c in ...</xq:xquery> </eca:query>
      </eca:variable>
      <eca:query>
        <eca:opaque language="exist-like">for $c in ... {Class} ...</eca:opaque>
      </eca:query>
      <eca:test>$Class = $AvailClass</eca:test>
      <eca:action> <act:send to="...">...</act:send> </eca:action>
    </eca:rule>

Component languages are recognized by the namespace of the component's
content element; opaque fragments name their language with a ``language``
attribute (Sec. 4.3).  Event content in a namespace that is not a known
*composite* event language is an atomic pattern of the application domain
(handled by the Atomic Event Matcher, Fig. 5).
"""

from __future__ import annotations

from ..actions import ACTION_NS
from ..conditions import TEST_NS
from ..events import ATOMIC_NS, SNOOP_NS, XCHANGE_NS
from ..grh.component import ComponentSpec
from ..xmlmodel import ECA_NS, Element, QName, parse
from .model import ECARule, RuleError

__all__ = ["parse_rule", "rule_to_xml", "RuleMarkupError",
           "COMPOSITE_EVENT_LANGUAGES"]

#: Namespaces the rule parser recognizes as composite event languages.
COMPOSITE_EVENT_LANGUAGES = frozenset({SNOOP_NS, XCHANGE_NS})

_RULE = QName(ECA_NS, "rule")
_EVENT = QName(ECA_NS, "event")
_QUERY = QName(ECA_NS, "query")
_TEST = QName(ECA_NS, "test")
_ACTION = QName(ECA_NS, "action")
_VARIABLE = QName(ECA_NS, "variable")
_OPAQUE = QName(ECA_NS, "opaque")


class RuleMarkupError(ValueError):
    """Raised on malformed ECA-ML documents."""


def parse_rule(document: Element | str, rule_id: str | None = None) -> ECARule:
    """Parse an ECA-ML rule document into an :class:`ECARule`."""
    root = parse(document) if isinstance(document, str) else document
    if root.name != _RULE:
        raise RuleMarkupError(f"expected eca:rule, got {root.name.clark}")
    rule_id = rule_id or root.get("id") or ECARule.fresh_id()

    event: ComponentSpec | None = None
    queries: list[ComponentSpec] = []
    test: ComponentSpec | None = None
    actions: list[ComponentSpec] = []

    for child in root.elements():
        if child.name == _EVENT:
            if event is not None:
                raise RuleMarkupError("a rule has exactly one event component")
            if queries or test or actions:
                raise RuleMarkupError("the event component must come first")
            event = _parse_event(child)
        elif child.name == _VARIABLE:
            if event is None or test is not None or actions:
                raise RuleMarkupError(
                    "eca:variable queries belong between event and test")
            queries.append(_parse_variable(child))
        elif child.name == _QUERY:
            if event is None or test is not None or actions:
                raise RuleMarkupError(
                    "query components belong between event and test")
            queries.append(_parse_query(child, bind_to=None))
        elif child.name == _TEST:
            if event is None or actions:
                raise RuleMarkupError(
                    "the test component belongs between queries and actions")
            if test is not None:
                raise RuleMarkupError("a rule has at most one test component")
            test = _parse_test(child)
        elif child.name == _ACTION:
            if event is None:
                raise RuleMarkupError("action components come last")
            actions.append(_parse_action(child))
        else:
            raise RuleMarkupError(
                f"unexpected element {child.name.clark} in eca:rule")
    if event is None:
        raise RuleMarkupError("a rule needs an event component")
    if not actions:
        raise RuleMarkupError("a rule needs at least one action component")
    priority_raw = root.get("priority", "0")
    try:
        priority = int(priority_raw)
    except ValueError:
        raise RuleMarkupError(
            f"invalid priority {priority_raw!r}") from None
    try:
        return ECARule(rule_id, event, tuple(queries), test, tuple(actions),
                       source=root, priority=priority)
    except RuleError as exc:
        raise RuleMarkupError(str(exc)) from exc


def _single_child(component: Element) -> Element:
    children = list(component.elements())
    if len(children) != 1:
        raise RuleMarkupError(
            f"{component.name.clark} must contain exactly one element")
    return children[0]


def _parse_event(component: Element) -> ComponentSpec:
    content = _single_child(component)
    if content.name == _OPAQUE:
        raise RuleMarkupError("event components cannot be opaque")
    uri = content.name.uri
    language = uri if uri in COMPOSITE_EVENT_LANGUAGES else ATOMIC_NS
    return ComponentSpec("event", language, content=content.copy())


def _parse_opaque(content: Element) -> tuple[str, str]:
    language = content.get("language") or content.get("uri")
    if not language:
        raise RuleMarkupError("eca:opaque needs a language (or uri) attribute")
    return language, content.text()


def _parse_query(component: Element, bind_to: str | None) -> ComponentSpec:
    content = _single_child(component)
    if content.name == _OPAQUE:
        language, text = _parse_opaque(content)
        return ComponentSpec("query", language, opaque=text, bind_to=bind_to)
    if content.name.uri is None:
        raise RuleMarkupError(
            "query content must declare its language via a namespace "
            "(or use eca:opaque)")
    return ComponentSpec("query", content.name.uri, content=content.copy(),
                         bind_to=bind_to)


def _parse_variable(component: Element) -> ComponentSpec:
    name = component.get("name")
    if not name:
        raise RuleMarkupError("eca:variable needs a name attribute")
    inner = _single_child(component)
    if inner.name != _QUERY:
        raise RuleMarkupError("eca:variable must wrap an eca:query")
    return _parse_query(inner, bind_to=name)


def _parse_test(component: Element) -> ComponentSpec:
    children = list(component.elements())
    if not children:
        text = component.text().strip()
        if not text:
            raise RuleMarkupError("empty test component")
        return ComponentSpec("test", TEST_NS, opaque=text)
    content = children[0]
    if content.name == _OPAQUE:
        language, text = _parse_opaque(content)
        return ComponentSpec("test", language, opaque=text)
    return ComponentSpec("test", content.name.uri or TEST_NS,
                         content=content.copy())


def _parse_action(component: Element) -> ComponentSpec:
    content = _single_child(component)
    if content.name == _OPAQUE:
        language, text = _parse_opaque(content)
        return ComponentSpec("action", language, opaque=text)
    # bare domain markup and act:* markup are both served by the action
    # language service
    return ComponentSpec("action", ACTION_NS, content=content.copy())


def rule_to_xml(rule: ECARule) -> Element:
    """Serialize a rule back to ECA-ML (round-trips :func:`parse_rule`)."""
    from ..xmlmodel import Text
    attributes = {QName(None, "id"): rule.rule_id}
    if rule.priority:
        attributes[QName(None, "priority")] = str(rule.priority)
    root = Element(_RULE, attributes, nsdecls={"eca": ECA_NS})

    def component_element(tag: QName, spec: ComponentSpec) -> Element:
        element = Element(tag)
        if spec.content is not None:
            element.append(spec.content.copy())
        else:
            if tag == _TEST and spec.language == TEST_NS:
                element.append(Text(spec.opaque or ""))
            else:
                opaque = Element(_OPAQUE,
                                 {QName(None, "language"): spec.language})
                opaque.append(Text(spec.opaque or ""))
                element.append(opaque)
        return element

    root.append(component_element(_EVENT, rule.event))
    for query in rule.queries:
        query_element = component_element(_QUERY, query)
        if query.bind_to:
            wrapper = Element(_VARIABLE,
                              {QName(None, "name"): query.bind_to})
            wrapper.append(query_element)
            root.append(wrapper)
        else:
            root.append(query_element)
    if rule.test is not None:
        root.append(component_element(_TEST, rule.test))
    for action in rule.actions:
        root.append(component_element(_ACTION, action))
    return root
