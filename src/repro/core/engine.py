"""The ECA engine (Sec. 4 of the paper).

The engine "controls the evaluation of a rule, i.e., when to evaluate
which rule component, and keeps the state information during the
evaluation":

1. On registration, a rule's event component is handed to the GRH, which
   routes it to the appropriate event-detection service (Fig. 5).
2. A ``log:detection`` arriving from an event service starts the rule
   evaluation: the engine creates a rule *instance* whose state is the
   relation of variable-binding tuples from the detection (Fig. 6).
3. Query components are evaluated in order via the GRH; their
   contribution is joined with the instance's relation (``eca:variable``
   components arrive pre-extended, LP-style components are joined here —
   Figs. 7–11).  An instance whose relation becomes empty dies.
4. The test component filters the relation (locally by default,
   Sec. 4.5).
5. Each action component is executed once per surviving tuple, via the
   GRH.

Every instance keeps a trace of its relation after each step — the
tables of Figs. 6(2), 8(3), 9(4) and 11 fall out of this trace.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..bindings import Relation
from ..conditions import TEST_NS, TestExpression
from ..grh import (ActionExecutionError, Detection, GenericRequestHandler,
                   GRHError)
from ..xmlmodel import Element, serialize
from .markup import parse_rule, rule_to_xml
from .model import ECARule
from .validation import RuleValidationError, validate_rule

__all__ = ["ECAEngine", "RuleInstance", "EngineError"]


class EngineError(RuntimeError):
    """Raised for unknown rules and registration problems."""


@dataclass
class RuleInstance:
    """One evaluation of one rule, triggered by one detection."""

    instance_id: int
    rule_id: str
    relation: Relation
    status: str = "running"      # running | completed | dead | failed
    error: str | None = None
    actions_executed: int = 0
    trace: list[tuple[str, Relation]] = field(default_factory=list)
    #: payloads of the event sequence that triggered this instance
    triggering_events: tuple = ()

    def record(self, stage: str, relation: Relation) -> None:
        self.trace.append((stage, relation))
        self.relation = relation

    def trace_table(self) -> str:
        """The instance's evaluation trace as Fig. 6-11-style tables."""
        blocks = []
        for stage, relation in self.trace:
            blocks.append(f"-- after {stage} --\n{relation.sorted().to_table()}")
        return "\n".join(blocks)

    def to_xml(self) -> Element:
        """An audit report of this instance as XML.

        Contains the outcome, the triggering event sequence and the
        relation after every evaluation stage — a machine-readable
        counterpart of :meth:`trace_table`, suitable for monitoring UIs
        or archiving next to the rule in a repository.
        """
        from ..bindings import relation_to_answers
        from ..xmlmodel import LOG_NS, QName, Text
        report = Element(QName(LOG_NS, "instance"),
                         {QName(None, "id"): str(self.instance_id),
                          QName(None, "rule"): self.rule_id,
                          QName(None, "status"): self.status,
                          QName(None, "actions"):
                          str(self.actions_executed)},
                         nsdecls={"log": LOG_NS})
        if self.error:
            error_element = Element(QName(LOG_NS, "error"))
            error_element.append(Text(self.error))
            report.append(error_element)
        if self.triggering_events:
            events_element = Element(QName(LOG_NS, "events"))
            for payload in self.triggering_events:
                events_element.append(payload.copy())
            report.append(events_element)
        for stage, relation in self.trace:
            stage_element = Element(QName(LOG_NS, "stage"),
                                    {QName(None, "name"): stage})
            stage_element.append(relation_to_answers(relation.sorted()))
            report.append(stage_element)
        return report


@dataclass
class _RegisteredRule:
    rule: ECARule
    event_component_id: str


class _DetectionQueue:
    """Priority-bucketed FIFO of pending detections (thread-safe).

    One deque per priority level plus a max-heap of the non-empty
    levels: ``push``/``pop`` are O(log P) in the number of *distinct*
    priorities, instead of the O(n) scan per pop that made large
    batched detection floods quadratic.  FIFO order within a level is
    preserved (the paper's priorities only order *across* levels).

    All operations take the queue's lock: detections may be delivered
    from event-service threads (HTTP servers, the concurrent runtime's
    workers via rule chaining) while another thread drains, and the
    heap/bucket invariant must never be observed half-updated.  The
    lock doubles as the condition used by :meth:`wait` so a consumer
    can block for work without polling.
    """

    __slots__ = ("_buckets", "_heap", "_size", "_lock", "_cond")

    def __init__(self) -> None:
        self._buckets: dict[int, deque] = {}
        self._heap: list[int] = []
        self._size = 0
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)

    def push(self, priority: int, detection: Detection) -> None:
        with self._lock:
            bucket = self._buckets.get(priority)
            if bucket is None:
                bucket = self._buckets[priority] = deque()
            if not bucket:
                # invariant: the heap holds each non-empty level once
                heapq.heappush(self._heap, -priority)
            bucket.append(detection)
            self._size += 1
            self._cond.notify()

    def _pop_locked(self) -> Detection:
        priority = -self._heap[0]
        bucket = self._buckets[priority]
        detection = bucket.popleft()
        if not bucket:
            heapq.heappop(self._heap)
        self._size -= 1
        return detection

    def pop(self) -> Detection:
        with self._lock:
            if not self._size:
                raise IndexError("pop from empty detection queue")
            return self._pop_locked()

    def pop_nowait(self) -> Detection | None:
        """Highest-priority detection, or ``None`` when empty."""
        with self._lock:
            if not self._size:
                return None
            return self._pop_locked()

    def wait(self, timeout: float | None = None) -> Detection | None:
        """Block until a detection is available (or *timeout* elapses)."""
        with self._lock:
            if not self._size:
                self._cond.wait(timeout)
            if not self._size:
                return None
            return self._pop_locked()

    def shed(self) -> Detection | None:
        """Remove and return the oldest detection of the *lowest* level.

        Backpressure victim selection for the runtime's ``drop-oldest``
        policy: the detection shed is the one that would have been
        handled last anyway, so the least-valuable work is lost.
        Returns ``None`` when the queue is empty.
        """
        with self._lock:
            if not self._size:
                return None
            entry = max(self._heap)  # entries are negated priorities
            bucket = self._buckets[-entry]
            detection = bucket.popleft()
            if not bucket:
                self._heap.remove(entry)
                heapq.heapify(self._heap)
            self._size -= 1
            return detection

    def notify_all(self) -> None:
        """Wake every :meth:`wait`-blocked consumer (shutdown path)."""
        with self._lock:
            self._cond.notify_all()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


class ECAEngine:
    """Evaluates registered ECA rules over detections from the GRH."""

    def __init__(self, grh: GenericRequestHandler, validate: bool = True,
                 evaluate_tests_locally: bool = True,
                 keep_instances: bool = True,
                 max_kept_instances: int | None = None,
                 max_instances_per_rule: int | None = None,
                 durability=None, observability=None,
                 runtime=None) -> None:
        self.grh = grh
        #: a :class:`repro.runtime.Runtime`, or ``None`` (the default —
        #: the synchronous single-threaded path, the seed semantics).
        #: With a runtime, detections are hashed to a fixed worker
        #: shard and rule instances evaluate concurrently; call
        #: :meth:`drain` to quiesce and :meth:`shutdown` when done.
        self.runtime = runtime
        self.validate = validate
        self.evaluate_tests_locally = evaluate_tests_locally
        self.keep_instances = keep_instances
        #: retention cap for finished instances (None = unbounded); the
        #: oldest are dropped first so a long-running engine stays flat
        self.max_kept_instances = max_kept_instances
        #: per-rule retention cap for :meth:`instances_of` (None =
        #: unbounded); evicted instances still count in ``stats`` and
        #: in the metrics derived from it
        self.max_instances_per_rule = max_instances_per_rule
        #: a :class:`repro.durability.DurabilityManager`, or ``None``
        #: (the default — no journaling, the seed behavior).  For
        #: resuming an existing durability directory use
        #: :meth:`ECAEngine.recover`, which also rebuilds the rule table
        #: and re-drives unfinished work.
        self.durability = durability
        #: a :class:`repro.obs.Observability`, or ``None`` (the default
        #: — no tracing, no metrics, near-zero overhead).  ``_obs`` is
        #: the hot-path handle: ``None`` unless observability is both
        #: present and enabled, so instrumentation costs one ``is not
        #: None`` check per site when off.
        self.observability = observability
        self._obs = observability if (observability is not None
                                      and observability.enabled) else None
        self.rules: dict[str, _RegisteredRule] = {}
        self.instances: list[RuleInstance] = []
        self._instances_by_rule: dict[str, deque] = {}
        self._by_component: dict[str, str] = {}
        self._instance_counter = itertools.count(1)
        self._pending = _DetectionQueue()
        self._draining = False
        #: guards the ``_draining`` flag: with concurrent producers, a
        #: plain read-then-set is a race that can start two drains (and
        #: interleave detections out of priority order)
        self._state_lock = threading.Lock()
        #: guards ``stats``: worker threads bump counters concurrently
        self._stats_lock = threading.Lock()
        #: guards the retained-instance list and per-rule buckets
        self._retain_lock = threading.Lock()
        #: callbacks fired with ``(instance, detection)`` for every
        #: instance created; registered/iterated under ``_observer_lock``
        #: because replay mutates the list while runtime workers read it
        self._instance_observers: list[
            Callable[[RuleInstance, Detection], None]] = []
        self._observer_lock = threading.Lock()
        #: serializes replay_dead_letters() calls: concurrent replays
        #: would interleave their deterministic drain orders
        self._replay_lock = threading.Lock()
        self.stats = {"detections": 0, "instances": 0, "completed": 0,
                      "dead": 0, "failed": 0, "actions": 0, "evicted": 0}
        #: readiness for ``GET /readyz`` (repro.obs.ops.admin): a fresh
        #: engine — or one resuming a directory with nothing in flight —
        #: is ready immediately; an engine built over journaled
        #: unfinished work is NOT ready until :meth:`recover` has
        #: replayed it, so load balancers hold traffic while
        #: exactly-once replay is still pending
        self.ready = durability is None or not durability.in_flight
        if durability is not None:
            # continue counters and stats where the journal left off
            self._instance_counter = itertools.count(
                durability.first_instance_id())
            for key, value in durability.recovered_stats.items():
                if key in self.stats:
                    self.stats[key] = value
            durability.attach(self)
        if runtime is not None:
            # attach before observability installs so the runtime (and
            # its batcher, when batching is on) is fully built by the
            # time install() registers the runtime metric callbacks;
            # no detection can arrive until on_detection below
            runtime.attach(self)
        if self._obs is not None:
            self._obs.install(self)
        grh.on_detection(self._on_detection)

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def recover(cls, grh: GenericRequestHandler, directory: str, *,
                repository=None, sync: str = "always",
                checkpoint_interval: int = 1000, replay: bool = True,
                manager=None, **engine_options) -> "ECAEngine":
        """Rebuild an engine from a durability directory after a crash.

        Folds ``checkpoint.json`` + ``wal.log`` (see
        ``repro.durability``), then:

        1. re-registers every journaled rule — loaded from *repository*
           (the authoritative Semantic-Web store) when it holds the
           rule, else re-parsed from the journaled ECA-ML source — with
           *idempotent* event registration, so a detection service that
           survived the crash and still holds the registration is not
           an error;
        2. restores the dead-letter queue exactly as journaled;
        3. re-drives every journaled-but-unfinished detection under its
           original instance id, skipping action executions whose
           idempotency keys were journaled (exactly-once effects);
        4. compacts: takes a checkpoint so the next crash recovers from
           a short journal.

        Pass ``replay=False`` to inspect recovered state without
        re-driving work (step 3 and 4 are skipped); pass a pre-built
        ``manager`` to control journalling details (crash-injection
        tests use this).
        """
        if manager is None:
            from ..durability import DurabilityManager
            manager = DurabilityManager(
                directory, sync=sync,
                checkpoint_interval=checkpoint_interval)
        engine = cls(grh, durability=manager, **engine_options)
        log = engine._obs.log if engine._obs is not None else None
        if log is not None:
            log.info("engine.recovery.started", directory=directory,
                     rules=len(manager.rule_sources),
                     in_flight=len(manager.in_flight),
                     dead_letters=len(manager.restored_letters))
        for rule_id, source in manager.rule_sources.items():
            rule = None
            if repository is not None:
                try:
                    rule = repository.load(rule_id)
                except Exception:
                    rule = None
            if rule is None:
                rule = parse_rule(source)
            engine._register_recovered(rule)
        grh.resilience.dead_letters.restore(manager.restored_letters)
        if replay:
            engine._replay_in_flight()
            manager.checkpoint()
            # replay re-drove (or closed) everything journaled: the
            # engine can now take live traffic without risking double
            # effects — /readyz flips 503 → 200 here
            engine.ready = True
            if log is not None:
                log.info("engine.recovery.completed",
                         rules=len(engine.rules),
                         instances=engine.stats["instances"])
        return engine

    def _replay_in_flight(self) -> None:
        """Re-drive detections that were journaled but never finished.

        Detections whose dead letter was parked before the crash are
        closed as failed instead — their remediation already sits in
        the queue, and re-driving them would park a duplicate letter.
        """
        from ..durability.codec import decode_detection
        manager = self.durability
        for det_id, entry in list(manager.in_flight.items()):
            if entry.parked:
                manager.detection_done(det_id, "failed")
                continue
            detection = decode_detection(entry.data)
            self._pending.push(self._priority_of(detection), detection)
        self._drain()
        if self.runtime is not None and self.runtime.running:
            # replay itself is synchronous, but rule chaining during it
            # routes follow-on detections to the worker pool: quiesce
            # before the post-recovery checkpoint snapshots state
            self.runtime.drain()

    # -- rule lifecycle ------------------------------------------------------

    def register_rule(self, rule: ECARule | Element | str,
                      idempotent: bool = False) -> str:
        """Register a rule; its event component is routed to its service.

        Accepts a parsed :class:`ECARule`, an ECA-ML element, or markup
        text.  Returns the rule id.

        ``idempotent=True`` tolerates a detection service that already
        holds the event registration (it survived an engine crash that
        lost the rule before journaling) — setup code re-run after
        recovery should pass it.
        """
        if not isinstance(rule, ECARule):
            rule = parse_rule(rule)
        if rule.rule_id in self.rules:
            raise EngineError(f"rule {rule.rule_id!r} is already registered")
        if self.validate:
            validate_rule(rule)
        component_id = f"{rule.rule_id}::event"
        self.grh.register_event_component(component_id, rule.event,
                                          idempotent=idempotent)
        self.rules[rule.rule_id] = _RegisteredRule(rule, component_id)
        self._by_component[component_id] = rule.rule_id
        if self.durability is not None:
            source = rule.source if rule.source is not None \
                else rule_to_xml(rule)
            self.durability.record_rule_registered(rule.rule_id,
                                                   serialize(source))
            if not self._draining:
                self.durability.maybe_checkpoint()
        return rule.rule_id

    def register_and_store(self, rule: ECARule | Element | str,
                           repository) -> str:
        """Store a rule in a repository and register it, atomically.

        Storing first and registering second would leave the rule
        persisted but inert if the service-side event registration
        fails; this helper rolls the repository insert back on *any*
        registration failure, so repository and engine never disagree.
        Returns the rule id.
        """
        if not isinstance(rule, ECARule):
            rule = parse_rule(rule)
        repository.store(rule)
        try:
            return self.register_rule(rule)
        except BaseException:
            # roll back the triple insert — including on validation
            # errors and engine-duplicate errors, not only GRH failures
            repository.remove(rule.rule_id)
            raise

    def _register_recovered(self, rule: ECARule) -> None:
        """Re-wire one recovered rule without journaling it again.

        The event component is re-registered *idempotently*: a surviving
        detection service that still holds the registration answers
        "already registered", which recovery treats as success.
        """
        if rule.rule_id in self.rules:
            return
        component_id = f"{rule.rule_id}::event"
        self.grh.register_event_component(component_id, rule.event,
                                          idempotent=True)
        self.rules[rule.rule_id] = _RegisteredRule(rule, component_id)
        self._by_component[component_id] = rule.rule_id

    def deregister_rule(self, rule_id: str) -> None:
        if rule_id not in self.rules:
            raise EngineError(f"unknown rule {rule_id!r}")
        registered = self.rules[rule_id]
        # unregister on the event service FIRST: if that send fails, the
        # engine still knows the rule — popping local state first would
        # leave a live service-side registration whose detections the
        # engine silently drops
        self.grh.unregister_event_component(registered.event_component_id,
                                            registered.rule.event)
        self.rules.pop(rule_id)
        self._by_component.pop(registered.event_component_id, None)
        if self.durability is not None:
            self.durability.record_rule_deregistered(rule_id)
            if not self._draining:
                self.durability.maybe_checkpoint()

    # -- detection handling (Fig. 6) --------------------------------------------

    def _bump(self, key: str, n: int = 1) -> None:
        """Increment one stats counter under the stats lock.

        Worker threads of a concurrent runtime finish instances at the
        same time; a plain ``stats[k] += 1`` loses increments under
        contention.  The single-threaded path pays one uncontended lock
        acquisition per bump.
        """
        with self._stats_lock:
            self.stats[key] = self.stats.get(key, 0) + n

    def _on_detection(self, detection: Detection) -> None:
        """Queue a detection; drain synchronously unless already draining.

        The queue makes rule chaining safe: an action that raises an event
        triggers detections *during* action execution; they are processed
        after the current instance finishes instead of recursing.  Among
        queued detections, higher-priority rules go first (FIFO within a
        priority level).

        A durable engine journals the detection before queueing it and
        drops at-least-once redelivery (a detection id it has already
        journaled) — "exactly-once detection replay".

        With a concurrent runtime, admitted detections are handed to the
        worker pool instead: the runtime hashes them to a fixed shard and
        applies its backpressure policy.  A ``reject``-policy runtime at
        capacity raises :class:`repro.runtime.BackpressureError` to the
        producer; the detection is journalled as ``dropped`` first so a
        crash cannot resurrect work the engine refused.
        """
        if self.durability is not None:
            detection = self.durability.admit(detection)
            if detection is None:
                return  # duplicate delivery of a known detection id
        runtime = self.runtime
        if runtime is not None and runtime.running:
            try:
                runtime.submit(detection, self._priority_of(detection))
            except BaseException:
                self._discard(detection)
                raise
            return
        self._pending.push(self._priority_of(detection), detection)
        self._drain()

    def _discard(self, detection: Detection) -> None:
        """Close the durable record of a detection shed by backpressure."""
        if self.durability is not None and detection.detection_id is not None:
            self.durability.detection_done(detection.detection_id, "dropped")

    def _drain(self) -> None:
        """Process queued detections until the queue is empty.

        Exactly one thread drains at a time: the ``_draining`` flag is
        tested-and-set under ``_state_lock`` (a bare flag allowed two
        racing producers to both start draining and interleave pops out
        of priority order).  After releasing the flag the queue is
        re-checked — a detection pushed by a producer that observed the
        flag still set would otherwise be stranded until the next event.
        """
        while True:
            with self._state_lock:
                if self._draining:
                    return
                self._draining = True
            try:
                while True:
                    detection = self._pending.pop_nowait()
                    if detection is None:
                        break
                    self._handle(detection)
            finally:
                with self._state_lock:
                    self._draining = False
            if not self._pending:
                break
        if self.durability is not None:
            # compaction point: the queue is empty, so the snapshot has
            # no half-processed detection to misrepresent
            self.durability.maybe_checkpoint()

    def batch(self):
        """Context manager deferring detection processing until exit.

        Inside the block, detections are only queued; at exit they are
        evaluated highest-priority-first.  Without batching, detections
        are processed synchronously as they arrive, so rule priorities
        only order detections that queue up *during* an evaluation
        (e.g. via rule chaining)::

            with engine.batch():
                stream.emit(event)      # triggers several rules
            # here, all triggered rules have run, by priority

        With a concurrent runtime the block is a quiesce point instead:
        detections route to the worker pool as they arrive, and exit
        blocks until the pool has drained — the post-condition ("all
        triggered rules have run") holds either way.
        """
        from contextlib import contextmanager

        @contextmanager
        def _batch():
            runtime = self.runtime
            if runtime is not None and runtime.running:
                try:
                    yield
                finally:
                    runtime.drain()
                return
            with self._state_lock:
                nested = self._draining
                self._draining = True
            if nested:
                # already inside an evaluation: plain nesting, no-op
                yield
                return
            try:
                yield
            finally:
                # drain exactly once, even when an exception escapes the
                # block — queued detections must not be stranded
                with self._state_lock:
                    self._draining = False
                self._drain()

        return _batch()

    def drain(self, timeout: float | None = None) -> bool:
        """Quiesce: block until every queued detection has been handled.

        With a concurrent runtime this waits for all shard queues to
        empty and all workers to go idle, flushes the GRH dispatch
        batcher, and runs the durability commit barrier; without one it
        simply drains the synchronous queue.  Returns ``True`` once
        idle, ``False`` if *timeout* (seconds) elapsed first.
        """
        if self.runtime is not None:
            return self.runtime.drain(timeout)
        self._drain()
        return True

    def shutdown(self, timeout: float | None = None) -> bool:
        """Drain and stop the concurrent runtime, then release the
        GRH's background resources: the health prober thread, the hedge
        executor, and the transport's connection pools — a finished test
        run or process leaves no threads behind (PROTOCOL.md §12).

        Returns ``True`` when the runtime quiesced within *timeout*.
        The engine remains usable afterwards on the synchronous path
        (pools rebuild on demand; hedging and probing stay off).
        """
        quiesced = True
        if self.runtime is not None:
            quiesced = self.runtime.shutdown(timeout)
        self.grh.close()
        return quiesced

    def _priority_of(self, detection: Detection) -> int:
        rule_id = self._by_component.get(detection.component_id)
        if rule_id is None or rule_id not in self.rules:
            return 0
        return self.rules[rule_id].rule.priority

    def _handle(self, detection: Detection) -> None:
        durability = self.durability
        rule_id = self._by_component.get(detection.component_id)
        if rule_id is None:
            # a rule deregistered while detections were in flight
            if durability is not None and detection.detection_id is not None:
                durability.detection_done(detection.detection_id, "dropped")
            return
        self._bump("detections")
        rule = self.rules[rule_id].rule
        if durability is not None:
            # a crash-replayed detection reuses its journaled instance
            # id so idempotency keys stay stable across the replay
            instance_id = durability.instance_for(detection,
                                                  self._instance_counter)
            durability.current_detection = detection.detection_id
            durability.current_instance = instance_id
        else:
            instance_id = next(self._instance_counter)
        # "The ECA engine creates one or more instances of the rule with
        # appropriate variable bindings according to the number of answer
        # elements in the message" — one instance per detection message,
        # holding all its answer tuples.
        instance = RuleInstance(instance_id, rule_id,
                                detection.bindings,
                                triggering_events=detection.events)
        instance.record("event", detection.bindings)
        self._bump("instances")
        if self.keep_instances:
            self._retain(instance)
        if self._instance_observers:
            with self._observer_lock:
                observers = list(self._instance_observers)
            for observer in observers:
                observer(instance, detection)
        obs = self._obs
        root_span = None
        if obs is not None:
            # the rule instance is the trace root; the event phase is a
            # closed child carrying the detection that started it all
            root_span = obs.tracer.begin(
                "rule", {"rule": rule_id, "instance": instance_id},
                parent=None)
            runtime = self.runtime
            if runtime is not None:
                # time the detection sat in the runtime queue before a
                # worker picked it up — part of the instance's latency
                # budget even though the instance had not started yet
                waited = runtime.take_queue_wait()
                if waited:
                    root_span.set_attribute("queue_wait", waited)
            event_span = obs.begin_phase("event", detection.component_id)
            event_span.set_attribute("tuples", len(detection.bindings))
            obs.end_phase("event", event_span)
        try:
            failure = self._evaluate(rule, instance)
        finally:
            if root_span is not None:
                root_span.set_attribute("status", instance.status)
                log = obs.log
                if log is not None:
                    # emitted before the root finishes so the record
                    # carries the instance's trace/span/rule context
                    emit = log.warning if instance.status == "failed" \
                        else log.info
                    emit("engine.instance.finished",
                         status=instance.status,
                         actions=instance.actions_executed,
                         **({"error": instance.error}
                            if instance.error else {}))
                obs.tracer.finish(
                    root_span,
                    status="error" if instance.status == "failed" else "ok")
        if failure is not None and not isinstance(failure,
                                                  ActionExecutionError):
            # park the detection for replay_dead_letters(); action-phase
            # failures are dead-lettered per-tuple by the GRH instead
            # (replaying the whole detection would re-run executed actions)
            self.grh.dead_letter_detection(detection, failure)
        if durability is not None:
            durability.current_detection = None
            durability.current_instance = None
            durability.detection_done(detection.detection_id, instance.status)

    def _retain(self, instance: RuleInstance) -> None:
        """Keep an instance for introspection, enforcing both caps.

        The global list and the per-rule buckets are subsequences of the
        same creation order, so the globally oldest instance is always
        the front of its own rule's bucket — eviction stays O(evicted).
        Guarded by ``_retain_lock``: concurrent workers retain (and
        evict) at the same time.
        """
        with self._retain_lock:
            self._retain_locked(instance)

    def _retain_locked(self, instance: RuleInstance) -> None:
        self.instances.append(instance)
        bucket = self._instances_by_rule.get(instance.rule_id)
        if bucket is None:
            bucket = self._instances_by_rule[instance.rule_id] = deque()
        bucket.append(instance)
        evicted = 0
        if self.max_instances_per_rule is not None and \
                len(bucket) > self.max_instances_per_rule:
            oldest = bucket.popleft()
            try:
                self.instances.remove(oldest)
            except ValueError:
                pass
            evicted += 1
        if self.max_kept_instances is not None and \
                len(self.instances) > self.max_kept_instances:
            overflow = len(self.instances) - self.max_kept_instances
            for old in self.instances[:overflow]:
                old_bucket = self._instances_by_rule.get(old.rule_id)
                if old_bucket and old_bucket[0] is old:
                    old_bucket.popleft()
            del self.instances[:overflow]
            evicted += overflow
        if evicted:
            self._bump("evicted", evicted)

    # -- instance evaluation (Figs. 7-11) ----------------------------------------------

    def _evaluate(self, rule: ECARule,
                  instance: RuleInstance) -> GRHError | None:
        obs = self._obs
        relation = instance.relation
        try:
            for index, query in enumerate(rule.queries):
                component_id = f"{rule.rule_id}::query-{index}"
                span = obs.begin_phase("query", component_id) \
                    if obs is not None else None
                try:
                    contribution = self.grh.evaluate_query(component_id,
                                                           query, relation)
                    if query.bind_to is not None:
                        # functional components arrive pre-extended by
                        # the GRH
                        relation = contribution
                    else:
                        relation = relation.join(contribution)
                finally:
                    if span is not None:
                        span.set_attribute("tuples", len(relation))
                        obs.end_phase("query", span)
                label = (f"query {index + 1}"
                         + (f" (→ ${query.bind_to})" if query.bind_to else ""))
                instance.record(label, relation)
                if not relation:
                    instance.status = "dead"
                    self._bump("dead")
                    return
            if rule.test is not None:
                span = obs.begin_phase("test", f"{rule.rule_id}::test") \
                    if obs is not None else None
                try:
                    relation = self._run_test(rule, relation)
                finally:
                    if span is not None:
                        span.set_attribute("tuples", len(relation))
                        obs.end_phase("test", span)
                instance.record("test", relation)
                if not relation:
                    instance.status = "dead"
                    self._bump("dead")
                    return
            for index, action in enumerate(rule.actions):
                component_id = f"{rule.rule_id}::action-{index}"
                guard = None
                if self.durability is not None:
                    guard = self.durability.action_guard(
                        instance.instance_id, index)
                span = obs.begin_phase("action", component_id) \
                    if obs is not None else None
                try:
                    executed = self.grh.execute_action(component_id, action,
                                                       relation, guard=guard)
                finally:
                    if span is not None:
                        obs.end_phase("action", span)
                instance.actions_executed += executed
                self._bump("actions", executed)
            instance.record("action", relation)
            instance.status = "completed"
            self._bump("completed")
        except GRHError as exc:
            if isinstance(exc, ActionExecutionError) and exc.executed:
                # tuples that ran before the failure really executed;
                # keep the audit trail (to_xml, stats) truthful
                instance.actions_executed += exc.executed
                self._bump("actions", exc.executed)
            instance.status = "failed"
            instance.error = str(exc)
            self._bump("failed")
            return exc
        return None

    def _run_test(self, rule: ECARule, relation: Relation) -> Relation:
        test = rule.test
        if (self.evaluate_tests_locally and test.opaque is not None
                and test.language == TEST_NS):
            return TestExpression(test.opaque).filter(relation)
        return self.grh.evaluate_test(f"{rule.rule_id}::test", test, relation)

    # -- dead letter replay ----------------------------------------------------------------

    def replay_dead_letters(self, limit: int | None = None) -> dict:
        """Replay parked failures after the failing services recover.

        Detection letters re-run the whole rule instance (a fresh
        instance is created, so the failed one stays in the audit
        trail); action letters execute only the tuples that never ran.
        Letters that fail again are re-parked by the normal failure
        path.  Returns a summary: letters replayed / succeeded / failed,
        and how many action executions the replay performed.

        Replay order is deterministic: letters drain in park order
        (their journal sequence), regardless of which worker thread
        parked them — the same set of letters always replays the same
        way, so a replay after crash recovery is reproducible even when
        the failures themselves happened concurrently.  Concurrent
        calls are serialized (one replay's drain order would otherwise
        interleave with another's).
        """
        with self._replay_lock:
            return self._replay_drained(limit)

    def _replay_drained(self, limit: int | None) -> dict:
        letters = self.grh.resilience.dead_letters.drain(limit)
        summary = {"replayed": 0, "succeeded": 0, "failed": 0, "actions": 0}
        for letter in letters:
            summary["replayed"] += 1
            if letter.kind == "action":
                try:
                    executed = self.grh.execute_action(
                        letter.component_id, letter.spec, letter.bindings)
                except GRHError as exc:
                    # execute_action re-parked the still-failing tuples;
                    # partial progress still counts as executed actions
                    if isinstance(exc, ActionExecutionError) and \
                            exc.executed:
                        summary["actions"] += exc.executed
                        self._bump("actions", exc.executed)
                    summary["failed"] += 1
                    continue
                summary["succeeded"] += 1
                summary["actions"] += executed
                self._bump("actions", executed)
            else:
                # track the replayed instance itself: diffing the global
                # ``failed`` counter misattributed a *chained* rule's
                # failure (triggered during this replay) to the letter
                # even when the letter's own rule completed fine
                replayed = self._replay_detection(letter.detection)
                if replayed is not None and replayed.status == "failed":
                    summary["failed"] += 1
                else:
                    summary["succeeded"] += 1
        return summary

    def _replay_detection(self, detection: Detection) -> RuleInstance | None:
        """Re-drive one parked detection; returns *its* instance (not a
        chained one), or ``None`` if no rule matched it anymore.

        Replay always runs on the caller's thread through the
        synchronous queue — even when a concurrent runtime is attached —
        so letters re-run in their deterministic drain order (journal
        sequence) and the returned instance is final when this returns.
        """
        if self.durability is not None and detection.detection_id is not None:
            # the detection was marked done when its letter was parked;
            # an intentional replay must pass the duplicate filter
            self.durability.forget(detection.detection_id)
        if self.durability is not None:
            admitted = self.durability.admit(detection)
            if admitted is None:
                return None
            detection = admitted
        captured: list[RuleInstance] = []

        def observe(instance: RuleInstance, handled: Detection) -> None:
            # match on the exact detection object being replayed:
            # runtime workers create instances for unrelated detections
            # concurrently, and capturing "the first instance by any
            # thread" mis-attributed their outcomes to this letter
            if handled is detection and not captured:
                captured.append(instance)

        with self._observer_lock:
            self._instance_observers.append(observe)
        try:
            self._pending.push(self._priority_of(detection), detection)
            self._drain()
        finally:
            with self._observer_lock:
                self._instance_observers.remove(observe)
        return captured[0] if captured else None

    # -- introspection ---------------------------------------------------------------------

    def instances_of(self, rule_id: str) -> list[RuleInstance]:
        """Retained instances of one rule, oldest first.

        Served from a per-rule index (O(answer) instead of a scan over
        every retained instance); bounded by ``max_instances_per_rule``
        when set.
        """
        bucket = self._instances_by_rule.get(rule_id)
        if bucket is not None:
            # under the retain lock: a worker appending to the deque
            # mid-copy would raise "mutated during iteration"
            with self._retain_lock:
                return list(bucket)
        # instances appended by code that bypasses _retain (tests,
        # monitoring shims) still show up via the slow path
        return [instance for instance in self.instances
                if instance.rule_id == rule_id]
