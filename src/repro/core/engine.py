"""The ECA engine (Sec. 4 of the paper).

The engine "controls the evaluation of a rule, i.e., when to evaluate
which rule component, and keeps the state information during the
evaluation":

1. On registration, a rule's event component is handed to the GRH, which
   routes it to the appropriate event-detection service (Fig. 5).
2. A ``log:detection`` arriving from an event service starts the rule
   evaluation: the engine creates a rule *instance* whose state is the
   relation of variable-binding tuples from the detection (Fig. 6).
3. Query components are evaluated in order via the GRH; their
   contribution is joined with the instance's relation (``eca:variable``
   components arrive pre-extended, LP-style components are joined here —
   Figs. 7–11).  An instance whose relation becomes empty dies.
4. The test component filters the relation (locally by default,
   Sec. 4.5).
5. Each action component is executed once per surviving tuple, via the
   GRH.

Every instance keeps a trace of its relation after each step — the
tables of Figs. 6(2), 8(3), 9(4) and 11 fall out of this trace.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from ..bindings import Relation
from ..conditions import TEST_NS, TestExpression
from ..grh import (ActionExecutionError, Detection, GenericRequestHandler,
                   GRHError)
from ..xmlmodel import Element
from .markup import parse_rule
from .model import ECARule
from .validation import RuleValidationError, validate_rule

__all__ = ["ECAEngine", "RuleInstance", "EngineError"]


class EngineError(RuntimeError):
    """Raised for unknown rules and registration problems."""


@dataclass
class RuleInstance:
    """One evaluation of one rule, triggered by one detection."""

    instance_id: int
    rule_id: str
    relation: Relation
    status: str = "running"      # running | completed | dead | failed
    error: str | None = None
    actions_executed: int = 0
    trace: list[tuple[str, Relation]] = field(default_factory=list)
    #: payloads of the event sequence that triggered this instance
    triggering_events: tuple = ()

    def record(self, stage: str, relation: Relation) -> None:
        self.trace.append((stage, relation))
        self.relation = relation

    def trace_table(self) -> str:
        """The instance's evaluation trace as Fig. 6-11-style tables."""
        blocks = []
        for stage, relation in self.trace:
            blocks.append(f"-- after {stage} --\n{relation.sorted().to_table()}")
        return "\n".join(blocks)

    def to_xml(self) -> Element:
        """An audit report of this instance as XML.

        Contains the outcome, the triggering event sequence and the
        relation after every evaluation stage — a machine-readable
        counterpart of :meth:`trace_table`, suitable for monitoring UIs
        or archiving next to the rule in a repository.
        """
        from ..bindings import relation_to_answers
        from ..xmlmodel import LOG_NS, QName, Text
        report = Element(QName(LOG_NS, "instance"),
                         {QName(None, "id"): str(self.instance_id),
                          QName(None, "rule"): self.rule_id,
                          QName(None, "status"): self.status,
                          QName(None, "actions"):
                          str(self.actions_executed)},
                         nsdecls={"log": LOG_NS})
        if self.error:
            error_element = Element(QName(LOG_NS, "error"))
            error_element.append(Text(self.error))
            report.append(error_element)
        if self.triggering_events:
            events_element = Element(QName(LOG_NS, "events"))
            for payload in self.triggering_events:
                events_element.append(payload.copy())
            report.append(events_element)
        for stage, relation in self.trace:
            stage_element = Element(QName(LOG_NS, "stage"),
                                    {QName(None, "name"): stage})
            stage_element.append(relation_to_answers(relation.sorted()))
            report.append(stage_element)
        return report


@dataclass
class _RegisteredRule:
    rule: ECARule
    event_component_id: str


class ECAEngine:
    """Evaluates registered ECA rules over detections from the GRH."""

    def __init__(self, grh: GenericRequestHandler, validate: bool = True,
                 evaluate_tests_locally: bool = True,
                 keep_instances: bool = True,
                 max_kept_instances: int | None = None) -> None:
        self.grh = grh
        self.validate = validate
        self.evaluate_tests_locally = evaluate_tests_locally
        self.keep_instances = keep_instances
        #: retention cap for finished instances (None = unbounded); the
        #: oldest are dropped first so a long-running engine stays flat
        self.max_kept_instances = max_kept_instances
        self.rules: dict[str, _RegisteredRule] = {}
        self.instances: list[RuleInstance] = []
        self._by_component: dict[str, str] = {}
        self._instance_counter = itertools.count(1)
        self._pending: deque[Detection] = deque()
        self._draining = False
        self.stats = {"detections": 0, "instances": 0, "completed": 0,
                      "dead": 0, "failed": 0, "actions": 0}
        grh.on_detection(self._on_detection)

    # -- rule lifecycle ------------------------------------------------------

    def register_rule(self, rule: ECARule | Element | str) -> str:
        """Register a rule; its event component is routed to its service.

        Accepts a parsed :class:`ECARule`, an ECA-ML element, or markup
        text.  Returns the rule id.
        """
        if not isinstance(rule, ECARule):
            rule = parse_rule(rule)
        if rule.rule_id in self.rules:
            raise EngineError(f"rule {rule.rule_id!r} is already registered")
        if self.validate:
            validate_rule(rule)
        component_id = f"{rule.rule_id}::event"
        self.grh.register_event_component(component_id, rule.event)
        self.rules[rule.rule_id] = _RegisteredRule(rule, component_id)
        self._by_component[component_id] = rule.rule_id
        return rule.rule_id

    def deregister_rule(self, rule_id: str) -> None:
        if rule_id not in self.rules:
            raise EngineError(f"unknown rule {rule_id!r}")
        registered = self.rules[rule_id]
        # unregister on the event service FIRST: if that send fails, the
        # engine still knows the rule — popping local state first would
        # leave a live service-side registration whose detections the
        # engine silently drops
        self.grh.unregister_event_component(registered.event_component_id,
                                            registered.rule.event)
        self.rules.pop(rule_id)
        self._by_component.pop(registered.event_component_id, None)

    # -- detection handling (Fig. 6) --------------------------------------------

    def _on_detection(self, detection: Detection) -> None:
        """Queue a detection; drain synchronously unless already draining.

        The queue makes rule chaining safe: an action that raises an event
        triggers detections *during* action execution; they are processed
        after the current instance finishes instead of recursing.  Among
        queued detections, higher-priority rules go first (FIFO within a
        priority level).
        """
        self._pending.append(detection)
        if self._draining:
            return
        self._draining = True
        try:
            while self._pending:
                self._handle(self._pop_highest_priority())
        finally:
            self._draining = False

    def batch(self):
        """Context manager deferring detection processing until exit.

        Inside the block, detections are only queued; at exit they are
        evaluated highest-priority-first.  Without batching, detections
        are processed synchronously as they arrive, so rule priorities
        only order detections that queue up *during* an evaluation
        (e.g. via rule chaining)::

            with engine.batch():
                stream.emit(event)      # triggers several rules
            # here, all triggered rules have run, by priority
        """
        from contextlib import contextmanager

        @contextmanager
        def _batch():
            if self._draining:
                # already inside an evaluation: plain nesting, no-op
                yield
                return
            self._draining = True
            try:
                yield
            finally:
                self._draining = False
                while self._pending:
                    self._draining = True
                    try:
                        self._handle(self._pop_highest_priority())
                    finally:
                        self._draining = False

        return _batch()

    def _pop_highest_priority(self) -> Detection:
        best_index = 0
        best_priority = self._priority_of(self._pending[0])
        for index in range(1, len(self._pending)):
            priority = self._priority_of(self._pending[index])
            if priority > best_priority:
                best_index = index
                best_priority = priority
        self._pending.rotate(-best_index)
        detection = self._pending.popleft()
        self._pending.rotate(best_index)
        return detection

    def _priority_of(self, detection: Detection) -> int:
        rule_id = self._by_component.get(detection.component_id)
        if rule_id is None or rule_id not in self.rules:
            return 0
        return self.rules[rule_id].rule.priority

    def _handle(self, detection: Detection) -> None:
        rule_id = self._by_component.get(detection.component_id)
        if rule_id is None:
            return  # a rule deregistered while detections were in flight
        self.stats["detections"] += 1
        rule = self.rules[rule_id].rule
        # "The ECA engine creates one or more instances of the rule with
        # appropriate variable bindings according to the number of answer
        # elements in the message" — one instance per detection message,
        # holding all its answer tuples.
        instance = RuleInstance(next(self._instance_counter), rule_id,
                                detection.bindings,
                                triggering_events=detection.events)
        instance.record("event", detection.bindings)
        self.stats["instances"] += 1
        if self.keep_instances:
            self.instances.append(instance)
            if self.max_kept_instances is not None and \
                    len(self.instances) > self.max_kept_instances:
                del self.instances[:len(self.instances)
                                   - self.max_kept_instances]
        failure = self._evaluate(rule, instance)
        if failure is not None and not isinstance(failure,
                                                  ActionExecutionError):
            # park the detection for replay_dead_letters(); action-phase
            # failures are dead-lettered per-tuple by the GRH instead
            # (replaying the whole detection would re-run executed actions)
            self.grh.dead_letter_detection(detection, failure)

    # -- instance evaluation (Figs. 7-11) ----------------------------------------------

    def _evaluate(self, rule: ECARule,
                  instance: RuleInstance) -> GRHError | None:
        relation = instance.relation
        try:
            for index, query in enumerate(rule.queries):
                component_id = f"{rule.rule_id}::query-{index}"
                contribution = self.grh.evaluate_query(component_id, query,
                                                       relation)
                if query.bind_to is not None:
                    # functional components arrive pre-extended by the GRH
                    relation = contribution
                else:
                    relation = relation.join(contribution)
                label = (f"query {index + 1}"
                         + (f" (→ ${query.bind_to})" if query.bind_to else ""))
                instance.record(label, relation)
                if not relation:
                    instance.status = "dead"
                    self.stats["dead"] += 1
                    return
            if rule.test is not None:
                relation = self._run_test(rule, relation)
                instance.record("test", relation)
                if not relation:
                    instance.status = "dead"
                    self.stats["dead"] += 1
                    return
            for index, action in enumerate(rule.actions):
                component_id = f"{rule.rule_id}::action-{index}"
                executed = self.grh.execute_action(component_id, action,
                                                   relation)
                instance.actions_executed += executed
                self.stats["actions"] += executed
            instance.record("action", relation)
            instance.status = "completed"
            self.stats["completed"] += 1
        except GRHError as exc:
            if isinstance(exc, ActionExecutionError) and exc.executed:
                # tuples that ran before the failure really executed;
                # keep the audit trail (to_xml, stats) truthful
                instance.actions_executed += exc.executed
                self.stats["actions"] += exc.executed
            instance.status = "failed"
            instance.error = str(exc)
            self.stats["failed"] += 1
            return exc
        return None

    def _run_test(self, rule: ECARule, relation: Relation) -> Relation:
        test = rule.test
        if (self.evaluate_tests_locally and test.opaque is not None
                and test.language == TEST_NS):
            return TestExpression(test.opaque).filter(relation)
        return self.grh.evaluate_test(f"{rule.rule_id}::test", test, relation)

    # -- dead letter replay ----------------------------------------------------------------

    def replay_dead_letters(self, limit: int | None = None) -> dict:
        """Replay parked failures after the failing services recover.

        Detection letters re-run the whole rule instance (a fresh
        instance is created, so the failed one stays in the audit
        trail); action letters execute only the tuples that never ran.
        Letters that fail again are re-parked by the normal failure
        path.  Returns a summary: letters replayed / succeeded / failed,
        and how many action executions the replay performed.
        """
        letters = self.grh.resilience.dead_letters.drain(limit)
        summary = {"replayed": 0, "succeeded": 0, "failed": 0, "actions": 0}
        for letter in letters:
            summary["replayed"] += 1
            if letter.kind == "action":
                try:
                    executed = self.grh.execute_action(
                        letter.component_id, letter.spec, letter.bindings)
                except GRHError as exc:
                    # execute_action re-parked the still-failing tuples;
                    # partial progress still counts as executed actions
                    if isinstance(exc, ActionExecutionError) and \
                            exc.executed:
                        summary["actions"] += exc.executed
                        self.stats["actions"] += exc.executed
                    summary["failed"] += 1
                    continue
                summary["succeeded"] += 1
                summary["actions"] += executed
                self.stats["actions"] += executed
            else:
                failed_before = self.stats["failed"]
                self._on_detection(letter.detection)
                if self.stats["failed"] > failed_before:
                    summary["failed"] += 1
                else:
                    summary["succeeded"] += 1
        return summary

    # -- introspection ---------------------------------------------------------------------

    def instances_of(self, rule_id: str) -> list[RuleInstance]:
        return [instance for instance in self.instances
                if instance.rule_id == rule_id]
