"""A rule repository: ECA rules stored as Semantic-Web objects.

Section 2 of the paper: *"Rules and their components are objects of the
Semantic Web, i.e., subject to a generic rule ontology."*  The repository
makes that operational: rules are persisted into an RDF graph — their
Fig. 1 component/language structure as triples, their ECA-ML source as a
literal — and can be queried *semantically* (e.g. "all rules using the
SNOOP event language") and re-materialized into a running engine.
"""

from __future__ import annotations

from typing import Iterator

from ..rdf import Graph, Literal, RDF, URIRef
from ..grh.registry import ECA_ONTOLOGY
from ..xmlmodel import parse, serialize
from .markup import parse_rule, rule_to_xml
from .model import ECARule

__all__ = ["RuleRepository", "RepositoryError"]


class RepositoryError(ValueError):
    """Raised for unknown rules or malformed repository state."""


def _rule_node(rule_id: str) -> URIRef:
    return URIRef(f"urn:eca:rule:{rule_id}")


class RuleRepository:
    """Stores and retrieves ECA rules in an RDF graph."""

    def __init__(self, graph: Graph | None = None) -> None:
        self.graph = graph if graph is not None else Graph()
        self.graph.bind("eca", str(ECA_ONTOLOGY))

    # -- storing ---------------------------------------------------------------

    def store(self, rule: ECARule | str) -> URIRef:
        """Persist a rule (ontology triples + ECA-ML source)."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        node = _rule_node(rule.rule_id)
        if (node, RDF.type, ECA_ONTOLOGY.ECARule) in self.graph:
            raise RepositoryError(
                f"rule {rule.rule_id!r} is already stored")
        for triple in rule.to_rdf():
            self.graph.add(*triple)
        source = rule.source if rule.source is not None else rule_to_xml(rule)
        self.graph.add(node, ECA_ONTOLOGY.sourceMarkup,
                       Literal(serialize(source)))
        return node

    def remove(self, rule_id: str) -> bool:
        """Remove a rule and its component descriptions; False if absent."""
        node = _rule_node(rule_id)
        if (node, RDF.type, ECA_ONTOLOGY.ECARule) not in self.graph:
            return False
        component_nodes = [obj for _, pred, obj in
                           self.graph.triples(node, None, None)
                           if str(pred).startswith(str(ECA_ONTOLOGY))
                           and not isinstance(obj, Literal)]
        for triple in list(self.graph.triples(node, None, None)):
            self.graph.remove(*triple)
        for component in component_nodes:
            for triple in list(self.graph.triples(component, None, None)):
                self.graph.remove(*triple)
        return True

    # -- retrieval ----------------------------------------------------------------

    def rule_ids(self) -> list[str]:
        ids = []
        for node in self.graph.instances_of(ECA_ONTOLOGY.ECARule):
            value = self.graph.value(node, ECA_ONTOLOGY.ruleId)
            if isinstance(value, Literal):
                ids.append(value.lexical)
        return sorted(ids)

    def load(self, rule_id: str) -> ECARule:
        """Re-materialize a stored rule from its ECA-ML source."""
        node = _rule_node(rule_id)
        source = self.graph.value(node, ECA_ONTOLOGY.sourceMarkup)
        if not isinstance(source, Literal):
            raise RepositoryError(f"no stored rule {rule_id!r}")
        return parse_rule(parse(source.lexical))

    def rules_using_language(self, language_uri: str) -> list[str]:
        """Semantic query: ids of rules with a component in ``language``.

        This is exactly the kind of introspection the paper's ontology
        enables: languages are resources, so "which rules depend on
        service X" is a graph query.
        """
        language = URIRef(language_uri)
        out = set()
        for component in self.graph.subjects(ECA_ONTOLOGY.usesLanguage,
                                             language):
            for rule_node in self._owners_of(component):
                value = self.graph.value(rule_node, ECA_ONTOLOGY.ruleId)
                if isinstance(value, Literal):
                    out.add(value.lexical)
        return sorted(out)

    def _owners_of(self, component) -> Iterator[URIRef]:
        for predicate in (ECA_ONTOLOGY.hasEventComponent,
                          ECA_ONTOLOGY.hasQueryComponent,
                          ECA_ONTOLOGY.hasTestComponent,
                          ECA_ONTOLOGY.hasActionComponent):
            yield from self.graph.subjects(predicate, component)

    # -- engine integration -----------------------------------------------------------

    def register_all(self, engine) -> list[str]:
        """Load every stored rule into an engine; returns the rule ids."""
        registered = []
        for rule_id in self.rule_ids():
            engine.register_rule(self.load(rule_id))
            registered.append(rule_id)
        return registered

    def __len__(self) -> int:
        return len(self.rule_ids())
