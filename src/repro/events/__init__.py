"""Events: model, atomic matching, SNOOP algebra, XChange-style queries.

The event-component substrate of the framework: heterogeneous event
languages producing occurrences that carry relations of variable bindings
(Sec. 3/4.2 of the paper).
"""

from .atomic import AtomicPattern, PatternError
from .base import Event, EventStream, Occurrence
from .markup import (ATOMIC_NS, EventMarkupError, SNOOP_NS, XCHANGE_NS,
                     parse_atomic, parse_event_component, parse_snoop,
                     parse_xchange)
from .snoop import (And, Any, Aperiodic, AperiodicCumulative, Atomic,
                    CONTEXTS, Detector, Not, Or, Periodic, Seq, SnoopError)
from .xchange import (AndQuery, EventQuery, OrQuery, PatternQuery, SeqQuery,
                      WithoutQuery, XChangeError)

__all__ = [
    "Event", "EventStream", "Occurrence",
    "AtomicPattern", "PatternError",
    "Detector", "Atomic", "Or", "And", "Seq", "Any", "Not", "Aperiodic",
    "AperiodicCumulative", "Periodic", "CONTEXTS", "SnoopError",
    "EventQuery", "PatternQuery", "AndQuery", "OrQuery", "SeqQuery",
    "WithoutQuery", "XChangeError",
    "parse_event_component", "parse_snoop", "parse_xchange", "parse_atomic",
    "SNOOP_NS", "XCHANGE_NS", "ATOMIC_NS", "EventMarkupError",
]
