"""The event model: events are XML fragments with occurrence metadata.

Section 3 of the paper: events are values too — "variables can be bound to
... events (marked up as XML or RDF fragments)".  An :class:`Event` wraps
an XML element (its domain markup, e.g. ``<travel:booking .../>``) plus a
timestamp and a monotonically increasing sequence number assigned by the
stream it occurred on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..xmlmodel import Element, QName

__all__ = ["Event", "EventStream", "Occurrence"]


@dataclass(frozen=True)
class Event:
    """One event occurrence."""

    payload: Element
    timestamp: float
    sequence: int = 0

    @property
    def name(self) -> QName:
        return self.payload.name

    def get(self, attribute: str) -> str | None:
        return self.payload.get(attribute)

    def __repr__(self) -> str:
        return (f"Event({self.name.local}@{self.timestamp}"
                f"#{self.sequence})")


@dataclass(frozen=True)
class Occurrence:
    """A (composite) event occurrence produced by a detector.

    ``start``/``end`` span the constituent events (for an atomic event both
    equal its timestamp); ``bindings`` is the relation of variable-binding
    tuples extracted while matching — the *answers* the ECA engine receives
    (Fig. 6); ``constituents`` is the matched event sequence, which the
    paper says is signalled back alongside the bindings.
    """

    start: float
    end: float
    bindings: "object"  # repro.bindings.Relation (kept loose to avoid cycle)
    constituents: tuple[Event, ...]

    def __repr__(self) -> str:
        return (f"Occurrence([{self.start}, {self.end}], "
                f"{len(self.constituents)} events, "
                f"{len(self.bindings)} tuples)")


class EventStream:
    """An ordered event source with monotone timestamps.

    ``emit`` stamps and delivers an event to all subscribers; subscribers
    are callables ``(Event) -> None`` (the event-detection services).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._clock = start_time
        self._sequence = itertools.count()
        self._subscribers: list[Callable[[Event], None]] = []
        self.history: list[Event] = []

    def subscribe(self, subscriber: Callable[[Event], None]) -> None:
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Callable[[Event], None]) -> None:
        self._subscribers.remove(subscriber)

    @property
    def now(self) -> float:
        return self._clock

    def advance(self, delta: float) -> None:
        """Move the stream clock forward without emitting anything."""
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self._clock += delta

    def emit(self, payload: Element, at: float | None = None) -> Event:
        """Stamp ``payload`` as an event and deliver it."""
        if at is not None:
            if at < self._clock:
                raise ValueError(
                    f"timestamp {at} is before stream time {self._clock}")
            self._clock = at
        event = Event(payload, self._clock, next(self._sequence))
        self.history.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def emit_all(self, payloads: Iterable[Element],
                 spacing: float = 1.0) -> list[Event]:
        """Emit several events, advancing the clock between them."""
        events = []
        for payload in payloads:
            events.append(self.emit(payload))
            self.advance(spacing)
        return events

    def __iter__(self) -> Iterator[Event]:
        return iter(self.history)

    def __len__(self) -> int:
        return len(self.history)
