"""SNOOP-style composite event detection with logical variables.

Implements the event algebra of Chakravarthy et al. [CKAK94] — the
composite event language the paper cites for its event component
(Sec. 4.2, [Spa06]) — extended with logical variables as in the
framework: every (composite) occurrence carries a *relation of variable
bindings*, and combining sub-occurrences joins their relations, so shared
variables act as join variables across constituent events.

Operators: ``Or``, ``And``, ``Seq``, ``Any(m, ...)``, ``Not(A, B, C)``
(B does not occur between A and C), ``Aperiodic(A, B, C)`` (each B inside
an A..C window), ``Periodic(A, dt, C)``.

Parameter contexts [CKAK94] govern which initiator occurrences a
terminator pairs with and which are consumed:

* ``unrestricted`` — every initiator pairs, nothing is consumed,
* ``recent``       — only the most recent initiator is kept,
* ``chronicle``    — the oldest initiator pairs and is consumed (FIFO),
* ``continuous``   — every stored initiator pairs; all used are consumed,
* ``cumulative``   — all initiators are merged into one occurrence and
  consumed together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..bindings import Relation
from .base import Event, Occurrence
from .atomic import AtomicPattern

__all__ = ["Detector", "Atomic", "Or", "And", "Seq", "Any", "Not",
           "Aperiodic", "AperiodicCumulative", "Periodic", "CONTEXTS",
           "SnoopError"]

CONTEXTS = ("unrestricted", "recent", "chronicle", "continuous", "cumulative")


class SnoopError(ValueError):
    """Raised for invalid operator configuration."""


def _combine(first: Occurrence, second: Occurrence) -> Occurrence | None:
    """Join two occurrences; None when their bindings are incompatible."""
    joined = first.bindings.join(second.bindings)
    if not joined:
        return None
    constituents = tuple(sorted(first.constituents + second.constituents,
                                key=lambda event: event.sequence))
    return Occurrence(min(first.start, second.start),
                      max(first.end, second.end), joined, constituents)


def _merge_all(occurrences: Sequence[Occurrence]) -> Occurrence:
    """Cumulative merge: union of bindings, all constituents."""
    bindings = Relation()
    constituents: tuple[Event, ...] = ()
    for occurrence in occurrences:
        bindings = bindings.union(occurrence.bindings)
        constituents += occurrence.constituents
    constituents = tuple(sorted(set(constituents),
                                key=lambda event: event.sequence))
    return Occurrence(min(o.start for o in occurrences),
                      max(o.end for o in occurrences), bindings, constituents)


class _Store:
    """Initiator storage implementing one parameter context."""

    def __init__(self, context: str) -> None:
        if context not in CONTEXTS:
            raise SnoopError(f"unknown parameter context {context!r}")
        self.context = context
        self.items: list[Occurrence] = []

    def add(self, occurrence: Occurrence) -> None:
        if self.context == "recent":
            self.items = [occurrence]
        else:
            self.items.append(occurrence)

    def pair_with(self, terminator: Occurrence,
                  eligible=lambda initiator: True) -> list[Occurrence]:
        """Detections for an incoming terminator, honouring the context."""
        candidates = [item for item in self.items if eligible(item)]
        if not candidates:
            return []
        if self.context == "recent":
            combined = _combine(candidates[-1], terminator)
            return [combined] if combined else []
        if self.context == "chronicle":
            for candidate in candidates:  # oldest first
                combined = _combine(candidate, terminator)
                if combined:
                    self.items.remove(candidate)
                    return [combined]
            return []
        if self.context == "cumulative":
            merged = _merge_all(candidates)
            combined = _combine(merged, terminator)
            if combined:
                for candidate in candidates:
                    self.items.remove(candidate)
                return [combined]
            return []
        # unrestricted / continuous: pair with every candidate
        out = []
        used = []
        for candidate in candidates:
            combined = _combine(candidate, terminator)
            if combined:
                out.append(combined)
                used.append(candidate)
        if self.context == "continuous":
            for candidate in used:
                self.items.remove(candidate)
        return out

    def clear(self) -> None:
        self.items.clear()


class Detector:
    """Base class of all operator nodes (push-based evaluation)."""

    def feed(self, event: Event) -> list[Occurrence]:
        """Process one raw event; detected occurrences of this node."""
        raise NotImplementedError

    def poll(self, now: float) -> list[Occurrence]:
        """Time-driven detections (only ``Periodic`` produces any)."""
        return []

    def reset(self) -> None:
        """Discard all partial-match state."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError


@dataclass
class Atomic(Detector):
    """Leaf node: an atomic event pattern."""

    pattern: AtomicPattern

    def feed(self, event: Event) -> list[Occurrence]:
        occurrence = self.pattern.match(event)
        return [occurrence] if occurrence else []

    def reset(self) -> None:
        pass

    def variables(self) -> set[str]:
        return self.pattern.variables()


@dataclass
class Or(Detector):
    """E1 ∨ E2: occurs whenever either child occurs."""

    children: list[Detector]

    def feed(self, event: Event) -> list[Occurrence]:
        out: list[Occurrence] = []
        for child in self.children:
            out.extend(child.feed(event))
        return out

    def poll(self, now: float) -> list[Occurrence]:
        out: list[Occurrence] = []
        for child in self.children:
            out.extend(child.poll(now))
        return out

    def reset(self) -> None:
        for child in self.children:
            child.reset()

    def variables(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.variables()
        return names


class _Binary(Detector):
    def __init__(self, left: Detector, right: Detector,
                 context: str = "unrestricted") -> None:
        self.left = left
        self.right = right
        self.context = context
        self._left_store = _Store(context)
        self._right_store = _Store(context)

    def reset(self) -> None:
        self.left.reset()
        self.right.reset()
        self._left_store.clear()
        self._right_store.clear()

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


class And(_Binary):
    """E1 ∧ E2 (conjunction, order irrelevant)."""

    def feed(self, event: Event) -> list[Occurrence]:
        left_occurrences = self.left.feed(event)
        right_occurrences = self.right.feed(event)
        out: list[Occurrence] = []
        for occurrence in left_occurrences:
            out.extend(self._right_store.pair_with(occurrence))
            self._left_store.add(occurrence)
        for occurrence in right_occurrences:
            out.extend(self._left_store.pair_with(occurrence))
            self._right_store.add(occurrence)
        return out


class Seq(_Binary):
    """E1 ; E2 — E2 strictly after E1."""

    def feed(self, event: Event) -> list[Occurrence]:
        left_occurrences = self.left.feed(event)
        right_occurrences = self.right.feed(event)
        out: list[Occurrence] = []
        for occurrence in right_occurrences:
            out.extend(self._left_store.pair_with(
                occurrence,
                eligible=lambda initiator: initiator.end < occurrence.start))
        for occurrence in left_occurrences:
            self._left_store.add(occurrence)
        return out


class Any(Detector):
    """ANY(m; E1, ..., En): m *distinct* children have occurred."""

    def __init__(self, m: int, children: list[Detector],
                 context: str = "chronicle") -> None:
        if not 1 <= m <= len(children):
            raise SnoopError(f"ANY({m}) needs between 1 and {len(children)} "
                             "children")
        self.m = m
        self.children = children
        self.context = context
        self._stores = [_Store(context) for _ in children]

    def feed(self, event: Event) -> list[Occurrence]:
        out: list[Occurrence] = []
        for index, child in enumerate(self.children):
            for occurrence in child.feed(event):
                self._stores[index].add(occurrence)
                detection = self._try_complete()
                if detection is not None:
                    out.append(detection)
        return out

    def _try_complete(self) -> Occurrence | None:
        filled = [store for store in self._stores if store.items]
        if len(filled) < self.m:
            return None
        # take the oldest occurrence from the m earliest-filled stores
        chosen_stores = sorted(filled,
                               key=lambda store: store.items[0].end)[:self.m]
        combined: Occurrence | None = None
        for store in chosen_stores:
            occurrence = store.items[0]
            combined = occurrence if combined is None else _combine(
                combined, occurrence)
            if combined is None:
                return None
        for store in chosen_stores:
            del store.items[0]
        return combined

    def poll(self, now: float) -> list[Occurrence]:
        return []

    def reset(self) -> None:
        for child in self.children:
            child.reset()
        for store in self._stores:
            store.clear()

    def variables(self) -> set[str]:
        names: set[str] = set()
        for child in self.children:
            names |= child.variables()
        return names


class Not(Detector):
    """NOT(B)[A, C]: C after A with no B strictly in between."""

    def __init__(self, initiator: Detector, forbidden: Detector,
                 terminator: Detector, context: str = "unrestricted") -> None:
        self.initiator = initiator
        self.forbidden = forbidden
        self.terminator = terminator
        self._store = _Store(context)
        self._forbidden_times: list[float] = []

    def feed(self, event: Event) -> list[Occurrence]:
        started = self.initiator.feed(event)
        blocked = self.forbidden.feed(event)
        finished = self.terminator.feed(event)
        for occurrence in blocked:
            self._forbidden_times.append(occurrence.end)
        out: list[Occurrence] = []
        for occurrence in finished:
            def clean(initiator_occurrence: Occurrence,
                      _terminator=occurrence) -> bool:
                return not any(initiator_occurrence.end < t < _terminator.start
                               for t in self._forbidden_times)
            out.extend(self._store.pair_with(
                occurrence,
                eligible=lambda init, _t=occurrence: init.end < _t.start
                and clean(init)))
        for occurrence in started:
            self._store.add(occurrence)
        return out

    def reset(self) -> None:
        self.initiator.reset()
        self.forbidden.reset()
        self.terminator.reset()
        self._store.clear()
        self._forbidden_times.clear()

    def variables(self) -> set[str]:
        return self.initiator.variables() | self.terminator.variables()


class Aperiodic(Detector):
    """A(B)[A, C]: signal each B inside an open A..C window."""

    def __init__(self, opener: Detector, body: Detector,
                 closer: Detector) -> None:
        self.opener = opener
        self.body = body
        self.closer = closer
        self._windows: list[Occurrence] = []

    def feed(self, event: Event) -> list[Occurrence]:
        opened = self.opener.feed(event)
        inner = self.body.feed(event)
        closed = self.closer.feed(event)
        out: list[Occurrence] = []
        for occurrence in inner:
            for window in self._windows:
                if window.end < occurrence.start:
                    combined = _combine(window, occurrence)
                    if combined:
                        out.append(combined)
        if closed:
            close_start = min(occurrence.start for occurrence in closed)
            self._windows = [window for window in self._windows
                             if window.end >= close_start]
        self._windows.extend(opened)
        return out

    def reset(self) -> None:
        self.opener.reset()
        self.body.reset()
        self.closer.reset()
        self._windows.clear()

    def variables(self) -> set[str]:
        return self.opener.variables() | self.body.variables()


class AperiodicCumulative(Detector):
    """A*(B)[A, C]: accumulate the Bs inside an A..C window and signal
    once, at C, with the union of their bindings (SNOOP's A* operator)."""

    def __init__(self, opener: Detector, body: Detector,
                 closer: Detector) -> None:
        self.opener = opener
        self.body = body
        self.closer = closer
        self._windows: list[tuple[Occurrence, list[Occurrence]]] = []

    def feed(self, event: Event) -> list[Occurrence]:
        opened = self.opener.feed(event)
        inner = self.body.feed(event)
        closed = self.closer.feed(event)
        for occurrence in inner:
            for window, collected in self._windows:
                if window.end < occurrence.start:
                    collected.append(occurrence)
        out: list[Occurrence] = []
        if closed:
            close_start = min(occurrence.start for occurrence in closed)
            remaining = []
            for window, collected in self._windows:
                if window.end >= close_start:
                    remaining.append((window, collected))
                    continue
                for closing in closed:
                    if not collected:
                        combined = _combine(window, closing)
                    else:
                        merged = _merge_all(collected)
                        combined = _combine(window, merged)
                        if combined is not None:
                            combined = _combine(combined, closing)
                    if combined is not None:
                        out.append(combined)
            self._windows = remaining
        self._windows.extend((occurrence, []) for occurrence in opened)
        return out

    def reset(self) -> None:
        self.opener.reset()
        self.body.reset()
        self.closer.reset()
        self._windows.clear()

    def variables(self) -> set[str]:
        return (self.opener.variables() | self.body.variables()
                | self.closer.variables())


class Periodic(Detector):
    """P(A, dt, C): fire every ``dt`` time units inside an A..C window."""

    def __init__(self, opener: Detector, period: float,
                 closer: Detector) -> None:
        if period <= 0:
            raise SnoopError("period must be positive")
        self.opener = opener
        self.period = period
        self.closer = closer
        self._windows: list[tuple[Occurrence, float]] = []  # (window, next)

    def feed(self, event: Event) -> list[Occurrence]:
        out = self.poll(event.timestamp)
        opened = self.opener.feed(event)
        closed = self.closer.feed(event)
        if closed:
            close_start = min(occurrence.start for occurrence in closed)
            self._windows = [(window, next_fire)
                             for window, next_fire in self._windows
                             if window.end >= close_start]
        for occurrence in opened:
            self._windows.append((occurrence, occurrence.end + self.period))
        return out

    def poll(self, now: float) -> list[Occurrence]:
        out: list[Occurrence] = []
        updated: list[tuple[Occurrence, float]] = []
        for window, next_fire in self._windows:
            while next_fire <= now:
                out.append(Occurrence(window.start, next_fire,
                                      window.bindings, window.constituents))
                next_fire += self.period
            updated.append((window, next_fire))
        self._windows = updated
        return out

    def reset(self) -> None:
        self.opener.reset()
        self.closer.reset()
        self._windows.clear()

    def variables(self) -> set[str]:
        return self.opener.variables()
