"""An XChange-style composite event language.

The paper names XChange [BP05] as a second usable event-component
language.  This module implements its flavour of event queries:
*simulation-unification-style* deep XML patterns combined with ``and`` /
``or`` / ``seq`` / ``without`` over the event stream, optionally limited
to a time window — deliberately different in style from the SNOOP
operator algebra so the framework demonstrably hosts *heterogeneous*
event languages behind one Generic Request Handler.

Like every event language in the framework, detections are
:class:`~repro.events.base.Occurrence` values carrying a relation of
variable bindings (``{Name}`` placeholders in patterns).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from .atomic import AtomicPattern
from .base import Event, Occurrence
from .snoop import Detector, _combine

__all__ = ["EventQuery", "PatternQuery", "AndQuery", "OrQuery", "SeqQuery",
           "WithoutQuery", "XChangeError"]


class XChangeError(ValueError):
    """Raised for invalid query composition."""


class EventQuery(Detector):
    """Base class of XChange-style event queries (detector interface)."""


class PatternQuery(EventQuery):
    """A deep XML pattern matched against single events (partial match:
    extra attributes/children in the event are allowed)."""

    def __init__(self, pattern: AtomicPattern) -> None:
        self.pattern = pattern

    def feed(self, event: Event) -> list[Occurrence]:
        occurrence = self.pattern.match(event)
        return [occurrence] if occurrence else []

    def reset(self) -> None:
        pass

    def variables(self) -> set[str]:
        return self.pattern.variables()


class OrQuery(EventQuery):
    """Any of the sub-queries."""

    def __init__(self, queries: Sequence[EventQuery]) -> None:
        if not queries:
            raise XChangeError("or {} needs at least one sub-query")
        self.queries = list(queries)

    def feed(self, event: Event) -> list[Occurrence]:
        out: list[Occurrence] = []
        for sub_query in self.queries:
            out.extend(sub_query.feed(event))
        return out

    def reset(self) -> None:
        for sub_query in self.queries:
            sub_query.reset()

    def variables(self) -> set[str]:
        names: set[str] = set()
        for sub_query in self.queries:
            names |= sub_query.variables()
        return names


class _Conjunction(EventQuery):
    """Shared machinery of ``and`` / ``seq``: all sub-queries must match
    distinct events, with consistent bindings, optionally within a window."""

    ordered = False

    def __init__(self, queries: Sequence[EventQuery],
                 within: float | None = None) -> None:
        if len(queries) < 2:
            raise XChangeError("conjunction needs at least two sub-queries")
        if within is not None and within <= 0:
            raise XChangeError("window length must be positive")
        self.queries = list(queries)
        self.within = within
        self._partials: list[list[Occurrence]] = [[] for _ in queries]
        self._emitted: set[tuple[int, ...]] = set()

    def feed(self, event: Event) -> list[Occurrence]:
        fresh: list[tuple[int, Occurrence]] = []
        for index, sub_query in enumerate(self.queries):
            for occurrence in sub_query.feed(event):
                self._partials[index].append(occurrence)
                fresh.append((index, occurrence))
        out: list[Occurrence] = []
        for index, occurrence in fresh:
            out.extend(self._complete(index, occurrence))
        return out

    def _complete(self, fresh_index: int,
                  fresh_occurrence: Occurrence) -> list[Occurrence]:
        pools = [self._partials[i] if i != fresh_index else [fresh_occurrence]
                 for i in range(len(self.queries))]
        detections: list[Occurrence] = []
        for combination in itertools.product(*pools):
            key = tuple(sorted(event.sequence
                               for occurrence in combination
                               for event in occurrence.constituents))
            if len(set(key)) < len(key) or key in self._emitted:
                continue  # events must be distinct; dedupe combinations
            if self.ordered and any(
                    combination[i].end >= combination[i + 1].start
                    for i in range(len(combination) - 1)):
                continue
            start = min(occurrence.start for occurrence in combination)
            end = max(occurrence.end for occurrence in combination)
            if self.within is not None and end - start > self.within:
                continue
            combined: Occurrence | None = combination[0]
            for occurrence in combination[1:]:
                combined = _combine(combined, occurrence)
                if combined is None:
                    break
            if combined is not None:
                self._emitted.add(key)
                detections.append(combined)
        return detections

    def reset(self) -> None:
        for sub_query in self.queries:
            sub_query.reset()
        self._partials = [[] for _ in self.queries]
        self._emitted.clear()

    def variables(self) -> set[str]:
        names: set[str] = set()
        for sub_query in self.queries:
            names |= sub_query.variables()
        return names


class AndQuery(_Conjunction):
    """All sub-queries, in any order."""

    ordered = False


class SeqQuery(_Conjunction):
    """All sub-queries, in the given order."""

    ordered = True


class WithoutQuery(EventQuery):
    """A positive query with an exclusion: detections of ``positive`` are
    suppressed when a ``without`` match occurred inside their span."""

    def __init__(self, positive: EventQuery, without: EventQuery) -> None:
        self.positive = positive
        self.without = without
        self._excluded_times: list[float] = []

    def feed(self, event: Event) -> list[Occurrence]:
        for occurrence in self.without.feed(event):
            self._excluded_times.append(occurrence.end)
        out = []
        for occurrence in self.positive.feed(event):
            if not any(occurrence.start <= t <= occurrence.end
                       for t in self._excluded_times):
                out.append(occurrence)
        return out

    def reset(self) -> None:
        self.positive.reset()
        self.without.reset()
        self._excluded_times.clear()

    def variables(self) -> set[str]:
        return self.positive.variables()
