"""Atomic event patterns.

The simplest event language of the framework (Fig. 5: the "Atomic Event
Matcher").  A pattern is written as a domain-markup element whose
attribute values are either literals (must match exactly) or variable
references ``{Name}`` (bind on match)::

    <travel:booking person="{Person}" from="{From}" to="{To}"/>

Matching an event yields a one-tuple relation of variable bindings — the
starting point of rule evaluation (Fig. 6).  Child elements of the
pattern are matched structurally against children of the event (each
pattern child must match some event child); their text may also be a
variable reference.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..bindings import Binding, BindingError, Relation
from ..xmlmodel import Element, QName
from .base import Event, Occurrence

__all__ = ["AtomicPattern", "PatternError"]

_VARIABLE_RE = re.compile(r"^\{([A-Za-z_][A-Za-z0-9_]*)\}$")


class PatternError(ValueError):
    """Raised for malformed atomic patterns."""


def _classify(value: str) -> tuple[str, str]:
    """('var', name) for ``{Name}``, else ('lit', value)."""
    match = _VARIABLE_RE.match(value.strip())
    if match:
        return ("var", match.group(1))
    return ("lit", value)


@dataclass(frozen=True)
class AtomicPattern:
    """An atomic event pattern over one domain-event element."""

    template: Element
    bind_event_to: str | None = None

    def variables(self) -> set[str]:
        """All variable names the pattern can bind."""
        names: set[str] = set()
        if self.bind_event_to:
            names.add(self.bind_event_to)

        def walk(element: Element) -> None:
            for value in element.attributes.values():
                kind, payload = _classify(value)
                if kind == "var":
                    names.add(payload)
            has_child_elements = False
            for child in element.elements():
                has_child_elements = True
                walk(child)
            if not has_child_elements:
                kind, payload = _classify(element.text())
                if kind == "var":
                    names.add(payload)

        walk(self.template)
        return names

    def match(self, event: Event) -> Occurrence | None:
        """Match one event; an occurrence with one binding tuple, or None."""
        binding = _match_element(self.template, event.payload, Binding())
        if binding is None:
            return None
        if self.bind_event_to:
            try:
                binding = binding.extended(self.bind_event_to,
                                           event.payload.copy())
            except BindingError:
                return None
        return Occurrence(event.timestamp, event.timestamp,
                          Relation([binding]), (event,))


def _match_element(pattern: Element, target: Element,
                   binding: Binding) -> Binding | None:
    if pattern.name != target.name:
        return None
    for name, value in pattern.attributes.items():
        actual = target.attributes.get(name)
        if actual is None:
            return None
        binding = _match_text(value, actual, binding)
        if binding is None:
            return None
    pattern_children = list(pattern.elements())
    if pattern_children:
        # simulation-style: each pattern child must match a distinct
        # target child (order-insensitive)
        return _match_children(pattern_children, list(target.elements()),
                               binding)
    text = pattern.text().strip()
    if text:
        return _match_text(text, target.text().strip(), binding)
    return binding


def _match_children(patterns: list[Element], targets: list[Element],
                    binding: Binding) -> Binding | None:
    if not patterns:
        return binding
    head, *rest = patterns
    for index, target in enumerate(targets):
        extended = _match_element(head, target, binding)
        if extended is None:
            continue
        remaining = targets[:index] + targets[index + 1:]
        final = _match_children(rest, remaining, extended)
        if final is not None:
            return final
    return None


def _match_text(pattern_value: str, actual: str,
                binding: Binding) -> Binding | None:
    kind, payload = _classify(pattern_value)
    if kind == "var":
        try:
            return binding.extended(payload, actual)
        except BindingError:
            return None
    return binding if payload == actual else None
