"""XML markup ⇄ event-language expressions.

Rule event components carry their language as the namespace of their
content (Sec. 4.2)::

    <eca:event>
      <snoop:seq xmlns:snoop="..." context="chronicle">
        <travel:booking person="{P}" to="{City}"/>
        <travel:delayed flight="{F}" person="{P}"/>
      </snoop:seq>
    </eca:event>

Elements outside a known event-language namespace are atomic patterns of
the application domain (Fig. 2's hierarchy: composite operators embed
domain atomic events).  An ``eca:bind`` attribute on an atomic pattern
binds the whole matched event to a variable.
"""

from __future__ import annotations

from ..xmlmodel import ECA_NS, Element, QName
from .atomic import AtomicPattern, PatternError
from .snoop import (And, Any, Aperiodic, AperiodicCumulative, Atomic,
                    Detector, Not, Or, Periodic, Seq, SnoopError)
from .xchange import (AndQuery, EventQuery, OrQuery, PatternQuery, SeqQuery,
                      WithoutQuery, XChangeError)

__all__ = ["SNOOP_NS", "XCHANGE_NS", "ATOMIC_NS", "parse_event_component",
           "parse_snoop", "parse_xchange", "parse_atomic",
           "EventMarkupError"]

SNOOP_NS = "http://www.semwebtech.org/languages/2006/snoop"
XCHANGE_NS = "http://www.semwebtech.org/languages/2006/xchange"
#: Pseudo language URI for bare atomic patterns (the Atomic Event Matcher).
ATOMIC_NS = "http://www.semwebtech.org/languages/2006/atomic-events"

_BIND = QName(ECA_NS, "bind")


class EventMarkupError(ValueError):
    """Raised on malformed event-component markup."""


def parse_atomic(element: Element) -> AtomicPattern:
    """Parse a domain element into an atomic pattern.

    The template is copied; an ``eca:bind="Var"`` attribute is stripped
    from the copy and binds the matched event itself to ``Var``.
    """
    template = element.copy()
    bind_to = template.attributes.pop(_BIND, None)
    return AtomicPattern(template, bind_event_to=bind_to)


def _context_of(element: Element) -> str:
    return element.get("context", "unrestricted")


def parse_snoop(element: Element) -> Detector:
    """Parse a SNOOP operator tree (or a bare atomic pattern)."""
    if element.name.uri != SNOOP_NS:
        return Atomic(parse_atomic(element))
    children = [parse_snoop(child) for child in element.elements()]
    operator = element.name.local
    try:
        if operator == "or":
            _need(element, children, at_least=1)
            return Or(children)
        if operator == "and":
            _need(element, children, exactly=2)
            return And(children[0], children[1], _context_of(element))
        if operator == "seq":
            _need(element, children, at_least=2)
            detector = children[0]
            for child in children[1:]:
                detector = Seq(detector, child, _context_of(element))
            return detector
        if operator == "any":
            _need(element, children, at_least=1)
            m_raw = element.get("m")
            if m_raw is None:
                raise EventMarkupError("snoop:any requires attribute m")
            return Any(int(m_raw), children, element.get("context",
                                                         "chronicle"))
        if operator == "not":
            _need(element, children, exactly=3)
            return Not(children[0], children[1], children[2],
                       _context_of(element))
        if operator == "aperiodic":
            _need(element, children, exactly=3)
            if element.get("cumulative") == "true":
                return AperiodicCumulative(children[0], children[1],
                                           children[2])
            return Aperiodic(children[0], children[1], children[2])
        if operator == "periodic":
            _need(element, children, exactly=2)
            period_raw = element.get("period")
            if period_raw is None:
                raise EventMarkupError(
                    "snoop:periodic requires attribute period")
            return Periodic(children[0], float(period_raw), children[1])
    except SnoopError as exc:
        raise EventMarkupError(str(exc)) from exc
    raise EventMarkupError(f"unknown snoop operator {operator!r}")


def parse_xchange(element: Element) -> EventQuery:
    """Parse an XChange-style event query (or a bare atomic pattern)."""
    if element.name.uri != XCHANGE_NS:
        return PatternQuery(parse_atomic(element))
    children = [parse_xchange(child) for child in element.elements()]
    operator = element.name.local
    within_raw = element.get("within")
    within = float(within_raw) if within_raw is not None else None
    try:
        if operator == "or":
            return OrQuery(children)
        if operator == "and":
            return AndQuery(children, within=within)
        if operator == "seq":
            return SeqQuery(children, within=within)
        if operator == "without":
            _need(element, children, exactly=2)
            return WithoutQuery(children[0], children[1])
    except XChangeError as exc:
        raise EventMarkupError(str(exc)) from exc
    raise EventMarkupError(f"unknown xchange operator {operator!r}")


def parse_event_component(content: Element) -> Detector:
    """Dispatch on the content's namespace to the right event language.

    This mirrors what the Generic Request Handler does when it inspects
    the namespace declaration of an event component (Sec. 4.4).
    """
    uri = content.name.uri
    if uri == SNOOP_NS:
        return parse_snoop(content)
    if uri == XCHANGE_NS:
        return parse_xchange(content)
    return Atomic(parse_atomic(content))


def _need(element: Element, children: list, exactly: int | None = None,
          at_least: int | None = None) -> None:
    if exactly is not None and len(children) != exactly:
        raise EventMarkupError(
            f"{element.name.local} requires exactly {exactly} children, "
            f"got {len(children)}")
    if at_least is not None and len(children) < at_least:
        raise EventMarkupError(
            f"{element.name.local} requires at least {at_least} children, "
            f"got {len(children)}")
