"""The Generic Request Handler layer (Sec. 4.4): registry, messages,
component specs and the mediator itself."""

from .component import ComponentSpec, opaque_placeholders
from .handler import GenericRequestHandler, GRHError
from .messages import (Detection, MessageError, REQUEST_KINDS, Request,
                       dead_letter_to_xml, detection_to_xml, error_message,
                       error_text, is_error, ok_message, request_to_xml,
                       xml_to_detection, xml_to_request)
from .registry import (DOWN, ECA_ONTOLOGY, FAMILIES, HEALTHY, HealthProber,
                       LanguageDescriptor, LanguageRegistry,
                       RegistryError, ReplicaHealthBoard, SUSPECT)
from .resilience import (ActionExecutionError, BreakerPolicy, CircuitBreaker,
                         CircuitOpenError, DeadLetter, DeadLetterQueue,
                         HedgePolicy, ResilienceManager, RetryPolicy)

__all__ = [
    "GenericRequestHandler", "GRHError",
    "ComponentSpec", "opaque_placeholders",
    "LanguageDescriptor", "LanguageRegistry", "RegistryError", "FAMILIES",
    "ECA_ONTOLOGY",
    "HEALTHY", "SUSPECT", "DOWN", "ReplicaHealthBoard", "HealthProber",
    "Request", "Detection", "MessageError", "REQUEST_KINDS",
    "request_to_xml", "xml_to_request", "detection_to_xml",
    "xml_to_detection", "ok_message", "error_message", "is_error",
    "error_text", "dead_letter_to_xml",
    "RetryPolicy", "BreakerPolicy", "HedgePolicy", "CircuitBreaker",
    "CircuitOpenError", "ActionExecutionError", "DeadLetter",
    "DeadLetterQueue", "ResilienceManager",
]
