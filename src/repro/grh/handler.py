"""The Generic Request Handler (Sec. 4.4 of the paper).

The GRH "acts as a mediator for dealing with remote services.  It
inspects the namespace declaration of the components (or the language
attribute in case of opaque fragments) for determining an appropriate
language processor and forwards the request to it in an appropriate
form."  Concretely:

* **framework-aware** services receive the component together with the
  input variable bindings as one ``log:request`` and answer with
  ``log:answers`` (Fig. 8);
* **framework-unaware** services receive one plain query string *per
  input tuple*, with ``{Var}`` placeholders substituted by the tuple's
  values; the GRH binds each raw result to the surrounding
  ``eca:variable`` (Fig. 9);
* a framework-unaware service whose query happens to *generate*
  ``log:answers`` markup ("faking" a framework-aware service, Fig. 10)
  is recognized by the shape of its response and treated accordingly.

The GRH also relays event detections from event services back to the ECA
engine (Fig. 6 (1)).
"""

from __future__ import annotations

from typing import Callable

from ..bindings import (Binding, BindingError, Relation, answer_to_binding,
                        answers_to_relation, results_from_answer,
                        value_to_text)
from ..obs.attribution import pop_wait_scope, push_wait_scope
from ..obs.metrics import Counter
from ..obs.trace import (SPANS_QNAME, pop_span_sink, push_span_sink,
                         xml_to_span_dicts)
from ..xmlmodel import Element, LOG_NS, QName, XMLSyntaxError, parse
from .component import ComponentSpec
from .messages import (Detection, MessageError, Request, detection_to_xml,
                       error_text, is_error, request_to_xml, xml_to_detection)
from .registry import (HealthProber, LanguageDescriptor, LanguageRegistry,
                       RegistryError)
from .resilience import (ActionExecutionError, DeadLetter, GRHError,
                         ResilienceManager, ServiceReportedError,
                         TransientServiceFailure)

__all__ = ["GenericRequestHandler", "GRHError"]

_ANSWERS = QName(LOG_NS, "answers")
_ANSWER = QName(LOG_NS, "answer")
_TRACEPARENT_ATTR = QName(None, "traceparent")


def _finish_request_span(obs, span, kind, scope, status="ok") -> None:
    """Stamp the dispatch's accumulated waits onto the request span and
    finish it.

    The wait attributes (``batch_park``/``pool_wait``/``retry_backoff``/
    ``hedge_wait``) must land *before* ``tracer.finish`` — exporters
    (JSONL, the critical-path analyzer) read the attributes at export
    time, and success and error paths alike need the budget
    (PROTOCOL.md §14).
    """
    if scope is not None:
        for kind_key, seconds in scope.items():
            span.set_attribute(kind_key, seconds)
    obs.tracer.finish(span, status=status)
    obs.observe_request(kind, span)


class GenericRequestHandler:
    """Mediator between the ECA engine and component-language services."""

    def __init__(self, registry: LanguageRegistry, transport,
                 cache_opaque_requests: bool = False,
                 resilience: ResilienceManager | None = None) -> None:
        self.registry = registry
        self.transport = transport
        #: retry policies, per-endpoint circuit breakers and the dead
        #: letter queue; the default manager performs no retries and
        #: opens a breaker after 5 consecutive transport failures
        self.resilience = resilience if resilience is not None \
            else ResilienceManager()
        #: the registry's replica health board feeds the manager's
        #: routing decisions (PROTOCOL.md §12)
        self.resilience.health = registry.health
        self._detection_callbacks: list[Callable[[Detection], None]] = []
        self._endpoints: dict[str, tuple[str, ...]] = {}
        #: background ``/healthz`` prober, started lazily when the first
        #: multi-replica HTTP language registers; stopped by
        #: :meth:`close` (engine shutdown)
        self.health_prober: HealthProber | None = None
        self.health_probe_interval = 1.0
        #: set by :meth:`close`; keeps late replica registrations from
        #: restarting the prober thread after engine shutdown
        self._closed = False
        #: lock-protected counters (repro.obs.metrics.Counter): dispatch
        #: may be driven from several threads at once, and a plain
        #: ``int += 1`` loses increments under contention
        self._requests = Counter()
        self._cache_hits = Counter()
        #: a :class:`repro.obs.Observability`, installed by the engine;
        #: ``None`` (the default) means no tracing and no traceparent
        #: stamping — the seed behavior
        self.observability = None
        #: Memoize identical substituted queries to unaware services.
        #: Off by default: it assumes the remote data does not change
        #: within a rule evaluation (safe for the per-instance lifetime,
        #: but the cache lives for the GRH's lifetime — enable only for
        #: effectively read-only sources).
        self.cache_opaque_requests = cache_opaque_requests
        self._opaque_cache: dict[tuple[str, str], str] = {}
        #: per-address memo of transport.dispatches_inline(): an inline
        #: (same-thread) service sees the span sink, so trace context
        #: need not be stamped into its envelope
        self._inline_cache: dict[str, bool] = {}
        #: a :class:`repro.runtime.DispatchBatcher`, installed by a
        #: concurrent runtime built with ``batching=True``; ``None``
        #: (the default) sends every request on its own round-trip.
        #: When present, ``query``/``test`` requests to non-inline,
        #: batch-capable addresses coalesce into ``log:batch``
        #: envelopes (PROTOCOL.md §10)
        self.batcher = None

    @property
    def request_count(self) -> int:
        """Requests mediated so far (thread-safe counter)."""
        return self._requests.value

    @property
    def cache_hits(self) -> int:
        """Opaque-cache hits so far (thread-safe counter)."""
        return self._cache_hits.value

    def clear_opaque_cache(self) -> None:
        self._opaque_cache.clear()

    # -- service-side wiring -------------------------------------------------

    def add_service(self, descriptor: LanguageDescriptor, service) -> None:
        """Register a language and bind its service to the transport.

        ``service`` exposes ``handle(request_element) -> response_element``
        for framework-aware languages, or ``execute(query_text) -> str``
        for framework-unaware ones.
        """
        self.registry.register(descriptor)
        address = descriptor.endpoint or f"svc:{descriptor.name}"
        if descriptor.framework_aware:
            self.transport.bind(address, service.handle)
        else:
            self.transport.bind_opaque(address, service.execute)
        self._endpoints[descriptor.uri] = (address,)

    def add_remote_language(self, descriptor: LanguageDescriptor,
                            address: str | None = None) -> None:
        """Register a language whose service is already reachable at an
        address (e.g. an HTTP URL) without binding anything locally.

        A descriptor carrying a ``replicas`` tuple registers the whole
        replica set; the explicit ``address`` argument remains the
        back-compatible single-replica form (PROTOCOL.md §12).
        """
        self.registry.register(descriptor)
        if descriptor.replicas:
            addresses = descriptor.replicas
        else:
            endpoint = address or descriptor.endpoint
            if endpoint is None:
                raise GRHError(f"no endpoint known for {descriptor.name!r}")
            addresses = (endpoint,)
        self._endpoints[descriptor.uri] = addresses
        if len(addresses) > 1:
            for replica in addresses:
                self.registry.health.track(replica)
            if any(replica.startswith(("http://", "https://"))
                   for replica in addresses):
                self.ensure_health_prober()

    def set_replicas(self, uri: str, addresses) -> None:
        """Re-point a registered language at a new replica set.

        Replica churn (restarts on new ports) flows through here: stale
        addresses are evicted from the breaker/stats maps and the health
        board, so those structures stay bounded by what is registered.
        """
        addresses = tuple(addresses)
        if not addresses:
            raise GRHError("a language needs at least one replica")
        self.registry.lookup(uri)  # raises RegistryError when unknown
        self._endpoints[uri] = addresses
        self._inline_cache.clear()
        if len(addresses) > 1:
            for replica in addresses:
                self.registry.health.track(replica)
        self.resilience.prune(self.active_addresses())

    def active_addresses(self) -> set[str]:
        """Every address currently registered across all languages."""
        return {address for addresses in self._endpoints.values()
                for address in addresses}

    def _addresses_of(self,
                      descriptor: LanguageDescriptor) -> tuple[str, ...]:
        addresses = self._endpoints.get(descriptor.uri) \
            or descriptor.addresses
        if not addresses:
            raise GRHError(
                f"language {descriptor.name!r} has no service endpoint")
        return addresses

    def _address_of(self, descriptor: LanguageDescriptor) -> str:
        return self._addresses_of(descriptor)[0]

    # -- availability plumbing (PROTOCOL.md §12) -----------------------------

    def ensure_health_prober(self) -> HealthProber:
        """Create and start the background ``/healthz`` prober
        (idempotent; after :meth:`close` the prober is returned but not
        started — probing stays off once the engine has shut down)."""
        if self.health_prober is None:
            self.health_prober = HealthProber(
                self.registry.health, self._probed_addresses,
                interval=self.health_probe_interval)
        if not self._closed:
            self.health_prober.start()
        return self.health_prober

    def _probed_addresses(self) -> list[str]:
        """Only replicated languages are probed — a single-address
        language has no routing choice for the probe to inform."""
        return [address for addresses in self._endpoints.values()
                if len(addresses) > 1 for address in addresses]

    def close(self) -> None:
        """Release background resources: the health prober, the hedge
        executor, and the transport's connection pools.  Synchronous
        dispatch keeps working afterwards (pools rebuild on demand;
        hedging and probing stay off)."""
        self._closed = True
        if self.health_prober is not None:
            self.health_prober.stop()
        self.resilience.close()
        closer = getattr(self.transport, "close", None)
        if closer is not None:
            closer()

    def notify(self, detection_xml: Element) -> None:
        """Entry point for event services signalling a detection."""
        detection = xml_to_detection(detection_xml)
        for callback in self._detection_callbacks:
            callback(detection)

    def on_detection(self, callback: Callable[[Detection], None]) -> None:
        """The ECA engine subscribes to detections here."""
        self._detection_callbacks.append(callback)

    # -- dispatch ------------------------------------------------------------------

    def _descriptor_for(self, spec: ComponentSpec) -> LanguageDescriptor:
        # namespace URI for markup components; opaque components may name
        # their language with a plain ``language="name"`` attribute
        try:
            return self.registry.lookup(spec.language)
        except RegistryError:
            pass
        try:
            return self.registry.lookup_by_name(spec.language)
        except RegistryError as exc:
            raise GRHError(str(exc)) from exc

    def _send(self, descriptor: LanguageDescriptor,
              request: Request) -> Element:
        self._requests.inc()
        addresses = self._addresses_of(descriptor)
        obs = self.observability
        span = None
        payload = request_to_xml(request)
        # the inline memo keys on the primary address: a replicated
        # language is remote (never inline), a single-address one keeps
        # the seed behavior
        inline = self._inline_cache.get(addresses[0])
        if inline is None:
            inline = self._probe_inline(addresses[0])
        inline = inline and len(addresses) == 1
        if obs is not None:
            # the request span's identity rides in the envelope; an
            # observability-aware service across a process boundary
            # answers with a log:spans annotation that _strip_spans()
            # adopts into this trace.  stamped onto the payload element
            # directly — the Request object itself needs no copy
            span = obs.tracer.begin("grh.request",
                                    {"kind": request.kind,
                                     "component": request.component_id,
                                     "language": descriptor.name})
            if not inline and span.traceparent is not None:
                payload.attributes[_TRACEPARENT_ATTR] = span.traceparent
        timeout = self.resilience.timeout_for(descriptor)

        def attempt_once(address: str) -> Element:
            # a sink catches server-side span records from co-located
            # services without them riding the serialized response; a
            # real remote service annotates the response instead and is
            # handled by _strip_spans below.  an unsampled request span
            # pushes no sink at all: the service sees no tracing caller
            # and skips capture, mirroring how remote services skip it
            # on the traceparent ``-00`` flags (PROTOCOL.md §9)
            sink = push_span_sink() if obs is not None and span.sampled \
                else None
            try:
                if timeout is not None:
                    response = self.transport.send(address, payload,
                                                   timeout=timeout)
                else:
                    response = self.transport.send(address, payload)
            except GRHError:
                raise
            except Exception as exc:
                if getattr(exc, "service_reported", False):
                    # an HTTP error status from a *live* service (the
                    # transport taxonomy of PROTOCOL.md §11): the
                    # service's own report — deterministic, so not
                    # retried by default and never breaker-counted
                    raise ServiceReportedError(str(exc)) from exc
                # a crash on the other side of the transport is a service
                # failure: transient, retryable, counted by the breaker
                raise TransientServiceFailure(str(exc)) from exc
            finally:
                if sink is not None:
                    pop_span_sink()
            if obs is not None:
                if sink:
                    obs.tracer.adopt_children(span, sink)
                self._strip_spans(response, obs)
            if is_error(response):
                # a clean log:error from a healthy service: not transient
                raise ServiceReportedError(error_text(response))
            return response

        batcher = self.batcher
        batched = (batcher is not None and not inline
                   and request.kind in ("query", "test")
                   and getattr(self.transport, "supports_batch",
                               None) is not None
                   and self.transport.supports_batch(addresses[0]))
        # failover is always safe for read-only kinds; an action may
        # only retarget when its dedup key makes re-dispatch exactly
        # once on the service side (PROTOCOL.md §12)
        read_only = request.kind in ("query", "test", "register-event",
                                     "unregister-event")
        failover_ok = read_only or request.dedup is not None
        # a wait scope collects where this dispatch blocked (batcher
        # park, pool acquisition, backoff, hedge race); the layers
        # below record into it and _finish_request_span copies the
        # totals onto the span for the critical-path analyzer
        scope = push_wait_scope() if span is not None else None
        try:
            try:
                if batched:
                    # read-only request under a concurrent runtime: park
                    # it with the batcher, which ships one log:batch per
                    # address/window through the same resilience path
                    # and fans the log:batchresults back per caller; the
                    # envelope's address is routed once, at submit time
                    result = batcher.submit(
                        self.resilience.route(addresses, descriptor),
                        descriptor, payload)
                    if obs is not None:
                        self._strip_spans(result, obs)
                else:
                    result = self.resilience.call_routed(
                        addresses, descriptor, attempt_once,
                        kind=request.kind, failover_ok=failover_ok,
                        hedge_ok=request.kind in ("query", "test"))
            except TransientServiceFailure as exc:
                if span is not None:
                    _log_dispatch_failure(obs, request.kind,
                                          descriptor.name, exc)
                    _finish_request_span(obs, span, request.kind, scope,
                                         status="error")
                raise GRHError(f"service {descriptor.name!r} unreachable "
                               f"or crashed: {exc}") from exc
            except ServiceReportedError as exc:
                if span is not None:
                    _log_dispatch_failure(obs, request.kind,
                                          descriptor.name, exc)
                    _finish_request_span(obs, span, request.kind, scope,
                                         status="error")
                raise GRHError(f"service {descriptor.name!r} reported: "
                               f"{exc}") from exc
            except GRHError as exc:
                if span is not None:
                    _log_dispatch_failure(obs, request.kind,
                                          descriptor.name, exc)
                    _finish_request_span(obs, span, request.kind, scope,
                                         status="error")
                raise
        finally:
            if scope is not None:
                pop_wait_scope()
        if span is not None:
            _finish_request_span(obs, span, request.kind, scope)
        return result

    def _probe_inline(self, address: str) -> bool:
        """Memoize whether ``address`` is dispatched synchronously on
        this thread (transport-declared).  Inline services read trace
        context from the span sink, so the envelope stays unstamped;
        everything else — or a transport with no opinion — gets the
        ``traceparent`` attribute."""
        probe = getattr(self.transport, "dispatches_inline", None)
        inline = bool(probe(address)) if probe is not None else False
        self._inline_cache[address] = inline
        return inline

    @staticmethod
    def _strip_spans(response: Element, obs) -> None:
        """Pop a ``log:spans`` annotation off a response and adopt its
        server-side spans into the local tracer.

        Services append the annotation last, so only the final child is
        inspected — no scan over (possibly large) answer lists.
        """
        children = response.children
        if not children:
            return
        last = children[-1]
        if not isinstance(last, Element) or last.name != SPANS_QNAME:
            return
        response.remove(last)
        for record in xml_to_span_dicts(last):
            obs.tracer.adopt(record)

    # -- event components (Figs. 5/6) ---------------------------------------------------

    def register_event_component(self, component_id: str,
                                 spec: ComponentSpec,
                                 idempotent: bool = False) -> None:
        """Route an event component to its detection service.

        With ``idempotent=True`` a service answering that the component
        id is *already registered* counts as success — recovery re-wires
        rules into services that survived the engine crash and still
        hold the registration (PROTOCOL.md §7).
        """
        if spec.family != "event":
            raise GRHError("not an event component")
        if spec.content is None:
            raise GRHError("event components cannot be opaque")
        descriptor = self._descriptor_for(spec)
        try:
            self._send(descriptor, Request("register-event", component_id,
                                           spec.content, Relation.unit()))
        except GRHError as exc:
            if idempotent and "already registered" in str(exc):
                return
            raise

    def unregister_event_component(self, component_id: str,
                                   spec: ComponentSpec) -> None:
        descriptor = self._descriptor_for(spec)
        self._send(descriptor, Request("unregister-event", component_id,
                                       spec.content, Relation.unit()))

    # -- query components (Figs. 7-10) ----------------------------------------------------

    def evaluate_query(self, component_id: str, spec: ComponentSpec,
                       bindings: Relation) -> Relation:
        """Evaluate one query component against its language service.

        Returns the *contribution* relation; the engine joins it with the
        rule instance's current bindings.
        """
        descriptor = self._descriptor_for(spec)
        if not descriptor.framework_aware:
            return self._evaluate_unaware(descriptor, spec, bindings)
        content = spec.content if spec.content is not None \
            else _opaque_element(spec)
        response = self._send(descriptor, Request("query", component_id,
                                                  content, bindings))
        return self._relation_from_answers(response, spec)

    def _relation_from_answers(self, response: Element,
                               spec: ComponentSpec) -> Relation:
        if response.name != _ANSWERS:
            raise GRHError(
                f"query service answered {response.name.clark}, expected "
                "log:answers")
        if spec.bind_to is None:
            try:
                return answers_to_relation(response)
            except Exception as exc:
                raise GRHError(f"malformed answers: {exc}") from exc
        tuples: list[Binding] = []
        for answer in response.findall(_ANSWER):
            try:
                base = answer_to_binding(answer)
                results = results_from_answer(answer)
            except Exception as exc:
                raise GRHError(f"malformed answer: {exc}") from exc
            for result in results:
                try:
                    tuples.append(base.extended(spec.bind_to, result))
                except BindingError:
                    continue  # inconsistent with an existing binding: drop
        return Relation(tuples)

    def _evaluate_unaware(self, descriptor: LanguageDescriptor,
                          spec: ComponentSpec,
                          bindings: Relation) -> Relation:
        """Fig. 9: one plain request per input tuple, values substituted."""
        if spec.opaque is None:
            raise GRHError(
                f"language {descriptor.name!r} is framework-unaware; its "
                "components must be opaque")
        out: list[Binding] = []
        addresses = self._addresses_of(descriptor)
        for binding in bindings:
            query = _substitute(spec.opaque, binding)
            if self.cache_opaque_requests:
                # cache key stays on the primary address: replicas serve
                # the same data, so one entry covers the set
                key = (addresses[0], query)
                if key in self._opaque_cache:
                    self._cache_hits.inc()
                    raw = self._opaque_cache[key]
                else:
                    self._requests.inc()
                    raw = self._fetch(descriptor, addresses, query)
                    self._opaque_cache[key] = raw
            else:
                self._requests.inc()
                raw = self._fetch(descriptor, addresses, query)
            out.extend(self._bind_raw_results(raw, binding, spec))
        return Relation(out)

    def _fetch(self, descriptor: LanguageDescriptor,
               addresses: tuple[str, ...], query: str) -> str:
        timeout = self.resilience.timeout_for(descriptor)
        obs = self.observability
        # framework-unaware services speak their own query language, not
        # the log: protocol — no envelope, so no traceparent to carry;
        # the round-trip is still measured client-side
        span = None
        if obs is not None:
            span = obs.tracer.begin("grh.fetch",
                                    {"language": descriptor.name})

        def attempt_once(address: str) -> str:
            try:
                if timeout is not None:
                    return self.transport.fetch(address, query,
                                                timeout=timeout)
                return self.transport.fetch(address, query)
            except GRHError:
                raise
            except Exception as exc:
                if getattr(exc, "service_reported", False):
                    # §11 taxonomy: error status from a live service
                    raise ServiceReportedError(str(exc)) from exc
                raise TransientServiceFailure(str(exc)) from exc

        scope = push_wait_scope() if span is not None else None
        try:
            try:
                result = self.resilience.call_routed(
                    addresses, descriptor, attempt_once, kind="fetch",
                    failover_ok=True, hedge_ok=True)
            except TransientServiceFailure as exc:
                if span is not None:
                    _log_dispatch_failure(obs, "fetch", descriptor.name,
                                          exc)
                    _finish_request_span(obs, span, "fetch", scope,
                                         status="error")
                raise GRHError(f"service {descriptor.name!r} unreachable "
                               f"or crashed: {exc}") from exc
            except ServiceReportedError as exc:
                if span is not None:
                    _log_dispatch_failure(obs, "fetch", descriptor.name,
                                          exc)
                    _finish_request_span(obs, span, "fetch", scope,
                                         status="error")
                raise GRHError(f"service {descriptor.name!r} reported: "
                               f"{exc}") from exc
            except GRHError as exc:
                if span is not None:
                    _log_dispatch_failure(obs, "fetch", descriptor.name,
                                          exc)
                    _finish_request_span(obs, span, "fetch", scope,
                                         status="error")
                raise
        finally:
            if scope is not None:
                pop_wait_scope()
        if span is not None:
            _finish_request_span(obs, span, "fetch", scope)
        return result

    def _bind_raw_results(self, raw: str, binding: Binding,
                          spec: ComponentSpec) -> list[Binding]:
        raw = raw.strip()
        parsed: Element | None = None
        if raw.startswith("<"):
            try:
                parsed = parse(f"<log:results xmlns:log='{LOG_NS}'>"
                               f"{raw}</log:results>")
            except XMLSyntaxError as exc:
                raise GRHError(f"unparseable service response: {exc}") from exc
        if parsed is not None:
            children = list(parsed.elements())
            # Fig. 10: the query generated a log:answers structure itself
            if len(children) == 1 and children[0].name == _ANSWERS:
                faked = self._relation_from_answers(children[0], spec)
                return [binding.merged(other) for other in faked
                        if binding.compatible(other)]
            if spec.bind_to is None:
                raise GRHError(
                    "framework-unaware results need an eca:variable wrapper "
                    "(or a log:answers-shaped response)")
            values = [child.copy() for child in children]
            if not children and parsed.text().strip():
                values = [parsed.text().strip()]
        else:
            if spec.bind_to is None:
                raise GRHError(
                    "framework-unaware results need an eca:variable wrapper")
            # strip each line: CRLF responses (HTTP services) would
            # otherwise bind values with a trailing \r that fail joins
            values = [stripped for line in raw.splitlines()
                      if (stripped := line.strip())]
        out = []
        for value in values:
            try:
                out.append(binding.extended(spec.bind_to, value))
            except BindingError:
                continue
        return out

    # -- test components ---------------------------------------------------------------------

    def evaluate_test(self, component_id: str, spec: ComponentSpec,
                      bindings: Relation) -> Relation:
        """Delegate a test component to its service; returns survivors."""
        descriptor = self._descriptor_for(spec)
        content = spec.content if spec.content is not None \
            else _opaque_element(spec)
        response = self._send(descriptor, Request("test", component_id,
                                                  content, bindings))
        if response.name != _ANSWERS:
            raise GRHError("test service must answer log:answers")
        return answers_to_relation(response)

    # -- action components (Sec. 4.5) ------------------------------------------------------------

    def execute_action(self, component_id: str, spec: ComponentSpec,
                       bindings: Relation, guard=None) -> int:
        """Execute the action once per tuple; returns the execution count.

        A mid-loop failure raises :class:`ActionExecutionError` carrying
        the count of tuples that *did* execute (so the engine's audit
        trail stays truthful) and parks the failed tuple plus every
        not-yet-attempted tuple in the dead letter queue for replay.

        ``guard`` is the durability layer's exactly-once hook: before
        anything is dispatched, ``guard.begin(tuples)`` journals every
        tuple's idempotency key in one intent record and returns the
        wire ``dedup`` key per tuple (``None`` marks a duplicate tuple,
        which is skipped — one effect per distinct tuple; it neither
        re-executes nor counts in the return value).
        """
        descriptor = self._descriptor_for(spec)
        content = spec.content if spec.content is not None \
            else _opaque_element(spec)
        count = 0
        tuples = list(bindings)
        dedups = guard.begin(tuples) if guard is not None else None
        for index, binding in enumerate(tuples):
            dedup = None
            if dedups is not None:
                dedup = dedups[index]
                if dedup is None:
                    continue
            try:
                self._send(descriptor, Request("action", component_id,
                                               content, Relation([binding]),
                                               dedup=dedup))
            except GRHError as exc:
                remaining = Relation(tuples[index:])
                self.resilience.dead_letters.append(DeadLetter(
                    kind="action", error=str(exc),
                    enqueued_at=self.resilience.clock(),
                    component_id=component_id, spec=spec, content=content,
                    bindings=remaining))
                observer = self.resilience.observer
                if observer is not None:
                    observer("dead_letter", component_id)
                raise ActionExecutionError(str(exc), executed=count,
                                           remaining=remaining) from exc
            count += 1
        return count

    # -- resilience surface --------------------------------------------------

    def dead_letter_detection(self, detection: Detection, error,
                              attempts: int = 1) -> None:
        """Park a detection whose rule instance failed, for replay via
        :meth:`repro.core.ECAEngine.replay_dead_letters`."""
        self.resilience.dead_letters.append(DeadLetter(
            kind="detection", error=str(error),
            enqueued_at=self.resilience.clock(), attempts=attempts,
            detection=detection))
        observer = self.resilience.observer
        if observer is not None:
            observer("dead_letter", detection.component_id)

    @property
    def stats(self) -> dict:
        """Mediation counters: requests, cache hits, plus the resilience
        layer's retries, breaker activity and dead letters."""
        return {"requests": self.request_count,
                "cache_hits": self.cache_hits,
                **self.resilience.snapshot()}


def _log_dispatch_failure(obs, kind: str, language: str, exc) -> None:
    """One structured record per failed GRH dispatch — emitted while the
    request span is still open, so the record carries its trace ids."""
    log = obs.log
    if log is not None:
        log.warning("grh.request.failed", kind=kind, language=language,
                    error=str(exc))


def _opaque_element(spec: ComponentSpec) -> Element:
    """Wrap opaque text for transmission to a framework-aware service."""
    from ..xmlmodel import ECA_NS, Text
    element = Element(QName(ECA_NS, "opaque"),
                      {QName(None, "language"): spec.language})
    element.append(Text(spec.opaque or ""))
    return element


def _substitute(text: str, binding: Binding) -> str:
    from .component import _PLACEHOLDER_RE

    def replace(match):
        name = match.group(1)
        if name not in binding:
            raise GRHError(f"opaque component uses unbound variable "
                           f"{name!r}")
        return value_to_text(binding[name])

    return _PLACEHOLDER_RE.sub(replace, text)
