"""Component specifications — the unit of work the GRH dispatches on.

A rule component, as the GRH sees it: its family, the URI of its
language, and either language markup (``content``) or an opaque string
(``opaque``, Sec. 4.3).  ``bind_to`` is set when the component was
wrapped in ``<eca:variable name=...>`` — the functional-result binding of
Sec. 3/Fig. 8.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..xmlmodel import Element

__all__ = ["ComponentSpec", "opaque_placeholders"]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


def opaque_placeholders(text: str) -> set[str]:
    """The ``{Var}`` input variables of an opaque component (Fig. 9:
    "Variables in the query string are replaced by their values")."""
    return set(_PLACEHOLDER_RE.findall(text))


@dataclass(frozen=True)
class ComponentSpec:
    """One rule component, ready for dispatch."""

    family: str                  # 'event' | 'query' | 'test' | 'action'
    language: str                # language URI (resolved for opaque too)
    content: Element | None = None
    opaque: str | None = None
    bind_to: str | None = None

    def __post_init__(self) -> None:
        if (self.content is None) == (self.opaque is None):
            raise ValueError(
                "a component carries either markup content or opaque text")

    @property
    def is_opaque(self) -> bool:
        return self.opaque is not None

    def consumed_variables(self) -> set[str] | None:
        """Input variables, when statically determinable (opaque only)."""
        if self.opaque is not None:
            return opaque_placeholders(self.opaque)
        return None
