"""The request/answer message vocabulary of the framework.

All communication between the ECA engine, the Generic Request Handler and
the component-language services is XML (Figs. 5–9).  Four message kinds:

* ``log:request`` — engine → service: register/unregister an event
  component, evaluate a query, execute an action.  Carries the component
  content and the relevant input variable bindings.
* ``log:answers`` — service → engine: tuples of variable bindings
  (defined in :mod:`repro.bindings.markup`).
* ``log:detection`` — event service → engine: an event component matched;
  carries the component id, the occurrence interval and the bindings.
* ``log:ok`` / ``log:error`` — acknowledgements.

Messages are plain elements; transports serialize them (the in-process
broker can optionally skip serialization, the HTTP transport cannot —
DESIGN.md §5 requires identical bytes either way, which the tests check
via canonicalization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bindings import (MarkupError, Relation, answers_to_relation,
                        relation_to_answers)
from ..xmlmodel import Element, LOG_NS, QName, Text

__all__ = ["Request", "Detection", "request_to_xml", "xml_to_request",
           "detection_to_xml", "xml_to_detection", "ok_message",
           "error_message", "is_error", "error_text", "dead_letter_to_xml",
           "xml_to_dead_letter", "MessageError", "REQUEST_KINDS",
           "batch_to_xml", "xml_to_batch", "is_batch",
           "batch_results_to_xml", "xml_to_batch_results"]

REQUEST_KINDS = ("register-event", "unregister-event", "query", "action",
                 "test")

_REQUEST = QName(LOG_NS, "request")
_COMPONENT = QName(LOG_NS, "component")
_ANSWERS = QName(LOG_NS, "answers")
_DETECTION = QName(LOG_NS, "detection")
_EVENTS = QName(LOG_NS, "events")
_OK = QName(LOG_NS, "ok")
_ERROR = QName(LOG_NS, "error")
_DEADLETTER = QName(LOG_NS, "deadletter")
_BATCH = QName(LOG_NS, "batch")
_BATCHRESULTS = QName(LOG_NS, "batchresults")
_RESULT = QName(LOG_NS, "result")


class MessageError(ValueError):
    """Raised on malformed protocol messages."""


@dataclass(frozen=True)
class Request:
    """One request from the engine/GRH to a component service.

    ``dedup`` is an optional idempotency key (the ``dedup`` attribute on
    the wire), stamped on per-tuple action requests by a durable engine.
    A service that honours it answers ``log:ok`` without re-executing a
    key it has already completed, closing the last crash-replay
    ambiguity window (PROTOCOL.md §7); services that ignore it degrade
    to at-least-once for that one window.

    ``traceparent`` is the optional trace-context of the GRH request
    span that issued this request (the ``traceparent`` attribute on the
    wire, PROTOCOL.md §8).  A service that understands it annotates its
    response with a ``log:spans`` element so its server-side spans
    stitch into the originating rule instance's trace; services that
    ignore it lose nothing — the attribute is advisory.
    """

    kind: str
    component_id: str
    content: Element | None
    bindings: Relation
    dedup: str | None = None
    traceparent: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise MessageError(f"unknown request kind {self.kind!r}")


@dataclass(frozen=True)
class Detection:
    """An event-component detection signalled back to the engine.

    Besides the bindings, the message carries "the event sequence that
    matched the pattern" (Fig. 6 (1)) as the constituent payloads.

    ``detection_id`` is a service-assigned, per-service-monotonic
    identifier carried on the wire (the ``detection-id`` attribute).  A
    durable engine uses it to deduplicate at-least-once redelivery; an
    engine without durability ignores it.  ``None`` means the service
    did not stamp one (the engine assigns a local id if it needs one).
    """

    component_id: str
    start: float
    end: float
    bindings: Relation
    events: tuple[Element, ...] = ()
    detection_id: str | None = None


def request_to_xml(request: Request) -> Element:
    attributes = {QName(None, "kind"): request.kind,
                  QName(None, "id"): request.component_id}
    if request.dedup is not None:
        attributes[QName(None, "dedup")] = request.dedup
    if request.traceparent is not None:
        attributes[QName(None, "traceparent")] = request.traceparent
    element = Element(_REQUEST, attributes, nsdecls={"log": LOG_NS})
    if request.content is not None:
        wrapper = Element(_COMPONENT)
        wrapper.append(request.content.copy())
        element.append(wrapper)
    element.append(relation_to_answers(request.bindings))
    return element


def xml_to_request(element: Element) -> Request:
    if element.name != _REQUEST:
        raise MessageError(f"expected log:request, got {element.name.clark}")
    kind = element.get("kind")
    component_id = element.get("id")
    if not kind or not component_id:
        raise MessageError("log:request needs kind and id attributes")
    wrapper = element.find(_COMPONENT)
    content = None
    if wrapper is not None:
        inner = list(wrapper.elements())
        if len(inner) != 1:
            raise MessageError("log:component must hold exactly one element")
        content = inner[0].copy()
    answers = element.find(_ANSWERS)
    try:
        bindings = (answers_to_relation(answers) if answers is not None
                    else Relation.unit())
        return Request(kind, component_id, content, bindings,
                       dedup=element.get("dedup"),
                       traceparent=element.get("traceparent"))
    except MarkupError as exc:
        raise MessageError(str(exc)) from exc


def detection_to_xml(detection: Detection) -> Element:
    attributes = {QName(None, "id"): detection.component_id,
                  QName(None, "start"): _number(detection.start),
                  QName(None, "end"): _number(detection.end)}
    if detection.detection_id is not None:
        attributes[QName(None, "detection-id")] = detection.detection_id
    element = Element(_DETECTION, attributes, nsdecls={"log": LOG_NS})
    element.append(relation_to_answers(detection.bindings))
    if detection.events:
        wrapper = Element(_EVENTS)
        for payload in detection.events:
            wrapper.append(payload.copy())
        element.append(wrapper)
    return element


def xml_to_detection(element: Element) -> Detection:
    if element.name != _DETECTION:
        raise MessageError(
            f"expected log:detection, got {element.name.clark}")
    component_id = element.get("id")
    if not component_id:
        raise MessageError("log:detection needs an id attribute")
    answers = element.find(_ANSWERS)
    if answers is None:
        raise MessageError("log:detection needs log:answers content")
    try:
        bindings = answers_to_relation(answers)
    except MarkupError as exc:
        raise MessageError(str(exc)) from exc
    try:
        start = float(element.get("start", "0"))
        end = float(element.get("end", "0"))
    except ValueError as exc:
        raise MessageError("invalid detection interval") from exc
    events_wrapper = element.find(_EVENTS)
    events: tuple[Element, ...] = ()
    if events_wrapper is not None:
        events = tuple(child.copy() for child in events_wrapper.elements())
    return Detection(component_id, start, end, bindings, events,
                     detection_id=element.get("detection-id"))


def _number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def ok_message() -> Element:
    return Element(_OK, nsdecls={"log": LOG_NS})


def error_message(text: str) -> Element:
    element = Element(_ERROR, nsdecls={"log": LOG_NS})
    element.append(Text(text))
    return element


def dead_letter_to_xml(kind: str, error: str, attempts: int,
                       payload: Element | None = None) -> Element:
    """``log:deadletter`` — a failed unit of work parked for replay.

    ``payload`` is the original ``log:detection`` (failed instance) or
    ``log:request`` (failed per-tuple action loop), so a dead letter is
    self-contained: archiving it preserves everything needed to replay.
    """
    element = Element(_DEADLETTER, {QName(None, "kind"): kind,
                                    QName(None, "attempts"): str(attempts)},
                      nsdecls={"log": LOG_NS})
    error_element = Element(_ERROR)
    error_element.append(Text(error))
    element.append(error_element)
    if payload is not None:
        element.append(payload.copy())
    return element


def xml_to_dead_letter(element: Element) -> tuple[str, str, int,
                                                  Element | None]:
    """Parse ``log:deadletter`` back into ``(kind, error, attempts,
    payload)``.

    The inverse of :func:`dead_letter_to_xml`; the durable dead-letter
    store journals letters as markup and rebuilds them on recovery via
    :meth:`repro.grh.resilience.DeadLetter.from_xml`.
    """
    if element.name != _DEADLETTER:
        raise MessageError(
            f"expected log:deadletter, got {element.name.clark}")
    kind = element.get("kind")
    if kind not in ("detection", "action"):
        raise MessageError(f"unknown dead letter kind {kind!r}")
    try:
        attempts = int(element.get("attempts", "1"))
    except ValueError as exc:
        raise MessageError("invalid dead letter attempts") from exc
    error_element = element.find(_ERROR)
    error = error_element.text() if error_element is not None else ""
    payload = None
    for child in element.elements():
        if child.name != _ERROR:
            payload = child.copy()
            break
    return kind, error, attempts, payload


def is_error(element: Element) -> bool:
    return element.name == _ERROR


def error_text(element: Element) -> str:
    return element.text()


# -- batch envelopes (PROTOCOL.md §10) ---------------------------------------
#
# ``log:batch`` coalesces several independent ``log:request`` envelopes
# from concurrent rule instances into one transport round-trip; the
# service answers with ``log:batchresults`` holding one ``log:result``
# wrapper per request, **in request order**.  A child that failed is a
# ``log:error`` inside its wrapper — the failure is scoped to that one
# request, never to the whole batch.  Both sides validate the ``n``
# attribute against the actual child count so a truncated envelope is a
# protocol error, not a silently shorter batch.


def batch_to_xml(requests: list[Element]) -> Element:
    """Wrap ``log:request`` elements into one ``log:batch`` envelope."""
    element = Element(_BATCH, {QName(None, "n"): str(len(requests))},
                      nsdecls={"log": LOG_NS})
    for request in requests:
        element.append(request)
    return element


def is_batch(element: Element) -> bool:
    return element.name == _BATCH


def xml_to_batch(element: Element) -> list[Element]:
    """Unwrap a ``log:batch`` into its ``log:request`` children."""
    if element.name != _BATCH:
        raise MessageError(f"expected log:batch, got {element.name.clark}")
    children = list(element.elements())
    try:
        declared = int(element.get("n", ""))
    except ValueError as exc:
        raise MessageError("log:batch needs an integer n attribute") from exc
    if declared != len(children):
        raise MessageError(
            f"log:batch declares n={declared} but holds "
            f"{len(children)} requests")
    for child in children:
        if child.name != _REQUEST:
            raise MessageError(
                f"log:batch may only hold log:request children, "
                f"got {child.name.clark}")
    return children


def batch_results_to_xml(results: list[Element]) -> Element:
    """Wrap per-request responses into one ``log:batchresults``.

    Each response (``log:answers``, ``log:ok`` or ``log:error``) rides
    in its own ``log:result`` wrapper at the position of the request it
    answers.
    """
    element = Element(_BATCHRESULTS,
                      {QName(None, "n"): str(len(results))},
                      nsdecls={"log": LOG_NS})
    for result in results:
        wrapper = Element(_RESULT)
        wrapper.append(result)
        element.append(wrapper)
    return element


def xml_to_batch_results(element: Element,
                         expected: int | None = None) -> list[Element]:
    """Unwrap ``log:batchresults`` into per-request response elements.

    With *expected*, the count is validated against the number of
    requests the caller sent — a short or long answer is a protocol
    error (fan-back must stay positional).
    """
    if element.name != _BATCHRESULTS:
        raise MessageError(
            f"expected log:batchresults, got {element.name.clark}")
    wrappers = list(element.elements())
    try:
        declared = int(element.get("n", ""))
    except ValueError as exc:
        raise MessageError(
            "log:batchresults needs an integer n attribute") from exc
    if declared != len(wrappers):
        raise MessageError(
            f"log:batchresults declares n={declared} but holds "
            f"{len(wrappers)} results")
    if expected is not None and declared != expected:
        raise MessageError(
            f"log:batchresults answers {declared} requests, "
            f"expected {expected}")
    results = []
    for wrapper in wrappers:
        if wrapper.name != _RESULT:
            raise MessageError(
                f"log:batchresults may only hold log:result children, "
                f"got {wrapper.name.clark}")
        inner = list(wrapper.elements())
        if len(inner) != 1:
            raise MessageError(
                "log:result must hold exactly one response element")
        results.append(inner[0])
    return results
