"""The language registry: languages as resources (Fig. 1/2 of the paper).

Every component language is a resource identified by a URI; "with this
URI, further information is associated that allows to address a suitable
Web Service that implements the language" (Sec. 2).  A
:class:`LanguageDescriptor` is exactly that resource description:
family, URI, how to reach the processor, and whether the processor is
*framework-aware* (speaks ``log:`` markup natively) or must be adapted by
the GRH (Sec. 4.4).

The registry can also export itself as an RDF graph — rules and languages
are objects of the Semantic Web.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..rdf import Graph, Literal, Namespace, RDF, URIRef
from ..xmlmodel import Element
from .resilience import BreakerPolicy, RetryPolicy

__all__ = ["LanguageDescriptor", "LanguageRegistry", "RegistryError",
           "FAMILIES", "ECA_ONTOLOGY"]

FAMILIES = ("event", "query", "test", "action")

#: RDF vocabulary for the rule/language ontology of Fig. 1.
ECA_ONTOLOGY = Namespace("http://www.semwebtech.org/ontology/2006/eca#")


class RegistryError(ValueError):
    """Raised for unknown languages or invalid registrations."""


@dataclass(frozen=True)
class LanguageDescriptor:
    """Resource description of one component language.

    ``analyze`` optionally inspects a component's content and reports
    ``(produces, consumes)`` variable sets, enabling the engine's static
    binding-order check; ``None`` entries mean "unknown".

    ``retry``, ``breaker`` and ``timeout`` override the GRH's default
    resilience policies for this one language: autonomous services have
    individual failure characteristics, so the knobs live on the
    resource description (Sec. 2: "with this URI, further information is
    associated").  ``None`` means "use the GRH-wide default".
    """

    uri: str
    family: str
    name: str
    framework_aware: bool = True
    endpoint: str | None = None
    analyze: Callable[[Element | str],
                      tuple[set[str] | None, set[str] | None]] | None = None
    retry: RetryPolicy | None = None
    breaker: BreakerPolicy | None = None
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise RegistryError(f"unknown language family {self.family!r}; "
                                f"expected one of {FAMILIES}")


class LanguageRegistry:
    """URI → descriptor/service mapping used by the GRH for dispatch."""

    def __init__(self) -> None:
        self._descriptors: dict[str, LanguageDescriptor] = {}
        self._by_name: dict[str, str] = {}

    def register(self, descriptor: LanguageDescriptor) -> None:
        if descriptor.uri in self._descriptors:
            raise RegistryError(
                f"language {descriptor.uri!r} already registered")
        self._descriptors[descriptor.uri] = descriptor
        self._by_name.setdefault(descriptor.name, descriptor.uri)

    def lookup(self, uri: str) -> LanguageDescriptor:
        if uri not in self._descriptors:
            raise RegistryError(f"no language registered for {uri!r}")
        return self._descriptors[uri]

    def lookup_by_name(self, name: str) -> LanguageDescriptor:
        """Resolve an opaque component's ``language="name"`` attribute."""
        if name in self._by_name:
            return self._descriptors[self._by_name[name]]
        if name in self._descriptors:  # a URI was given as the name
            return self._descriptors[name]
        raise RegistryError(f"no language registered under name {name!r}")

    def __contains__(self, uri: str) -> bool:
        return uri in self._descriptors

    def languages(self, family: str | None = None) -> list[LanguageDescriptor]:
        """All registered languages, optionally restricted to one family."""
        out = list(self._descriptors.values())
        if family is not None:
            out = [descriptor for descriptor in out
                   if descriptor.family == family]
        return out

    # -- ontology export (Fig. 1: languages are Semantic-Web resources) -------

    def to_rdf(self) -> Graph:
        """Describe all registered languages as an RDF graph."""
        graph = Graph()
        graph.bind("eca", str(ECA_ONTOLOGY))
        family_class = {
            "event": ECA_ONTOLOGY.EventLanguage,
            "query": ECA_ONTOLOGY.QueryLanguage,
            "test": ECA_ONTOLOGY.TestLanguage,
            "action": ECA_ONTOLOGY.ActionLanguage,
        }
        for descriptor in self._descriptors.values():
            subject = URIRef(descriptor.uri)
            graph.add(subject, RDF.type, family_class[descriptor.family])
            graph.add(subject, ECA_ONTOLOGY.name, Literal(descriptor.name))
            graph.add(subject, ECA_ONTOLOGY.frameworkAware,
                      Literal.from_python(descriptor.framework_aware))
            if descriptor.endpoint:
                graph.add(subject, ECA_ONTOLOGY.implementedBy,
                          URIRef(descriptor.endpoint))
        return graph
