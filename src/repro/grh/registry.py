"""The language registry: languages as resources (Fig. 1/2 of the paper).

Every component language is a resource identified by a URI; "with this
URI, further information is associated that allows to address a suitable
Web Service that implements the language" (Sec. 2).  A
:class:`LanguageDescriptor` is exactly that resource description:
family, URI, how to reach the processor, and whether the processor is
*framework-aware* (speaks ``log:`` markup natively) or must be adapted by
the GRH (Sec. 4.4).

The registry can also export itself as an RDF graph — rules and languages
are objects of the Semantic Web.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..rdf import Graph, Literal, Namespace, RDF, URIRef
from ..xmlmodel import Element
from .resilience import BreakerPolicy, HedgePolicy, RetryPolicy

__all__ = ["LanguageDescriptor", "LanguageRegistry", "RegistryError",
           "FAMILIES", "ECA_ONTOLOGY", "HEALTHY", "SUSPECT", "DOWN",
           "ReplicaHealthBoard", "HealthProber"]

FAMILIES = ("event", "query", "test", "action")

#: RDF vocabulary for the rule/language ontology of Fig. 1.
ECA_ONTOLOGY = Namespace("http://www.semwebtech.org/ontology/2006/eca#")


class RegistryError(ValueError):
    """Raised for unknown languages or invalid registrations."""


@dataclass(frozen=True)
class LanguageDescriptor:
    """Resource description of one component language.

    ``analyze`` optionally inspects a component's content and reports
    ``(produces, consumes)`` variable sets, enabling the engine's static
    binding-order check; ``None`` entries mean "unknown".

    ``retry``, ``breaker`` and ``timeout`` override the GRH's default
    resilience policies for this one language: autonomous services have
    individual failure characteristics, so the knobs live on the
    resource description (Sec. 2: "with this URI, further information is
    associated").  ``None`` means "use the GRH-wide default".
    """

    uri: str
    family: str
    name: str
    framework_aware: bool = True
    endpoint: str | None = None
    analyze: Callable[[Element | str],
                      tuple[set[str] | None, set[str] | None]] | None = None
    retry: RetryPolicy | None = None
    breaker: BreakerPolicy | None = None
    timeout: float | None = None
    #: ordered replica addresses implementing this language; the single
    #: ``endpoint`` remains the back-compatible one-replica form
    replicas: tuple[str, ...] = ()
    #: hedged-read policy override for this language (``None`` = the
    #: GRH-wide default); only consulted when several replicas are live
    hedge: HedgePolicy | None = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise RegistryError(f"unknown language family {self.family!r}; "
                                f"expected one of {FAMILIES}")
        if not isinstance(self.replicas, tuple):
            # accept any iterable, normalize to tuple (dataclass is frozen)
            object.__setattr__(self, "replicas", tuple(self.replicas))

    @property
    def addresses(self) -> tuple[str, ...]:
        """Every address this language is reachable at, in declared
        order: the replica list, or the single endpoint."""
        if self.replicas:
            return self.replicas
        return (self.endpoint,) if self.endpoint else ()


class LanguageRegistry:
    """URI → descriptor/service mapping used by the GRH for dispatch."""

    def __init__(self) -> None:
        self._descriptors: dict[str, LanguageDescriptor] = {}
        self._by_name: dict[str, str] = {}
        #: per-replica health state for every registered address,
        #: shared with the GRH's resilience manager (PROTOCOL.md §12)
        self.health = ReplicaHealthBoard()

    def register(self, descriptor: LanguageDescriptor) -> None:
        if descriptor.uri in self._descriptors:
            raise RegistryError(
                f"language {descriptor.uri!r} already registered")
        self._descriptors[descriptor.uri] = descriptor
        self._by_name.setdefault(descriptor.name, descriptor.uri)

    def lookup(self, uri: str) -> LanguageDescriptor:
        if uri not in self._descriptors:
            raise RegistryError(f"no language registered for {uri!r}")
        return self._descriptors[uri]

    def lookup_by_name(self, name: str) -> LanguageDescriptor:
        """Resolve an opaque component's ``language="name"`` attribute."""
        if name in self._by_name:
            return self._descriptors[self._by_name[name]]
        if name in self._descriptors:  # a URI was given as the name
            return self._descriptors[name]
        raise RegistryError(f"no language registered under name {name!r}")

    def __contains__(self, uri: str) -> bool:
        return uri in self._descriptors

    def languages(self, family: str | None = None) -> list[LanguageDescriptor]:
        """All registered languages, optionally restricted to one family."""
        out = list(self._descriptors.values())
        if family is not None:
            out = [descriptor for descriptor in out
                   if descriptor.family == family]
        return out

    # -- ontology export (Fig. 1: languages are Semantic-Web resources) -------

    def to_rdf(self) -> Graph:
        """Describe all registered languages as an RDF graph."""
        graph = Graph()
        graph.bind("eca", str(ECA_ONTOLOGY))
        family_class = {
            "event": ECA_ONTOLOGY.EventLanguage,
            "query": ECA_ONTOLOGY.QueryLanguage,
            "test": ECA_ONTOLOGY.TestLanguage,
            "action": ECA_ONTOLOGY.ActionLanguage,
        }
        for descriptor in self._descriptors.values():
            subject = URIRef(descriptor.uri)
            graph.add(subject, RDF.type, family_class[descriptor.family])
            graph.add(subject, ECA_ONTOLOGY.name, Literal(descriptor.name))
            graph.add(subject, ECA_ONTOLOGY.frameworkAware,
                      Literal.from_python(descriptor.framework_aware))
            if descriptor.endpoint:
                graph.add(subject, ECA_ONTOLOGY.implementedBy,
                          URIRef(descriptor.endpoint))
            for replica in descriptor.replicas:
                graph.add(subject, ECA_ONTOLOGY.implementedBy,
                          URIRef(replica))
        return graph


# -- replica health (PROTOCOL.md §12) ----------------------------------------

#: replica health states: ``healthy`` replicas take traffic, ``suspect``
#: ones are deprioritized by the router's score, ``down`` ones are
#: skipped while any alternative is live
HEALTHY, SUSPECT, DOWN = "healthy", "suspect", "down"


class _ReplicaState:
    """Mutable per-address health record; guarded by the board's lock."""

    __slots__ = ("address", "state", "in_flight", "ewma", "failures",
                 "successes", "latencies", "probes", "probe_failures")

    def __init__(self, address: str) -> None:
        self.address = address
        self.state = HEALTHY
        self.in_flight = 0
        #: seconds; 0.0 until the first completed request
        self.ewma = 0.0
        self.failures = 0          # consecutive connection-level failures
        self.successes = 0
        self.latencies: deque[float] = deque(maxlen=64)
        self.probes = 0
        self.probe_failures = 0


class ReplicaHealthBoard:
    """Per-replica health state for every address the GRH dispatches to.

    Fed *passively* by the :class:`~repro.grh.resilience.ResilienceManager`
    (connection-level failures and timeouts mark a replica suspect, then
    down; breaker trips mark it down; a clean ``log:error`` from a live
    service marks it suspect — the service answered, so it is not dead)
    and *actively* by a :class:`HealthProber` that confirms liveness via
    ``/healthz`` and restores killed-and-restarted replicas to rotation.

    The board also carries the router's load signals: an in-flight count
    and a latency EWMA per address (power-of-two-choices score), plus a
    small latency window for the hedging delay's p95.  Thread-safe — the
    GRH dispatches from many worker threads at once.
    """

    def __init__(self, suspect_after: int = 1, down_after: int = 3,
                 ewma_alpha: float = 0.2) -> None:
        if not 1 <= suspect_after <= down_after:
            raise ValueError("need 1 <= suspect_after <= down_after")
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.ewma_alpha = ewma_alpha
        self._states: dict[str, _ReplicaState] = {}
        self._lock = threading.Lock()
        self.transitions = 0

    def _state(self, address: str) -> _ReplicaState:
        state = self._states.get(address)
        if state is None:
            state = self._states[address] = _ReplicaState(address)
        return state

    def _move(self, record: _ReplicaState, state: str) -> None:
        if record.state != state:
            record.state = state
            self.transitions += 1

    def track(self, address: str) -> None:
        with self._lock:
            self._state(address)

    def forget(self, address: str) -> None:
        """Drop a churned-out address (replica restarted on a new port)."""
        with self._lock:
            self._states.pop(address, None)

    def addresses(self) -> list[str]:
        with self._lock:
            return list(self._states)

    # -- router signals ------------------------------------------------------

    def begin(self, address: str) -> None:
        with self._lock:
            self._state(address).in_flight += 1

    def end(self, address: str) -> None:
        with self._lock:
            state = self._state(address)
            if state.in_flight > 0:
                state.in_flight -= 1

    def score(self, address: str) -> float:
        """Power-of-two-choices score: lower is better.  In-flight load
        weighted by the replica's latency EWMA (1 ms floor so a replica
        with no samples yet still orders by queue depth), with a suspect
        penalty so a degraded replica only wins when clearly idle."""
        with self._lock:
            state = self._state(address)
            score = (state.in_flight + 1) * max(state.ewma, 0.001)
            if state.state == SUSPECT:
                score *= 8.0
            return score

    # -- passive signals (ResilienceManager) ---------------------------------

    def record_success(self, address: str, latency: float) -> None:
        with self._lock:
            state = self._state(address)
            state.failures = 0
            state.successes += 1
            if latency >= 0:
                state.latencies.append(latency)
                state.ewma = latency if state.ewma == 0.0 else (
                    state.ewma + self.ewma_alpha * (latency - state.ewma))
            self._move(state, HEALTHY)

    def record_failure(self, address: str) -> None:
        """One connection-level failure (refused, reset, timed out)."""
        with self._lock:
            state = self._state(address)
            state.failures += 1
            if state.failures >= self.down_after:
                self._move(state, DOWN)
            elif state.failures >= self.suspect_after:
                self._move(state, SUSPECT)

    def record_error(self, address: str) -> None:
        """A service-reported error: the replica is alive but unwell."""
        with self._lock:
            state = self._state(address)
            if state.state == HEALTHY:
                self._move(state, SUSPECT)

    def mark_down(self, address: str) -> None:
        """Breaker trip: stop routing here until a probe or a success."""
        with self._lock:
            self._move(self._state(address), DOWN)

    # -- active signals (HealthProber) ---------------------------------------

    def record_probe(self, address: str, alive: bool) -> None:
        with self._lock:
            state = self._state(address)
            state.probes += 1
            if alive:
                state.failures = 0
                # liveness is all a probe proves: revive DOWN replicas,
                # but leave SUSPECT for record_success on real traffic —
                # a replica answering /healthz while erroring on real
                # requests must keep its routing penalty
                if state.state == DOWN:
                    self._move(state, HEALTHY)
            else:
                state.probe_failures += 1
                self._move(state, DOWN)

    # -- queries -------------------------------------------------------------

    def state_of(self, address: str) -> str:
        with self._lock:
            state = self._states.get(address)
            return state.state if state is not None else HEALTHY

    def is_down(self, address: str) -> bool:
        with self._lock:
            state = self._states.get(address)
            return state is not None and state.state == DOWN

    def live(self, addresses: Iterable[str]) -> list[str]:
        """Addresses not marked down; all of them when everything is
        down — a fully-dark replica set still gets traffic (the request
        itself is the cheapest possible probe)."""
        addresses = list(addresses)
        with self._lock:
            up = [address for address in addresses
                  if (state := self._states.get(address)) is None
                  or state.state != DOWN]
        return up or addresses

    def p95(self, addresses: Iterable[str]) -> float | None:
        """p95 latency over the replicas' recent windows (hedge delay)."""
        samples: list[float] = []
        with self._lock:
            for address in addresses:
                state = self._states.get(address)
                if state is not None:
                    samples.extend(state.latencies)
        if len(samples) < 8:
            return None
        samples.sort()
        return samples[min(len(samples) - 1, int(len(samples) * 0.95))]

    def snapshot(self) -> dict:
        """Per-address health for ``/introspect/replicas`` and metrics."""
        with self._lock:
            return {
                address: {
                    "state": state.state,
                    "in_flight": state.in_flight,
                    "ewma_s": state.ewma,
                    "consecutive_failures": state.failures,
                    "successes": state.successes,
                    "probes": state.probes,
                    "probe_failures": state.probe_failures,
                }
                for address, state in self._states.items()
            }


class HealthProber:
    """Low-rate background ``/healthz`` prober feeding the health board.

    *Any* HTTP response proves liveness — a replica without an
    introspection surface answers 404/405 on ``/healthz`` and is still
    alive; only a connection-level failure marks it down.  Non-HTTP
    addresses (in-process services) are skipped: passive signals cover
    them.  The thread is a daemon, but :meth:`stop` joins it so engine
    shutdown leaves nothing running (PROTOCOL.md §12).
    """

    def __init__(self, board: ReplicaHealthBoard,
                 addresses: Callable[[], Iterable[str]],
                 interval: float = 1.0, timeout: float = 1.0,
                 probe: Callable[[str], bool] | None = None) -> None:
        self.board = board
        self.addresses = addresses
        self.interval = interval
        self.timeout = timeout
        self._probe = probe if probe is not None else self._http_probe
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.cycles = 0

    def _http_probe(self, address: str) -> bool:
        import http.client
        from urllib.parse import urlsplit
        parts = urlsplit(address)
        conn_cls = http.client.HTTPSConnection if parts.scheme == "https" \
            else http.client.HTTPConnection
        connection = conn_cls(parts.hostname, parts.port,
                              timeout=self.timeout)
        try:
            path = parts.path.rstrip("/") + "/healthz"
            connection.request("GET", path)
            connection.getresponse().read()
            return True
        # HTTPException covers garbage/partial responses (BadStatusLine,
        # LineTooLong, ...) which are not OSErrors — a replica answering
        # gibberish is not provably alive
        except (OSError, http.client.HTTPException):
            return False
        finally:
            connection.close()

    def probe_once(self) -> None:
        """One probe sweep over every HTTP address (also used directly
        by tests and the chaos bench to force a health refresh)."""
        for address in list(self.addresses()):
            if self._stop.is_set():
                return
            if not address.startswith(("http://", "https://")):
                continue
            self.board.record_probe(address, self._probe(address))
        self.cycles += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.probe_once()
            except Exception:
                # one bad sweep (an injected probe raising, a URL that
                # fails to parse) must not kill the loop: a silently dead
                # prober would leave DOWN replicas out of rotation forever
                continue

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run,
                                        name="eca-health-prober",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
