"""Resilience for the mediation layer: retries, breakers, dead letters.

The paper's component-language services are *autonomous* and possibly
remote (Sec. 4.4) — they fail, time out and recover on their own
schedule.  Homogeneous reaction-rule systems (ECA-LP / ECA-RuleML)
treat failure handling as first-class; this module provides the
equivalent for the heterogeneous-services setting, at the one place all
service traffic passes through — the Generic Request Handler:

* :class:`RetryPolicy` — per-language retry with exponential backoff and
  *deterministic* jitter (no hidden randomness: the jitter is a hash of
  the endpoint and the attempt number, so tests and replays are exact);
* :class:`CircuitBreaker` — per-endpoint closed → open → half-open
  breaker that sheds load to services that keep failing instead of
  stacking timeouts onto every rule instance;
* :class:`DeadLetterQueue` — failed detections and failed per-tuple
  action requests are captured for later replay via
  :meth:`repro.core.ECAEngine.replay_dead_letters`;
* :class:`ResilienceManager` — owns the policies, breakers, counters and
  the injectable ``clock``/``sleep`` used by all of the above.

Failure classification (see docs/PROTOCOL.md §6/§11): a
transport-level failure (connection refused, a dead socket, a gateway
502/503/504, a crash inside an in-process service) is **transient** —
it is retried and counted against the endpoint's breaker.  A clean
``log:error`` response *or an HTTP error status from a live service*
(the transport marks it ``service_reported``) is an **application
error** from a healthy service — it is not retried (unless the policy
opts in) and never trips the breaker.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TYPE_CHECKING

from .messages import Detection, Request, dead_letter_to_xml, request_to_xml

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..bindings import Relation
    from ..xmlmodel import Element
    from .component import ComponentSpec
    from .registry import LanguageDescriptor

__all__ = ["GRHError", "CircuitOpenError", "ActionExecutionError",
           "TransientServiceFailure", "ServiceReportedError",
           "RetryPolicy", "BreakerPolicy", "CircuitBreaker",
           "DeadLetter", "DeadLetterQueue", "ResilienceManager"]


class GRHError(RuntimeError):
    """Raised when mediation fails (unknown language, service error...)."""


class CircuitOpenError(GRHError):
    """The endpoint's circuit breaker is open; the request was shed."""


class ActionExecutionError(GRHError):
    """An action component failed part-way through its per-tuple loop.

    ``executed`` is the number of tuples whose action request succeeded
    before the failure; ``remaining`` holds the failed tuple and every
    tuple not yet attempted (the same relation is captured in the dead
    letter queue for replay).
    """

    def __init__(self, message: str, executed: int = 0,
                 remaining: "Relation | None" = None) -> None:
        super().__init__(message)
        self.executed = executed
        self.remaining = remaining


class TransientServiceFailure(RuntimeError):
    """Internal: transport/crash failure — retryable, counts for breaker."""


class ServiceReportedError(RuntimeError):
    """Internal: the service answered ``log:error`` — an application
    error from a healthy service (not retried by default)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one service request.

    The default (``max_attempts=1``) performs no retries, keeping the
    seed semantics.  ``timeout`` (seconds) is propagated per-request into
    timeout-capable transports.  Jitter is deterministic: attempt ``n``
    against endpoint ``a`` always sleeps the same amount.
    """

    max_attempts: int = 1
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    timeout: float | None = None
    #: opt in to retrying clean ``log:error`` responses too
    retry_on_service_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered
        deterministically by ``key`` (normally the endpoint address)."""
        delay = min(self.max_delay,
                    self.base_delay * self.backoff_factor ** (attempt - 1))
        if self.jitter:
            frac = zlib.crc32(f"{key}#{attempt}".encode()) % 1000 / 1000.0
            delay *= 1.0 + self.jitter * frac
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """When a per-endpoint circuit breaker opens and how it recovers."""

    failure_threshold: int = 5
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")


class CircuitBreaker:
    """Closed → open → half-open breaker for one endpoint.

    Closed: requests pass; consecutive transient failures count toward
    the threshold.  Open: requests are shed without touching the
    transport until ``reset_timeout`` has elapsed.  Half-open: one probe
    request passes; success closes the breaker, failure reopens it.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.opens = 0

    def allow(self, now: float) -> bool:
        if self.state == "open":
            if now - self.opened_at >= self.policy.reset_timeout:
                self.state = "half_open"
                return True
            return False
        return True

    def retry_after(self, now: float) -> float:
        if self.state != "open":
            return 0.0
        return max(0.0, self.policy.reset_timeout - (now - self.opened_at))

    def record_success(self) -> None:
        self.failures = 0
        if self.state != "closed":
            self.state = "closed"

    def record_failure(self, now: float) -> bool:
        """Count one transient failure; returns True if this opened
        (or re-opened) the breaker."""
        self.failures += 1
        if (self.state == "half_open"
                or self.failures >= self.policy.failure_threshold):
            self.state = "open"
            self.opened_at = now
            self.failures = 0
            self.opens += 1
            return True
        return False


@dataclass
class DeadLetter:
    """One failed unit of work, parked for replay.

    ``kind`` is ``"detection"`` (a rule instance whose evaluation failed
    — replay re-runs the whole instance) or ``"action"`` (a per-tuple
    action loop that failed part-way — replay executes the failed tuple
    and every tuple after it, never the ones that already ran).
    """

    kind: str
    error: str
    enqueued_at: float = 0.0
    attempts: int = 1
    #: park-order sequence stamped by the queue (the letter's journal
    #: sequence under a durable engine): replay follows it so the same
    #: set of letters always replays in the same, reproducible order —
    #: even when concurrent workers parked them in racing interleavings
    seq: int = 0
    #: detection letters
    detection: Detection | None = None
    #: action letters
    component_id: str | None = None
    spec: "ComponentSpec | None" = None
    content: "Element | None" = None
    bindings: "Relation | None" = None

    def to_xml(self) -> "Element":
        """``log:deadletter`` markup, for archiving or monitoring UIs."""
        from .messages import detection_to_xml
        payload = None
        if self.kind == "detection" and self.detection is not None:
            payload = detection_to_xml(self.detection)
        elif self.kind == "action" and self.bindings is not None:
            payload = request_to_xml(Request("action", self.component_id,
                                             self.content, self.bindings))
        return dead_letter_to_xml(self.kind, self.error, self.attempts,
                                  payload)

    @classmethod
    def from_xml(cls, element: "Element") -> "DeadLetter":
        """Rebuild a letter from its ``log:deadletter`` markup.

        The inverse of :meth:`to_xml`, used by the durability layer to
        restore the queue on recovery.  ``enqueued_at`` is not carried
        on the wire and restores as 0.0; for action letters the
        component spec is reconstructed from the request payload (an
        ``eca:opaque`` wrapper round-trips to an opaque spec, anything
        else to a markup spec in the payload's namespace).
        """
        from ..xmlmodel import ECA_NS, QName
        from .component import ComponentSpec
        from .messages import (xml_to_dead_letter, xml_to_detection,
                               xml_to_request)
        kind, error, attempts, payload = xml_to_dead_letter(element)
        if kind == "detection":
            detection = (xml_to_detection(payload)
                         if payload is not None else None)
            return cls(kind="detection", error=error, attempts=attempts,
                       detection=detection)
        if payload is None:
            raise GRHError("action dead letter carries no request payload")
        request = xml_to_request(payload)
        content = request.content
        if content is None:
            raise GRHError("action dead letter request has no component")
        if content.name == QName(ECA_NS, "opaque"):
            spec = ComponentSpec("action", content.get("language", ""),
                                 opaque=content.text())
        else:
            spec = ComponentSpec("action", content.name.uri or "",
                                 content=content)
        return cls(kind="action", error=error, attempts=attempts,
                   component_id=request.component_id, spec=spec,
                   content=content, bindings=request.bindings)


class DeadLetterQueue:
    """Bounded FIFO of :class:`DeadLetter`; oldest dropped when full.

    ``on_append``/``on_drain`` are observer hooks the durability layer
    installs to journal queue mutations (a drop on overflow is reported
    as a front drain of one, which is what it is).  :meth:`restore`
    refills the queue on recovery *without* firing the hooks — the
    letters are already journaled.

    Thread-safe: concurrent rule instances park letters from several
    worker threads at once.  Every append stamps the letter's ``seq``
    under the queue lock — the same total order the durability journal
    records — and :meth:`drain` returns letters sorted by it, making
    :meth:`~repro.core.ECAEngine.replay_dead_letters` deterministic
    regardless of internal queue arrangement.

    Lock discipline: the observer hooks are fired *after* the queue
    lock is released.  The durability manager's hooks take its own
    lock, and the manager holds that lock while snapshotting this
    queue via :meth:`__iter__` (checkpoint) — firing a hook inside the
    queue lock span is an ABBA deadlock with any concurrent
    checkpoint.  Journal order still cannot diverge from seq order:
    ``_hook_lock`` is acquired before the queue lock and held through
    the hook calls, so mutation order and hook-firing order are the
    same total order.
    """

    def __init__(self, max_size: int = 1000) -> None:
        self.max_size = max_size
        self._letters: deque[DeadLetter] = deque()
        self.dropped = 0
        self.on_append: Callable[[DeadLetter], None] | None = None
        self.on_drain: Callable[[int], None] | None = None
        self._lock = threading.Lock()
        #: serializes mutation + hook firing (see class docstring);
        #: always acquired before ``_lock``, never while holding it
        self._hook_lock = threading.Lock()
        self._seq = 0

    def append(self, letter: DeadLetter) -> None:
        with self._hook_lock:
            dropped = 0
            with self._lock:
                self._seq += 1
                letter.seq = self._seq
                self._letters.append(letter)
                while len(self._letters) > self.max_size:
                    self._letters.popleft()
                    self.dropped += 1
                    dropped += 1
            if self.on_append is not None:
                self.on_append(letter)
            if dropped and self.on_drain is not None:
                # a drop on overflow is a front drain of one
                self.on_drain(dropped)

    def drain(self, limit: int | None = None) -> list[DeadLetter]:
        """Remove and return up to ``limit`` letters, oldest first.

        The returned letters are sorted by park sequence (journal
        order), so replay is reproducible: concurrent parking cannot
        reorder what a later replay will do.
        """
        with self._hook_lock:
            with self._lock:
                count = len(self._letters) if limit is None else min(
                    limit, len(self._letters))
                letters = [self._letters.popleft() for _ in range(count)]
            if letters and self.on_drain is not None:
                self.on_drain(len(letters))
        return sorted(letters, key=lambda letter: letter.seq)

    def restore(self, letters: Iterable[DeadLetter]) -> None:
        """Refill from recovered letters, bypassing the journal hooks.

        Recovery hands letters in journal order; the re-stamped ``seq``
        preserves it for the first post-recovery replay.
        """
        with self._lock:
            for letter in letters:
                self._seq += 1
                letter.seq = self._seq
                self._letters.append(letter)

    def clear(self) -> None:
        with self._hook_lock:
            with self._lock:
                count = len(self._letters)
                self._letters.clear()
            if count and self.on_drain is not None:
                self.on_drain(count)

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self) -> Iterator[DeadLetter]:
        # iterate a snapshot: a worker parking a letter mid-iteration
        # must not blow up a monitoring scrape
        with self._lock:
            return iter(list(self._letters))


#: sentinel distinguishing "use the default breaker" from "no breaker"
_DEFAULT = object()


class ResilienceManager:
    """Policies, breakers, dead letters and counters for one GRH.

    ``clock`` and ``sleep`` are injectable so tests (and deterministic
    replays) never wait on wall-clock time.  Per-language overrides come
    from :class:`~repro.grh.registry.LanguageDescriptor` fields; the
    manager's ``retry``/``breaker`` are the defaults.
    """

    def __init__(self, retry: RetryPolicy | None = None,
                 breaker: BreakerPolicy | None = _DEFAULT,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 max_dead_letters: int = 1000) -> None:
        self.default_retry = retry if retry is not None else RetryPolicy()
        self.default_breaker = (BreakerPolicy() if breaker is _DEFAULT
                                else breaker)
        self.clock = clock
        self.sleep = sleep
        self.dead_letters = DeadLetterQueue(max_dead_letters)
        self._breakers: dict[str, CircuitBreaker] = {}
        self.retries = 0
        self.attempts = 0
        self.breaker_opens = 0
        self.breaker_rejections = 0
        self._per_service: dict[str, dict[str, int]] = {}
        #: guards the counters, per-service tallies and breaker state:
        #: the GRH may be dispatched from several threads at once, and
        #: plain ``int += 1`` loses increments under contention
        self._lock = threading.Lock()
        #: observability hook: called as ``observer(event, address)`` for
        #: ``"retry"``, ``"breaker_open"``, ``"breaker_close"`` and
        #: ``"breaker_reject"`` — always *outside* ``_lock``, so the
        #: observer may take its own locks (tracer, log sink) without
        #: risking lock-order deadlocks.  ``None`` (default) is free.
        self.observer: Callable[[str, str], None] | None = None

    # -- policy resolution ---------------------------------------------------

    def policy_for(self, descriptor: "LanguageDescriptor") -> RetryPolicy:
        return descriptor.retry if descriptor.retry is not None \
            else self.default_retry

    def timeout_for(self, descriptor: "LanguageDescriptor") -> float | None:
        if descriptor.timeout is not None:
            return descriptor.timeout
        return self.policy_for(descriptor).timeout

    def breaker_for(self, address: str,
                    descriptor: "LanguageDescriptor") -> CircuitBreaker | None:
        policy = descriptor.breaker if descriptor.breaker is not None \
            else self.default_breaker
        if policy is None:
            return None
        breaker = self._breakers.get(address)
        if breaker is None:
            with self._lock:
                breaker = self._breakers.setdefault(
                    address, CircuitBreaker(policy))
        return breaker

    # -- the retry loop ------------------------------------------------------

    def call(self, address: str, descriptor: "LanguageDescriptor",
             attempt_once: Callable[[], object]):
        """Run one logical service request under retry + breaker.

        ``attempt_once`` raises :class:`TransientServiceFailure` for
        transport-level failures (retryable, breaker-counted) or
        :class:`ServiceReportedError` for clean ``log:error`` responses
        (retried only when the policy opts in, never breaker-counted);
        anything else propagates untouched.
        """
        policy = descriptor.retry if descriptor.retry is not None \
            else self.default_retry
        breaker = self.breaker_for(address, descriptor)
        # happy path: a closed breaker admits everything — skip the
        # clock read (allow() only needs the time to leave "open")
        observer = self.observer
        if breaker is not None and breaker.state != "closed":
            with self._lock:
                admitted = breaker.allow(self.clock())
                if not admitted:
                    self.breaker_rejections += 1
            if not admitted:
                if observer is not None:
                    observer("breaker_reject", address)
                raise CircuitOpenError(
                    f"circuit open for service {descriptor.name!r} at "
                    f"{address!r}; retry after "
                    f"{breaker.retry_after(self.clock()):.3g}s")
        attempt = 1
        while True:
            with self._lock:
                self.attempts += 1
            try:
                result = attempt_once()
            except TransientServiceFailure:
                with self._lock:
                    opened = breaker is not None and \
                        breaker.record_failure(self.clock())
                    if opened:
                        self.breaker_opens += 1
                    self._record(address, ok=False)
                if opened and observer is not None:
                    observer("breaker_open", address)
                shed = breaker is not None and breaker.state == "open"
                if attempt >= policy.max_attempts or shed:
                    raise
            except ServiceReportedError:
                with self._lock:
                    self._record(address, ok=False)
                if attempt >= policy.max_attempts or \
                        not policy.retry_on_service_errors:
                    raise
            else:
                recovered = False
                with self._lock:
                    if breaker is not None and (breaker.failures
                                                or breaker.state != "closed"):
                        recovered = breaker.state != "closed"
                        breaker.record_success()
                    self._record(address, ok=True)
                if recovered and observer is not None:
                    observer("breaker_close", address)
                return result
            with self._lock:
                self.retries += 1
            if observer is not None:
                observer("retry", address)
            self.sleep(policy.delay_for(attempt, address))
            attempt += 1

    def _record(self, address: str, ok: bool) -> None:
        """Tally one outcome; the caller holds ``self._lock``."""
        try:
            counts = self._per_service[address]
        except KeyError:
            counts = self._per_service[address] = {"successes": 0,
                                                   "failures": 0}
        counts["successes" if ok else "failures"] += 1

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters for ``grh.stats``: retries, breaker activity, dead
        letters and per-service failure rates."""
        services = {}
        with self._lock:
            per_service = {address: dict(counts) for address, counts
                           in self._per_service.items()}
            breakers = {address: breaker.state
                        for address, breaker in self._breakers.items()}
            retries, attempts = self.retries, self.attempts
            opens = self.breaker_opens
            rejections = self.breaker_rejections
        for address, counts in per_service.items():
            total = counts["successes"] + counts["failures"]
            services[address] = dict(counts,
                                     failure_rate=counts["failures"] / total
                                     if total else 0.0)
        return {
            "retries": retries,
            "attempts": attempts,
            "breaker_opens": opens,
            "breaker_rejections": rejections,
            "breakers": breakers,
            "dead_letters": len(self.dead_letters),
            "dead_letters_dropped": self.dead_letters.dropped,
            "services": services,
        }
