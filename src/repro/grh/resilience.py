"""Resilience for the mediation layer: retries, breakers, dead letters.

The paper's component-language services are *autonomous* and possibly
remote (Sec. 4.4) — they fail, time out and recover on their own
schedule.  Homogeneous reaction-rule systems (ECA-LP / ECA-RuleML)
treat failure handling as first-class; this module provides the
equivalent for the heterogeneous-services setting, at the one place all
service traffic passes through — the Generic Request Handler:

* :class:`RetryPolicy` — per-language retry with exponential backoff and
  *deterministic* jitter (no hidden randomness: the jitter is a hash of
  the endpoint and the attempt number, so tests and replays are exact);
* :class:`CircuitBreaker` — per-endpoint closed → open → half-open
  breaker that sheds load to services that keep failing instead of
  stacking timeouts onto every rule instance;
* :class:`DeadLetterQueue` — failed detections and failed per-tuple
  action requests are captured for later replay via
  :meth:`repro.core.ECAEngine.replay_dead_letters`;
* :class:`ResilienceManager` — owns the policies, breakers, counters and
  the injectable ``clock``/``sleep`` used by all of the above.

Failure classification (see docs/PROTOCOL.md §6/§11): a
transport-level failure (connection refused, a dead socket, a gateway
502/503/504, a crash inside an in-process service) is **transient** —
it is retried and counted against the endpoint's breaker.  A clean
``log:error`` response *or an HTTP error status from a live service*
(the transport marks it ``service_reported``) is an **application
error** from a healthy service — it is not retried (unless the policy
opts in) and never trips the breaker.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, TYPE_CHECKING

from ..obs.attribution import (bind_wait_scope, current_wait_scope,
                               record_wait, unbind_wait_scope)
from .messages import Detection, Request, dead_letter_to_xml, request_to_xml

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..bindings import Relation
    from ..xmlmodel import Element
    from .component import ComponentSpec
    from .registry import LanguageDescriptor, ReplicaHealthBoard

__all__ = ["GRHError", "CircuitOpenError", "ActionExecutionError",
           "TransientServiceFailure", "ServiceReportedError",
           "RetryPolicy", "BreakerPolicy", "HedgePolicy", "CircuitBreaker",
           "DeadLetter", "DeadLetterQueue", "ResilienceManager"]


class GRHError(RuntimeError):
    """Raised when mediation fails (unknown language, service error...)."""


class CircuitOpenError(GRHError):
    """The endpoint's circuit breaker is open; the request was shed."""


class ActionExecutionError(GRHError):
    """An action component failed part-way through its per-tuple loop.

    ``executed`` is the number of tuples whose action request succeeded
    before the failure; ``remaining`` holds the failed tuple and every
    tuple not yet attempted (the same relation is captured in the dead
    letter queue for replay).
    """

    def __init__(self, message: str, executed: int = 0,
                 remaining: "Relation | None" = None) -> None:
        super().__init__(message)
        self.executed = executed
        self.remaining = remaining


class TransientServiceFailure(RuntimeError):
    """Internal: transport/crash failure — retryable, counts for breaker."""


class ServiceReportedError(RuntimeError):
    """Internal: the service answered ``log:error`` — an application
    error from a healthy service (not retried by default)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one service request.

    The default (``max_attempts=1``) performs no retries, keeping the
    seed semantics.  ``timeout`` (seconds) is propagated per-request into
    timeout-capable transports.  Jitter is deterministic: attempt ``n``
    against endpoint ``a`` always sleeps the same amount.
    """

    max_attempts: int = 1
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    timeout: float | None = None
    #: opt in to retrying clean ``log:error`` responses too
    retry_on_service_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered
        deterministically by ``key`` (normally the endpoint address)."""
        delay = min(self.max_delay,
                    self.base_delay * self.backoff_factor ** (attempt - 1))
        if self.jitter:
            frac = zlib.crc32(f"{key}#{attempt}".encode()) % 1000 / 1000.0
            delay *= 1.0 + self.jitter * frac
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """When a per-endpoint circuit breaker opens and how it recovers."""

    failure_threshold: int = 5
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")


@dataclass(frozen=True)
class HedgePolicy:
    """When a replicated read sends a hedged second request.

    ``delay`` pins the hedge delay; ``None`` (the default) adapts it to
    the replica set's observed p95 latency, clamped to
    ``[min_delay, max_delay]``, falling back to ``initial_delay`` until
    enough samples exist.  ``max_threads`` bounds the shared executor
    the racing branches run on (PROTOCOL.md §12).
    """

    delay: float | None = None
    initial_delay: float = 0.05
    min_delay: float = 0.005
    max_delay: float = 2.0
    max_threads: int = 16

    def __post_init__(self) -> None:
        if self.max_threads < 2:
            raise ValueError("max_threads must be >= 2")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")


class CircuitBreaker:
    """Closed → open → half-open breaker for one endpoint.

    Closed: requests pass; consecutive transient failures count toward
    the threshold.  Open: requests are shed without touching the
    transport until ``reset_timeout`` has elapsed.  Half-open: exactly
    *one* probe request passes (``probing`` latches under the manager's
    lock; concurrent callers are shed until the probe settles); success
    closes the breaker, failure reopens it.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.opens = 0
        #: a half-open probe request is in flight; cleared when the
        #: probe settles (success, transient failure, or release)
        self.probing = False

    def allow(self, now: float) -> bool:
        if self.state == "open":
            if now - self.opened_at >= self.policy.reset_timeout:
                self.state = "half_open"
                self.probing = True
                return True
            return False
        if self.state == "half_open":
            if self.probing:
                return False
            self.probing = True
            return True
        return True

    def retry_after(self, now: float) -> float:
        if self.state == "open":
            return max(0.0,
                       self.policy.reset_timeout - (now - self.opened_at))
        if self.state == "half_open" and self.probing:
            # conservative: the in-flight probe either closes the
            # breaker soon or reopens it for a full reset window
            return self.policy.reset_timeout
        return 0.0

    def release_probe(self) -> None:
        """The probe ended without reaching the breaker (e.g. a clean
        service-reported error): let the next caller probe instead of
        latching half-open shut forever."""
        self.probing = False

    def record_success(self) -> None:
        self.failures = 0
        self.probing = False
        if self.state != "closed":
            self.state = "closed"

    def record_failure(self, now: float) -> bool:
        """Count one transient failure; returns True if this opened
        (or re-opened) the breaker."""
        self.failures += 1
        self.probing = False
        if (self.state == "half_open"
                or self.failures >= self.policy.failure_threshold):
            self.state = "open"
            self.opened_at = now
            self.failures = 0
            self.opens += 1
            return True
        return False


@dataclass
class DeadLetter:
    """One failed unit of work, parked for replay.

    ``kind`` is ``"detection"`` (a rule instance whose evaluation failed
    — replay re-runs the whole instance) or ``"action"`` (a per-tuple
    action loop that failed part-way — replay executes the failed tuple
    and every tuple after it, never the ones that already ran).
    """

    kind: str
    error: str
    enqueued_at: float = 0.0
    attempts: int = 1
    #: park-order sequence stamped by the queue (the letter's journal
    #: sequence under a durable engine): replay follows it so the same
    #: set of letters always replays in the same, reproducible order —
    #: even when concurrent workers parked them in racing interleavings
    seq: int = 0
    #: detection letters
    detection: Detection | None = None
    #: action letters
    component_id: str | None = None
    spec: "ComponentSpec | None" = None
    content: "Element | None" = None
    bindings: "Relation | None" = None

    def to_xml(self) -> "Element":
        """``log:deadletter`` markup, for archiving or monitoring UIs."""
        from .messages import detection_to_xml
        payload = None
        if self.kind == "detection" and self.detection is not None:
            payload = detection_to_xml(self.detection)
        elif self.kind == "action" and self.bindings is not None:
            payload = request_to_xml(Request("action", self.component_id,
                                             self.content, self.bindings))
        return dead_letter_to_xml(self.kind, self.error, self.attempts,
                                  payload)

    @classmethod
    def from_xml(cls, element: "Element") -> "DeadLetter":
        """Rebuild a letter from its ``log:deadletter`` markup.

        The inverse of :meth:`to_xml`, used by the durability layer to
        restore the queue on recovery.  ``enqueued_at`` is not carried
        on the wire and restores as 0.0; for action letters the
        component spec is reconstructed from the request payload (an
        ``eca:opaque`` wrapper round-trips to an opaque spec, anything
        else to a markup spec in the payload's namespace).
        """
        from ..xmlmodel import ECA_NS, QName
        from .component import ComponentSpec
        from .messages import (xml_to_dead_letter, xml_to_detection,
                               xml_to_request)
        kind, error, attempts, payload = xml_to_dead_letter(element)
        if kind == "detection":
            detection = (xml_to_detection(payload)
                         if payload is not None else None)
            return cls(kind="detection", error=error, attempts=attempts,
                       detection=detection)
        if payload is None:
            raise GRHError("action dead letter carries no request payload")
        request = xml_to_request(payload)
        content = request.content
        if content is None:
            raise GRHError("action dead letter request has no component")
        if content.name == QName(ECA_NS, "opaque"):
            spec = ComponentSpec("action", content.get("language", ""),
                                 opaque=content.text())
        else:
            spec = ComponentSpec("action", content.name.uri or "",
                                 content=content)
        return cls(kind="action", error=error, attempts=attempts,
                   component_id=request.component_id, spec=spec,
                   content=content, bindings=request.bindings)


class DeadLetterQueue:
    """Bounded FIFO of :class:`DeadLetter`; oldest dropped when full.

    ``on_append``/``on_drain`` are observer hooks the durability layer
    installs to journal queue mutations (a drop on overflow is reported
    as a front drain of one, which is what it is).  :meth:`restore`
    refills the queue on recovery *without* firing the hooks — the
    letters are already journaled.

    Thread-safe: concurrent rule instances park letters from several
    worker threads at once.  Every append stamps the letter's ``seq``
    under the queue lock — the same total order the durability journal
    records — and :meth:`drain` returns letters sorted by it, making
    :meth:`~repro.core.ECAEngine.replay_dead_letters` deterministic
    regardless of internal queue arrangement.

    Lock discipline: the observer hooks are fired *after* the queue
    lock is released.  The durability manager's hooks take its own
    lock, and the manager holds that lock while snapshotting this
    queue via :meth:`__iter__` (checkpoint) — firing a hook inside the
    queue lock span is an ABBA deadlock with any concurrent
    checkpoint.  Journal order still cannot diverge from seq order:
    ``_hook_lock`` is acquired before the queue lock and held through
    the hook calls, so mutation order and hook-firing order are the
    same total order.
    """

    def __init__(self, max_size: int = 1000) -> None:
        self.max_size = max_size
        self._letters: deque[DeadLetter] = deque()
        self.dropped = 0
        self.on_append: Callable[[DeadLetter], None] | None = None
        self.on_drain: Callable[[int], None] | None = None
        self._lock = threading.Lock()
        #: serializes mutation + hook firing (see class docstring);
        #: always acquired before ``_lock``, never while holding it
        self._hook_lock = threading.Lock()
        self._seq = 0

    def append(self, letter: DeadLetter) -> None:
        with self._hook_lock:
            dropped = 0
            with self._lock:
                self._seq += 1
                letter.seq = self._seq
                self._letters.append(letter)
                while len(self._letters) > self.max_size:
                    self._letters.popleft()
                    self.dropped += 1
                    dropped += 1
            if self.on_append is not None:
                self.on_append(letter)
            if dropped and self.on_drain is not None:
                # a drop on overflow is a front drain of one
                self.on_drain(dropped)

    def drain(self, limit: int | None = None) -> list[DeadLetter]:
        """Remove and return up to ``limit`` letters, oldest first.

        The returned letters are sorted by park sequence (journal
        order), so replay is reproducible: concurrent parking cannot
        reorder what a later replay will do.
        """
        with self._hook_lock:
            with self._lock:
                count = len(self._letters) if limit is None else min(
                    limit, len(self._letters))
                letters = [self._letters.popleft() for _ in range(count)]
            if letters and self.on_drain is not None:
                self.on_drain(len(letters))
        return sorted(letters, key=lambda letter: letter.seq)

    def restore(self, letters: Iterable[DeadLetter]) -> None:
        """Refill from recovered letters, bypassing the journal hooks.

        Recovery hands letters in journal order; the re-stamped ``seq``
        preserves it for the first post-recovery replay.
        """
        with self._lock:
            for letter in letters:
                self._seq += 1
                letter.seq = self._seq
                self._letters.append(letter)

    def clear(self) -> None:
        with self._hook_lock:
            with self._lock:
                count = len(self._letters)
                self._letters.clear()
            if count and self.on_drain is not None:
                self.on_drain(count)

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self) -> Iterator[DeadLetter]:
        # iterate a snapshot: a worker parking a letter mid-iteration
        # must not blow up a monitoring scrape
        with self._lock:
            return iter(list(self._letters))


#: sentinel distinguishing "use the default breaker" from "no breaker"
_DEFAULT = object()


class ResilienceManager:
    """Policies, breakers, dead letters and counters for one GRH.

    ``clock`` and ``sleep`` are injectable so tests (and deterministic
    replays) never wait on wall-clock time.  Per-language overrides come
    from :class:`~repro.grh.registry.LanguageDescriptor` fields; the
    manager's ``retry``/``breaker`` are the defaults.
    """

    def __init__(self, retry: RetryPolicy | None = None,
                 breaker: BreakerPolicy | None = _DEFAULT,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 max_dead_letters: int = 1000,
                 hedge: HedgePolicy | None = _DEFAULT) -> None:
        self.default_retry = retry if retry is not None else RetryPolicy()
        self.default_breaker = (BreakerPolicy() if breaker is _DEFAULT
                                else breaker)
        self.default_hedge = (HedgePolicy() if hedge is _DEFAULT else hedge)
        self.clock = clock
        self.sleep = sleep
        self.dead_letters = DeadLetterQueue(max_dead_letters)
        self._breakers: dict[str, CircuitBreaker] = {}
        self.retries = 0
        self.attempts = 0
        self.breaker_opens = 0
        self.breaker_rejections = 0
        self.failovers = 0
        self.hedges_launched = 0
        self.hedge_outcomes = {"primary_won": 0, "hedge_won": 0,
                               "discarded": 0}
        self._per_service: dict[str, dict[str, int]] = {}
        #: guards the counters, per-service tallies and breaker state:
        #: the GRH may be dispatched from several threads at once, and
        #: plain ``int += 1`` loses increments under contention
        self._lock = threading.Lock()
        #: observability hook: called as ``observer(event, address)`` for
        #: ``"retry"``, ``"breaker_open"``, ``"breaker_close"``,
        #: ``"breaker_reject"`` and ``"failover"`` — always *outside*
        #: ``_lock``, so the observer may take its own locks (tracer,
        #: log sink) without risking lock-order deadlocks.  ``None``
        #: (default) is free.
        self.observer: Callable[[str, str], None] | None = None
        #: per-replica health/load signals
        #: (:class:`~repro.grh.registry.ReplicaHealthBoard`); wired by
        #: the GRH — ``None`` keeps the pre-replica behavior
        self.health: "ReplicaHealthBoard | None" = None
        #: deterministic rotation for power-of-two-choices candidates
        self._route_turn = 0
        self._hedge_pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._closed = False

    # -- policy resolution ---------------------------------------------------

    def policy_for(self, descriptor: "LanguageDescriptor") -> RetryPolicy:
        return descriptor.retry if descriptor.retry is not None \
            else self.default_retry

    def timeout_for(self, descriptor: "LanguageDescriptor") -> float | None:
        if descriptor.timeout is not None:
            return descriptor.timeout
        return self.policy_for(descriptor).timeout

    def breaker_for(self, address: str,
                    descriptor: "LanguageDescriptor") -> CircuitBreaker | None:
        policy = descriptor.breaker if descriptor.breaker is not None \
            else self.default_breaker
        if policy is None:
            return None
        breaker = self._breakers.get(address)
        if breaker is None:
            with self._lock:
                breaker = self._breakers.setdefault(
                    address, CircuitBreaker(policy))
        return breaker

    # -- the retry loop ------------------------------------------------------

    def call(self, address: str, descriptor: "LanguageDescriptor",
             attempt_once: Callable[[], object]):
        """Run one logical service request under retry + breaker.

        The legacy single-address entry (the batcher and external
        callers use it): no failover, no hedging — the pre-replica
        semantics.  ``attempt_once`` raises
        :class:`TransientServiceFailure` for transport-level failures
        (retryable, breaker-counted) or :class:`ServiceReportedError`
        for clean ``log:error`` responses (retried only when the policy
        opts in, never breaker-counted); anything else propagates
        untouched.
        """
        return self._call_failover((address,), descriptor,
                                   lambda _address: attempt_once(),
                                   failover_ok=False)

    def call_routed(self, addresses: Sequence[str],
                    descriptor: "LanguageDescriptor",
                    attempt: Callable[[str], object], *,
                    kind: str | None = None,
                    failover_ok: bool | None = None,
                    hedge_ok: bool = False):
        """Run one logical request against a replica set.

        ``attempt`` receives the address the router selected (power of
        two choices over in-flight count × latency EWMA, skipping
        replicas marked down).  On a connection-level failure the
        request fails over to the next live replica when ``failover_ok``
        (default: whenever there is more than one address — the caller
        gates actions on dedup safety, PROTOCOL.md §12).  ``hedge_ok``
        additionally races a hedged second request on another replica
        after a p95-based delay — read-only kinds only; first response
        wins, the loser is discarded and counted.
        """
        addresses = tuple(addresses)
        if not addresses:
            raise GRHError(
                f"language {descriptor.name!r} has no service endpoint")
        if failover_ok is None:
            failover_ok = len(addresses) > 1
        if hedge_ok and len(addresses) > 1 and not self._closed:
            policy = descriptor.hedge if descriptor.hedge is not None \
                else self.default_hedge
            if policy is not None:
                live = self.health.live(addresses) \
                    if self.health is not None else list(addresses)
                if len(live) > 1:
                    return self._call_hedged(addresses, descriptor, attempt,
                                             policy, failover_ok)
        return self._call_failover(addresses, descriptor, attempt,
                                   failover_ok=failover_ok)

    def _admit(self, addresses: Sequence[str],
               descriptor: "LanguageDescriptor",
               excluded: set[str]) -> tuple[str, CircuitBreaker | None, bool]:
        """Select and admit one replica; ``(address, breaker, probing)``.

        Candidates exclude replicas that already failed this pass (all
        of them eligible again when that empties the set) and replicas
        the health board marks down; among the survivors, power of two
        choices — a deterministic rotation picks two neighbours, the
        lower score wins.  Raises :class:`CircuitOpenError` when every
        candidate's breaker sheds the request.
        """
        candidates = [address for address in addresses
                      if address not in excluded] or list(addresses)
        board = self.health
        if board is not None and len(candidates) > 1:
            candidates = board.live(candidates)
        if len(candidates) > 1:
            with self._lock:
                turn = self._route_turn
                self._route_turn += 1
            first = candidates[turn % len(candidates)]
            second = candidates[(turn + 1) % len(candidates)]
            if board is not None and \
                    board.score(second) < board.score(first):
                first, second = second, first
            order = [first, second] + [address for address in candidates
                                       if address not in (first, second)]
        else:
            order = candidates
        rejected: list[tuple[str, CircuitBreaker]] = []
        for address in order:
            breaker = self.breaker_for(address, descriptor)
            # happy path: a closed breaker admits everything — skip the
            # clock read (allow() only needs the time to leave "open")
            if breaker is None or breaker.state == "closed":
                return address, breaker, False
            with self._lock:
                admitted = breaker.allow(self.clock())
                probing = admitted and breaker.state == "half_open"
            if admitted:
                return address, breaker, probing
            rejected.append((address, breaker))
        with self._lock:
            self.breaker_rejections += 1
        now = self.clock()
        address, breaker = min(rejected,
                               key=lambda pair: pair[1].retry_after(now))
        observer = self.observer
        if observer is not None:
            observer("breaker_reject", address)
        raise CircuitOpenError(
            f"circuit open for service {descriptor.name!r} at "
            f"{address!r}; retry after {breaker.retry_after(now):.3g}s")

    def _has_alternative(self, addresses: Sequence[str],
                         failed: set[str]) -> bool:
        """Is there a live, non-shed replica left to fail over to?"""
        board = self.health
        now = None
        for address in addresses:
            if address in failed:
                continue
            if board is not None and board.is_down(address):
                continue
            breaker = self._breakers.get(address)
            if breaker is not None and breaker.state == "open":
                if now is None:
                    now = self.clock()
                if breaker.retry_after(now) > 0:
                    continue
            return True
        return False

    def _call_failover(self, addresses: Sequence[str],
                       descriptor: "LanguageDescriptor",
                       attempt: Callable[[str], object], *,
                       failover_ok: bool,
                       exclude: frozenset[str] = frozenset(),
                       on_pick: Callable[[str], None] | None = None):
        """The retry + breaker + failover loop for one logical request.

        Failover (connection-level failure, another live replica
        available) retargets *immediately* and does not consume a retry
        pass; exhausting the live candidates falls back to the retry
        policy's backoff, after which every replica is eligible again.
        """
        policy = descriptor.retry if descriptor.retry is not None \
            else self.default_retry
        observer = self.observer
        # health accounting only matters when there is a routing choice;
        # single-address dispatch keeps the pre-replica happy path
        board = self.health if len(addresses) > 1 else None
        passes = 1
        failed: set[str] = set(exclude)
        while True:
            address, breaker, probing = self._admit(addresses, descriptor,
                                                    failed)
            if on_pick is not None:
                on_pick(address)
                on_pick = None
            with self._lock:
                self.attempts += 1
            if board is not None:
                board.begin(address)
            started = self.clock()
            settled = False
            try:
                result = attempt(address)
            except TransientServiceFailure:
                settled = True
                with self._lock:
                    opened = breaker is not None and \
                        breaker.record_failure(self.clock())
                    if opened:
                        self.breaker_opens += 1
                    self._record(address, ok=False)
                if board is not None:
                    board.record_failure(address)
                    if opened:
                        board.mark_down(address)
                if opened and observer is not None:
                    observer("breaker_open", address)
                failed.add(address)
                if failover_ok and self._has_alternative(addresses, failed):
                    with self._lock:
                        self.failovers += 1
                    if observer is not None:
                        observer("failover", address)
                    continue
                shed = breaker is not None and breaker.state == "open"
                if passes >= policy.max_attempts or shed:
                    raise
            except ServiceReportedError:
                with self._lock:
                    self._record(address, ok=False)
                if board is not None:
                    board.record_error(address)
                if passes >= policy.max_attempts or \
                        not policy.retry_on_service_errors:
                    raise
            else:
                settled = True
                recovered = False
                with self._lock:
                    if breaker is not None and (breaker.failures
                                                or breaker.state != "closed"):
                        recovered = breaker.state != "closed"
                        breaker.record_success()
                    self._record(address, ok=True)
                if board is not None:
                    board.record_success(address, self.clock() - started)
                if recovered and observer is not None:
                    observer("breaker_close", address)
                return result
            finally:
                if board is not None:
                    board.end(address)
                if probing and not settled:
                    # the probe ended without reaching the breaker (a
                    # service-reported error, or a foreign exception):
                    # free the half-open slot for the next caller
                    with self._lock:
                        breaker.release_probe()
            with self._lock:
                self.retries += 1
            if observer is not None:
                observer("retry", address)
            slept_from = self.clock()
            self.sleep(policy.delay_for(passes, address))
            # backoff is idle time, not service time: attribute the gap
            # so the critical path separates "the service is slow" from
            # "we kept backing off" (PROTOCOL.md §14)
            record_wait("retry_backoff", self.clock() - slept_from)
            passes += 1
            failed = set(exclude)

    # -- hedged reads (PROTOCOL.md §12) --------------------------------------

    def hedge_delay(self, addresses: Sequence[str],
                    policy: HedgePolicy) -> float:
        """The delay before a hedged second read: pinned, or adaptive
        p95 over the replicas' recent latencies, clamped."""
        if policy.delay is not None:
            return policy.delay
        p95 = self.health.p95(addresses) if self.health is not None else None
        if p95 is None:
            return policy.initial_delay
        return min(max(p95, policy.min_delay), policy.max_delay)

    def _executor(self, policy: HedgePolicy):
        with self._lock:
            if self._closed:
                return None
            if self._hedge_pool is None:
                self._hedge_pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=policy.max_threads,
                    thread_name_prefix="eca-hedge")
            return self._hedge_pool

    def _discard_hedge(self, future) -> None:
        """The losing branch completed after the race was decided:
        swallow its outcome, count the discard."""
        if not future.cancelled():
            future.exception()
        with self._lock:
            self.hedge_outcomes["discarded"] += 1

    def _call_hedged(self, addresses: Sequence[str],
                     descriptor: "LanguageDescriptor",
                     attempt: Callable[[str], object],
                     policy: HedgePolicy, failover_ok: bool):
        """Race a primary and (after the hedge delay) a second replica.

        First successful response wins; the loser is left to finish on
        the executor and its result is discarded and counted.  If one
        branch fails the other's answer is awaited; if both fail, the
        primary's error propagates.
        """
        executor = self._executor(policy)
        if executor is None:  # closed mid-flight: plain failover path
            return self._call_failover(addresses, descriptor, attempt,
                                       failover_ok=failover_ok)
        delay = self.hedge_delay(addresses, policy)
        picked: list[str] = []
        # both branches run on executor threads, off the dispatching
        # caller — bind the caller's wait scope into them so pool and
        # backoff waits inside the attempts still attribute to this
        # request (concurrent adds are safe; the analyzer clamps any
        # joint over-report into the request's wall budget)
        scope = current_wait_scope()
        call = self._call_failover
        if scope is not None:
            def call(*args, _scope=scope, **kwargs):
                bind_wait_scope(_scope)
                try:
                    return self._call_failover(*args, **kwargs)
                finally:
                    unbind_wait_scope()
        primary = executor.submit(
            call, addresses, descriptor, attempt,
            failover_ok=failover_ok, on_pick=picked.append)
        try:
            return primary.result(timeout=delay)
        # concurrent.futures.TimeoutError: a distinct class from the
        # builtin until 3.11 (where it became an alias, so this clause
        # covers both) — Future.result raises the futures one
        except concurrent.futures.TimeoutError:
            if primary.done():  # the call itself failed with a timeout
                raise
        if not picked:
            # the primary is still queued (hedge pool saturated) and has
            # not routed yet: a hedge launched now could land on the very
            # replica the primary later picks, doubling its load instead
            # of spreading it — await the primary alone
            return primary.result()
        with self._lock:
            self.hedges_launched += 1
        hedge = executor.submit(
            call, addresses, descriptor, attempt,
            failover_ok=failover_ok, exclude=frozenset(picked[:1]))
        pending = {primary: "primary_won", hedge: "hedge_won"}
        first_error: BaseException | None = None
        # from here the caller only waits on the race; that idle time is
        # hedge wait, not network time (PROTOCOL.md §14)
        hedged_from = self.clock()
        try:
            while pending:
                done, _ = concurrent.futures.wait(
                    list(pending),
                    return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    outcome = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        for loser in pending:
                            loser.add_done_callback(self._discard_hedge)
                        with self._lock:
                            self.hedge_outcomes[outcome] += 1
                        return future.result()
                    if outcome == "primary_won" or first_error is None:
                        first_error = error
        finally:
            record_wait("hedge_wait", self.clock() - hedged_from)
        raise first_error

    def route(self, addresses: Sequence[str],
              descriptor: "LanguageDescriptor | None" = None) -> str:
        """One-shot replica selection without dispatching (the batcher
        picks its envelope's address here): p2c over live replicas, no
        breaker admission consumed."""
        addresses = tuple(addresses)
        if len(addresses) == 1:
            return addresses[0]
        board = self.health
        candidates = board.live(addresses) if board is not None \
            else list(addresses)
        if len(candidates) == 1:
            return candidates[0]
        with self._lock:
            turn = self._route_turn
            self._route_turn += 1
        first = candidates[turn % len(candidates)]
        second = candidates[(turn + 1) % len(candidates)]
        if board is not None and board.score(second) < board.score(first):
            return second
        return first

    # -- lifecycle -----------------------------------------------------------

    def evict(self, address: str) -> None:
        """Drop the breaker, stats and health record of one churned-out
        address (a replica that restarted on a new port)."""
        with self._lock:
            self._breakers.pop(address, None)
            self._per_service.pop(address, None)
        if self.health is not None:
            self.health.forget(address)

    def prune(self, active: Iterable[str]) -> int:
        """Evict every address not in *active*; returns the eviction
        count.  Called by the GRH when replica sets are re-pointed, so
        the breaker and stats maps stay bounded by the registered
        addresses rather than growing with historical churn."""
        active = set(active)
        evicted: set[str] = set()
        with self._lock:
            for address in [a for a in self._breakers if a not in active]:
                del self._breakers[address]
                evicted.add(address)
            for address in [a for a in self._per_service
                            if a not in active]:
                del self._per_service[address]
                evicted.add(address)
        if self.health is not None:
            for address in set(self.health.addresses()) - active:
                self.health.forget(address)
                evicted.add(address)
        return len(evicted)

    def close(self) -> None:
        """Stop the hedge executor (engine shutdown).  Dispatch keeps
        working afterwards — hedging is simply skipped."""
        with self._lock:
            self._closed = True
            pool, self._hedge_pool = self._hedge_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _record(self, address: str, ok: bool) -> None:
        """Tally one outcome; the caller holds ``self._lock``."""
        try:
            counts = self._per_service[address]
        except KeyError:
            counts = self._per_service[address] = {"successes": 0,
                                                   "failures": 0}
        counts["successes" if ok else "failures"] += 1

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict:
        """Counters for ``grh.stats``: retries, breaker activity, dead
        letters and per-service failure rates."""
        services = {}
        with self._lock:
            per_service = {address: dict(counts) for address, counts
                           in self._per_service.items()}
            breakers = {address: breaker.state
                        for address, breaker in self._breakers.items()}
            retries, attempts = self.retries, self.attempts
            opens = self.breaker_opens
            rejections = self.breaker_rejections
            failovers = self.failovers
            hedges = dict(self.hedge_outcomes,
                          launched=self.hedges_launched)
        for address, counts in per_service.items():
            total = counts["successes"] + counts["failures"]
            services[address] = dict(counts,
                                     failure_rate=counts["failures"] / total
                                     if total else 0.0)
        snapshot = {
            "retries": retries,
            "attempts": attempts,
            "breaker_opens": opens,
            "breaker_rejections": rejections,
            "failovers": failovers,
            "hedges": hedges,
            "breakers": breakers,
            "dead_letters": len(self.dead_letters),
            "dead_letters_dropped": self.dead_letters.dropped,
            "services": services,
        }
        if self.health is not None:
            snapshot["replicas"] = self.health.snapshot()
        return snapshot
