"""RDF substrate: term model, indexed graph, Turtle, SPARQL subset.

Built from scratch (no RDF library is available offline); provides the
Semantic-Web data services that ECA query components are evaluated
against.
"""

from .graph import Graph, Triple
from .sparql import (SparqlEvaluationError, SparqlQuery, SparqlSyntaxError,
                     ask, parse_sparql, select)
from .terms import BNode, Literal, Namespace, RDF, RDFS, Term, URIRef, XSD
from .rdfxml import (RDF_SYNTAX_NS, RdfXmlError, describe_subject,
                     graph_to_rdfxml, rdfxml_to_graph)
from .turtle import TurtleSyntaxError, parse_turtle, to_ntriples

__all__ = [
    "URIRef", "BNode", "Literal", "Term", "Namespace", "XSD", "RDF", "RDFS",
    "Graph", "Triple",
    "parse_turtle", "to_ntriples", "TurtleSyntaxError",
    "graph_to_rdfxml", "rdfxml_to_graph", "describe_subject",
    "RDF_SYNTAX_NS", "RdfXmlError",
    "parse_sparql", "select", "ask", "SparqlQuery", "SparqlSyntaxError",
    "SparqlEvaluationError",
]
