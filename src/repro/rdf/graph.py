"""An indexed RDF triple store.

Three hash indexes (SPO, POS, OSP) give constant-time-per-result pattern
matching for any combination of bound positions — the workhorse behind
the SPARQL-subset evaluator.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .terms import BNode, Literal, RDF, Term, URIRef

__all__ = ["Graph", "Triple"]

Triple = tuple[Term, Term, Term]


class Graph:
    """A set of RDF triples with pattern-matching access."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[Term, dict[Term, set[Term]]] = {}
        self._pos: dict[Term, dict[Term, set[Term]]] = {}
        self._osp: dict[Term, dict[Term, set[Term]]] = {}
        self.namespaces: dict[str, str] = {}
        for triple in triples:
            self.add(*triple)

    # -- mutation ---------------------------------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> None:
        """Add one triple (idempotent)."""
        self._validate(subject, predicate, obj)
        triple = (subject, predicate, obj)
        if triple in self._triples:
            return
        self._triples.add(triple)
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(obj)
        self._pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)

    def remove(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Remove one triple; returns whether it was present."""
        triple = (subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._spo[subject][predicate].discard(obj)
        self._pos[predicate][obj].discard(subject)
        self._osp[obj][subject].discard(predicate)
        return True

    def bind(self, prefix: str, uri: str) -> None:
        """Declare a prefix for parsing/serialization convenience."""
        self.namespaces[prefix] = uri

    @staticmethod
    def _validate(subject: Term, predicate: Term, obj: Term) -> None:
        if isinstance(subject, Literal):
            raise ValueError("literal cannot be a subject")
        if not isinstance(predicate, URIRef):
            raise ValueError("predicate must be a URIRef")
        if not isinstance(obj, (URIRef, BNode, Literal)):
            raise ValueError(f"invalid object term: {obj!r}")

    # -- access -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def triples(self, subject: Term | None = None,
                predicate: Term | None = None,
                obj: Term | None = None) -> Iterator[Triple]:
        """All triples matching the pattern; ``None`` is a wildcard."""
        if subject is not None:
            by_predicate = self._spo.get(subject)
            if by_predicate is None:
                return
            if predicate is not None:
                for candidate in by_predicate.get(predicate, ()):
                    if obj is None or candidate == obj:
                        yield (subject, predicate, candidate)
                return
            for pred, objects in by_predicate.items():
                for candidate in objects:
                    if obj is None or candidate == obj:
                        yield (subject, pred, candidate)
            return
        if predicate is not None:
            by_object = self._pos.get(predicate)
            if by_object is None:
                return
            if obj is not None:
                for subj in by_object.get(obj, ()):
                    yield (subj, predicate, obj)
                return
            for candidate, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, predicate, candidate)
            return
        if obj is not None:
            by_subject = self._osp.get(obj)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, obj)
            return
        yield from self._triples

    def count(self, subject: Term | None = None,
              predicate: Term | None = None,
              obj: Term | None = None) -> int:
        """Cardinality estimate for a pattern (used for join ordering)."""
        if subject is None and predicate is None and obj is None:
            return len(self._triples)
        return sum(1 for _ in self.triples(subject, predicate, obj))

    # -- convenience ---------------------------------------------------------------

    def subjects(self, predicate: Term | None = None,
                 obj: Term | None = None) -> Iterator[Term]:
        seen = set()
        for subj, _, _ in self.triples(None, predicate, obj):
            if subj not in seen:
                seen.add(subj)
                yield subj

    def objects(self, subject: Term | None = None,
                predicate: Term | None = None) -> Iterator[Term]:
        seen = set()
        for _, _, obj in self.triples(subject, predicate, None):
            if obj not in seen:
                seen.add(obj)
                yield obj

    def value(self, subject: Term, predicate: Term) -> Term | None:
        """The unique object for (subject, predicate), if any."""
        for _, _, obj in self.triples(subject, predicate, None):
            return obj
        return None

    def instances_of(self, cls: URIRef) -> Iterator[Term]:
        yield from self.subjects(RDF.type, cls)
