"""An indexed RDF triple store.

Three hash indexes (SPO, POS, OSP) give constant-time-per-result pattern
matching for any combination of bound positions — the workhorse behind
the SPARQL-subset evaluator.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .terms import BNode, Literal, RDF, Term, URIRef

__all__ = ["Graph", "Triple"]

Triple = tuple[Term, Term, Term]


class Graph:
    """A set of RDF triples with pattern-matching access."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[Term, dict[Term, set[Term]]] = {}
        self._pos: dict[Term, dict[Term, set[Term]]] = {}
        self._osp: dict[Term, dict[Term, set[Term]]] = {}
        # per-position triple counts: O(1) cardinality for the three
        # single-bound patterns (the two-bound ones read index bucket
        # sizes directly)
        self._s_count: dict[Term, int] = {}
        self._p_count: dict[Term, int] = {}
        self._o_count: dict[Term, int] = {}
        #: bumped on every successful add/remove; plan caches key on it
        self.version = 0
        self.namespaces: dict[str, str] = {}
        for triple in triples:
            self.add(*triple)

    # -- mutation ---------------------------------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> None:
        """Add one triple (idempotent)."""
        self._validate(subject, predicate, obj)
        triple = (subject, predicate, obj)
        if triple in self._triples:
            return
        self._triples.add(triple)
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(obj)
        self._pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
        self._s_count[subject] = self._s_count.get(subject, 0) + 1
        self._p_count[predicate] = self._p_count.get(predicate, 0) + 1
        self._o_count[obj] = self._o_count.get(obj, 0) + 1
        self.version += 1

    def remove(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Remove one triple; returns whether it was present."""
        triple = (subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._discard(self._spo, subject, predicate, obj)
        self._discard(self._pos, predicate, obj, subject)
        self._discard(self._osp, obj, subject, predicate)
        for counts, term in ((self._s_count, subject),
                             (self._p_count, predicate),
                             (self._o_count, obj)):
            left = counts[term] - 1
            if left:
                counts[term] = left
            else:
                del counts[term]
        self.version += 1
        return True

    @staticmethod
    def _discard(index: dict, first: Term, second: Term, third: Term) -> None:
        """Drop one entry from a nested index, pruning empty buckets so
        iteration and bucket-size counts never visit dead keys."""
        inner = index[first]
        bucket = inner[second]
        bucket.discard(third)
        if not bucket:
            del inner[second]
            if not inner:
                del index[first]

    def bind(self, prefix: str, uri: str) -> None:
        """Declare a prefix for parsing/serialization convenience."""
        self.namespaces[prefix] = uri

    @staticmethod
    def _validate(subject: Term, predicate: Term, obj: Term) -> None:
        if isinstance(subject, Literal):
            raise ValueError("literal cannot be a subject")
        if not isinstance(predicate, URIRef):
            raise ValueError("predicate must be a URIRef")
        if not isinstance(obj, (URIRef, BNode, Literal)):
            raise ValueError(f"invalid object term: {obj!r}")

    # -- access -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def triples(self, subject: Term | None = None,
                predicate: Term | None = None,
                obj: Term | None = None) -> Iterator[Triple]:
        """All triples matching the pattern; ``None`` is a wildcard."""
        if subject is not None:
            if predicate is None and obj is not None:
                # (s, ?, o): the OSP index holds exactly the predicates
                # linking the pair — no scan over the subject's triples
                for pred in self._osp.get(obj, {}).get(subject, ()):
                    yield (subject, pred, obj)
                return
            by_predicate = self._spo.get(subject)
            if by_predicate is None:
                return
            if predicate is not None:
                for candidate in by_predicate.get(predicate, ()):
                    if obj is None or candidate == obj:
                        yield (subject, predicate, candidate)
                return
            for pred, objects in by_predicate.items():
                for candidate in objects:
                    yield (subject, pred, candidate)
            return
        if predicate is not None:
            by_object = self._pos.get(predicate)
            if by_object is None:
                return
            if obj is not None:
                for subj in by_object.get(obj, ()):
                    yield (subj, predicate, obj)
                return
            for candidate, subjects in by_object.items():
                for subj in subjects:
                    yield (subj, predicate, candidate)
            return
        if obj is not None:
            by_subject = self._osp.get(obj)
            if by_subject is None:
                return
            for subj, predicates in by_subject.items():
                for pred in predicates:
                    yield (subj, pred, obj)
            return
        yield from self._triples

    def count(self, subject: Term | None = None,
              predicate: Term | None = None,
              obj: Term | None = None) -> int:
        """Exact cardinality of a pattern, O(1) for every bound-mask:
        position counters cover the single-bound patterns, index bucket
        sizes the double-bound ones, set membership the ground triple."""
        if subject is None:
            if predicate is None:
                if obj is None:
                    return len(self._triples)
                return self._o_count.get(obj, 0)
            if obj is None:
                return self._p_count.get(predicate, 0)
            return len(self._pos.get(predicate, {}).get(obj, ()))
        if predicate is None:
            if obj is None:
                return self._s_count.get(subject, 0)
            return len(self._osp.get(obj, {}).get(subject, ()))
        if obj is None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        return 1 if (subject, predicate, obj) in self._triples else 0

    # -- convenience ---------------------------------------------------------------

    def subjects(self, predicate: Term | None = None,
                 obj: Term | None = None) -> Iterator[Term]:
        seen = set()
        for subj, _, _ in self.triples(None, predicate, obj):
            if subj not in seen:
                seen.add(subj)
                yield subj

    def objects(self, subject: Term | None = None,
                predicate: Term | None = None) -> Iterator[Term]:
        seen = set()
        for _, _, obj in self.triples(subject, predicate, None):
            if obj not in seen:
                seen.add(obj)
                yield obj

    def value(self, subject: Term, predicate: Term) -> Term | None:
        """The unique object for (subject, predicate), if any."""
        for _, _, obj in self.triples(subject, predicate, None):
            return obj
        return None

    def instances_of(self, cls: URIRef) -> Iterator[Term]:
        yield from self.subjects(RDF.type, cls)
