"""RDF term model: URI references, literals, blank nodes.

The Semantic-Web data substrate of the framework (rules, components and
languages are "objects of the Semantic Web", Sec. 2).  Implemented from
scratch because no RDF library is available offline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["URIRef", "BNode", "Literal", "Term", "Namespace",
           "XSD", "RDF", "RDFS"]


class URIRef(str):
    """A URI reference used as an RDF term."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"<{str.__str__(self)}>"


class Namespace(str):
    """URI prefix factory: ``TRAVEL = Namespace("urn:t#"); TRAVEL.booking``."""

    __slots__ = ()

    def term(self, local: str) -> URIRef:
        return URIRef(str.__str__(self) + local)

    def __getattr__(self, local: str) -> URIRef:
        if local.startswith("__"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local) -> URIRef:  # type: ignore[override]
        if isinstance(local, str):
            return self.term(local)
        return str.__getitem__(self, local)


XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")

_bnode_counter = itertools.count()


class BNode(str):
    """A blank node with a stable local identifier."""

    __slots__ = ()

    def __new__(cls, value: str | None = None) -> "BNode":
        if value is None:
            value = f"b{next(_bnode_counter)}"
        return super().__new__(cls, value)

    def __repr__(self) -> str:
        return f"_:{str.__str__(self)}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with optional datatype or language tag."""

    lexical: str
    datatype: URIRef | None = None
    language: str | None = None
    #: precomputed so hashing is one attribute read — literals are hash
    #: keys on the executor's join/filter hot paths
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise ValueError("a literal cannot have both datatype and language")
        object.__setattr__(self, "_hash", hash(
            (self.lexical, self.datatype, self.language)))

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def from_python(cls, value) -> "Literal":
        """Build a typed literal from a Python value."""
        if isinstance(value, bool):
            return cls("true" if value else "false", datatype=XSD.boolean)
        if isinstance(value, int):
            return cls(str(value), datatype=XSD.integer)
        if isinstance(value, float):
            return cls(repr(value), datatype=XSD.double)
        return cls(str(value))

    def to_python(self):
        """The Python value of this literal (falls back to the lexical form)."""
        if self.datatype is None:
            return self.lexical
        converter = _DATATYPE_CONVERTERS.get(self.datatype)
        if converter is not None:
            return converter(self.lexical)
        return self.lexical

    def __repr__(self) -> str:
        if self.datatype:
            return f'"{self.lexical}"^^<{self.datatype}>'
        if self.language:
            return f'"{self.lexical}"@{self.language}'
        return f'"{self.lexical}"'


#: datatype → lexical converter, precomputed so ``to_python`` is one
#: dict probe instead of a chain of namespace-attribute constructions
#: (it sits on the executor's filter hot path)
_DATATYPE_CONVERTERS = {
    XSD.boolean: lambda lexical: lexical == "true",
    XSD.integer: int,
    XSD.int: int,
    XSD.long: int,
    XSD.double: float,
    XSD.float: float,
    XSD.decimal: float,
}


Term = URIRef | BNode | Literal
