"""A SPARQL subset: SELECT / ASK with basic graph patterns.

Supports: ``PREFIX`` prologue, ``SELECT [DISTINCT] ?vars|* WHERE``,
``ASK``, triple patterns with ``;`` / ``,`` lists and ``a``, ``FILTER``
expressions (comparisons, ``&&`` ``||`` ``!``, ``BOUND``, ``REGEX``,
``STR``, arithmetic), ``OPTIONAL`` groups, braced subgroups joined by
``UNION``, ``ORDER BY`` and ``LIMIT``.

Evaluation is backtracking BGP matching with greedy selectivity-based
pattern ordering over the graph's hash indexes.  Within one group the
evaluation order is fixed: basic patterns, then ``UNION`` blocks (in
textual order), then ``OPTIONAL`` groups, then ``FILTER``\\ s — the
:mod:`repro.sparql` planner reproduces exactly this semantics over an
indexed store and is differentially tested against this evaluator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from .graph import Graph
from .terms import BNode, Literal, RDF, Term, URIRef, XSD

__all__ = ["SparqlSyntaxError", "SparqlEvaluationError", "parse_sparql",
           "SparqlQuery", "Solution", "select", "ask", "finalize_select",
           "Variable", "TriplePattern", "GroupPattern", "OptionalGroup",
           "UnionGroup", "FilterExpr", "Expr", "BinOp", "NotOp", "VarExpr",
           "TermExpr", "Call"]

Solution = dict[str, Term]


class SparqlSyntaxError(ValueError):
    """Raised on malformed queries."""


class SparqlEvaluationError(ValueError):
    """Raised on evaluation-time errors (bad filter operands etc.)."""


@dataclass(frozen=True)
class Variable:
    name: str


PatternTerm = Term | Variable


@dataclass(frozen=True)
class TriplePattern:
    subject: PatternTerm
    predicate: PatternTerm
    obj: PatternTerm

    def variables(self) -> set[str]:
        return {t.name for t in (self.subject, self.predicate, self.obj)
                if isinstance(t, Variable)}


@dataclass(frozen=True)
class FilterExpr:
    expression: "Expr"


@dataclass(frozen=True)
class OptionalGroup:
    group: "GroupPattern"


@dataclass(frozen=True)
class UnionGroup:
    """Braced subgroups joined by ``UNION`` (one branch = a plain
    nested group); joined against the enclosing group's solutions with
    per-branch duplicates preserved (multiset union, SPARQL spec)."""

    branches: tuple["GroupPattern", ...]


@dataclass(frozen=True)
class GroupPattern:
    patterns: tuple[TriplePattern, ...]
    filters: tuple[FilterExpr, ...]
    optionals: tuple[OptionalGroup, ...]
    unions: tuple[UnionGroup, ...] = ()

    def mentioned_variables(self) -> set[str]:
        """Every variable this group (or any nested group) can mention."""
        names: set[str] = set()
        for pattern in self.patterns:
            names |= pattern.variables()
        for union in self.unions:
            for branch in union.branches:
                names |= branch.mentioned_variables()
        for optional in self.optionals:
            names |= optional.group.mentioned_variables()
        for filter_expr in self.filters:
            names |= expression_variables(filter_expr.expression)
        return names


# filter expression AST ---------------------------------------------------------

class Expr:
    __slots__ = ()


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr


@dataclass(frozen=True)
class VarExpr(Expr):
    name: str


@dataclass(frozen=True)
class TermExpr(Expr):
    term: Term


@dataclass(frozen=True)
class Call(Expr):
    name: str
    arguments: tuple[Expr, ...]


def expression_variables(expr: Expr) -> set[str]:
    """All variable names a filter expression mentions."""
    if isinstance(expr, VarExpr):
        return {expr.name}
    if isinstance(expr, BinOp):
        return expression_variables(expr.left) | \
            expression_variables(expr.right)
    if isinstance(expr, NotOp):
        return expression_variables(expr.operand)
    if isinstance(expr, Call):
        out: set[str] = set()
        for argument in expr.arguments:
            out |= expression_variables(argument)
        return out
    return set()


@dataclass(frozen=True)
class SparqlQuery:
    form: str  # 'SELECT' | 'ASK'
    variables: tuple[str, ...]  # empty = '*'
    distinct: bool
    where: GroupPattern
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    prefixes: dict[str, str] = field(default_factory=dict)


# -- tokenizer ----------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<iri><[^>]*>)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<pname>[A-Za-z_][A-Za-z0-9_.-]*)?:(?P<plocal>[A-Za-z0-9_.-]*)
  | (?P<word>[A-Za-z_][A-Za-z0-9_-]*)
  | (?P<op>&&|\|\||!=|<=|>=|[{}().,;=<>!*/+-])
""", re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SparqlSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        if kind == "plocal":
            prefix = match.group("pname") or ""
            tokens.append(_Token("pname",
                                 f"{prefix}:{match.group('plocal')}", pos))
        elif kind != "ws":
            tokens.append(_Token(kind, match.group(0), pos))
        pos = match.end()
    tokens.append(_Token("eof", "", pos))
    return tokens


# -- parser -------------------------------------------------------------------------


class _SparqlParser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.prefixes: dict[str, str] = {}

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def error(self, message: str) -> SparqlSyntaxError:
        token = self.peek()
        return SparqlSyntaxError(
            f"{message} near {token.value!r} (offset {token.position})")

    def match_word(self, word: str) -> bool:
        token = self.peek()
        if token.kind == "word" and token.value.upper() == word:
            self.index += 1
            return True
        return False

    def expect_op(self, op: str) -> None:
        token = self.next()
        if not (token.kind == "op" and token.value == op):
            self.index -= 1
            raise self.error(f"expected {op!r}")

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> SparqlQuery:
        while self.match_word("PREFIX"):
            name = self.next()
            if name.kind != "pname" or not name.value.endswith(":"):
                raise self.error("expected prefix declaration")
            iri = self.next()
            if iri.kind != "iri":
                raise self.error("expected IRI in prefix declaration")
            self.prefixes[name.value[:-1]] = iri.value[1:-1]
        if self.match_word("SELECT"):
            query = self._select()
        elif self.match_word("ASK"):
            query = self._ask()
        else:
            raise self.error("expected SELECT or ASK")
        if self.peek().kind != "eof":
            raise self.error("trailing input after query")
        return query

    def _select(self) -> SparqlQuery:
        distinct = self.match_word("DISTINCT")
        variables: list[str] = []
        star = False
        while True:
            token = self.peek()
            if token.kind == "var":
                variables.append(self.next().value[1:])
            elif token.kind == "op" and token.value == "*" and not variables:
                self.next()
                star = True
                break
            else:
                break
        if not variables and not star:
            raise self.error("SELECT needs variables or *")
        self.match_word("WHERE")
        where = self._group()
        order_by = None
        descending = False
        limit = None
        if self.match_word("ORDER"):
            if not self.match_word("BY"):
                raise self.error("expected BY after ORDER")
            if self.match_word("DESC"):
                descending = True
                self.expect_op("(")
                order_by = self._variable_name()
                self.expect_op(")")
            elif self.match_word("ASC"):
                self.expect_op("(")
                order_by = self._variable_name()
                self.expect_op(")")
            else:
                order_by = self._variable_name()
        if self.match_word("LIMIT"):
            token = self.next()
            if token.kind != "number":
                raise self.error("expected number after LIMIT")
            limit = int(token.value)
        return SparqlQuery("SELECT", tuple(variables), distinct, where,
                           order_by, descending, limit, self.prefixes)

    def _ask(self) -> SparqlQuery:
        self.match_word("WHERE")
        return SparqlQuery("ASK", (), False, self._group(),
                           prefixes=self.prefixes)

    def _variable_name(self) -> str:
        token = self.next()
        if token.kind != "var":
            raise self.error("expected a variable")
        return token.value[1:]

    def _group(self) -> GroupPattern:
        self.expect_op("{")
        patterns: list[TriplePattern] = []
        filters: list[FilterExpr] = []
        optionals: list[OptionalGroup] = []
        unions: list[UnionGroup] = []
        while True:
            token = self.peek()
            if token.kind == "op" and token.value == "}":
                self.next()
                return GroupPattern(tuple(patterns), tuple(filters),
                                    tuple(optionals), tuple(unions))
            if self.match_word("FILTER"):
                self.expect_op("(")
                filters.append(FilterExpr(self._expression()))
                self.expect_op(")")
                continue
            if self.match_word("OPTIONAL"):
                optionals.append(OptionalGroup(self._group()))
                continue
            if token.kind == "op" and token.value == "{":
                # a braced subgroup, possibly continued by UNION; a
                # single branch is the degenerate one-armed union
                branches = [self._group()]
                while self.match_word("UNION"):
                    branches.append(self._group())
                unions.append(UnionGroup(tuple(branches)))
                if self.peek().kind == "op" and self.peek().value == ".":
                    self.next()
                continue
            patterns.extend(self._triples_same_subject())
            if self.peek().kind == "op" and self.peek().value == ".":
                self.next()

    def _triples_same_subject(self) -> list[TriplePattern]:
        subject = self._term(position="subject")
        out: list[TriplePattern] = []
        while True:
            predicate = self._term(position="predicate")
            while True:
                obj = self._term(position="object")
                out.append(TriplePattern(subject, predicate, obj))
                if self.peek().kind == "op" and self.peek().value == ",":
                    self.next()
                else:
                    break
            if self.peek().kind == "op" and self.peek().value == ";":
                self.next()
                if self.peek().kind == "op" and self.peek().value in ".}":
                    return out
            else:
                return out

    def _term(self, position: str) -> PatternTerm:
        token = self.next()
        if token.kind == "var":
            return Variable(token.value[1:])
        if token.kind == "iri":
            return URIRef(token.value[1:-1])
        if token.kind == "pname":
            prefix, _, local = token.value.partition(":")
            if prefix not in self.prefixes:
                raise self.error(f"undeclared prefix {prefix!r}")
            return URIRef(self.prefixes[prefix] + local)
        if token.kind == "word" and token.value == "a" \
                and position == "predicate":
            return RDF.type
        if position == "object":
            if token.kind == "string":
                return self._literal_from(token)
            if token.kind == "number":
                if "." in token.value:
                    return Literal(token.value, datatype=XSD.double)
                return Literal(token.value, datatype=XSD.integer)
            if token.kind == "word" and token.value in ("true", "false"):
                return Literal(token.value, datatype=XSD.boolean)
        if token.kind == "word" and token.value.startswith("_"):
            return BNode(token.value)
        self.index -= 1
        raise self.error(f"invalid {position} term")

    def _literal_from(self, token: _Token) -> Literal:
        lexical = token.value[1:-1].encode().decode("unicode_escape")
        if self.peek().kind == "op" and self.peek().value == "^":
            # unreachable with current tokenizer; kept for clarity
            raise self.error("typed literals use ^^ without spaces")
        return Literal(lexical)

    # -- filter expressions ----------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.peek().kind == "op" and self.peek().value == "||":
            self.next()
            left = BinOp("||", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._comparison()
        while self.peek().kind == "op" and self.peek().value == "&&":
            self.next()
            left = BinOp("&&", left, self._comparison())
        return left

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.value in ("=", "!=", "<", "<=", ">",
                                                  ">="):
            self.next()
            return BinOp(token.value, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self.peek().kind == "op" and self.peek().value in "+-":
            op = self.next().value
            left = BinOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self.peek().kind == "op" and self.peek().value in "*/":
            op = self.next().value
            left = BinOp(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.value == "!":
            self.next()
            return NotOp(self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.next()
        if token.kind == "var":
            return VarExpr(token.value[1:])
        if token.kind == "string":
            return TermExpr(Literal(token.value[1:-1]))
        if token.kind == "number":
            datatype = XSD.double if "." in token.value else XSD.integer
            return TermExpr(Literal(token.value, datatype=datatype))
        if token.kind == "iri":
            return TermExpr(URIRef(token.value[1:-1]))
        if token.kind == "pname":
            prefix, _, local = token.value.partition(":")
            if prefix not in self.prefixes:
                raise self.error(f"undeclared prefix {prefix!r}")
            return TermExpr(URIRef(self.prefixes[prefix] + local))
        if token.kind == "op" and token.value == "(":
            inner = self._expression()
            self.expect_op(")")
            return inner
        if token.kind == "word":
            if token.value in ("true", "false"):
                return TermExpr(Literal(token.value,
                                        datatype=XSD.boolean))
            name = token.value.upper()
            self.expect_op("(")
            arguments: list[Expr] = []
            if not (self.peek().kind == "op" and self.peek().value == ")"):
                arguments.append(self._expression())
                while self.peek().kind == "op" and self.peek().value == ",":
                    self.next()
                    arguments.append(self._expression())
            self.expect_op(")")
            return Call(name, tuple(arguments))
        self.index -= 1
        raise self.error("invalid filter expression")


def parse_sparql(text: str) -> SparqlQuery:
    """Parse a SPARQL-subset query."""
    return _SparqlParser(text).parse()


# -- evaluation -------------------------------------------------------------------------


def _substitute(term: PatternTerm, solution: Solution) -> PatternTerm:
    if isinstance(term, Variable) and term.name in solution:
        return solution[term.name]
    return term


def _match_bgp(graph: Graph, patterns: list[TriplePattern],
               solution: Solution, reorder: bool = True) -> Iterator[Solution]:
    if not patterns:
        yield dict(solution)
        return
    if reorder:
        # greedy: evaluate the most selective pattern first
        def selectivity(pattern: TriplePattern) -> int:
            s = _substitute(pattern.subject, solution)
            p = _substitute(pattern.predicate, solution)
            o = _substitute(pattern.obj, solution)
            return graph.count(None if isinstance(s, Variable) else s,
                               None if isinstance(p, Variable) else p,
                               None if isinstance(o, Variable) else o)

        best_index = min(range(len(patterns)),
                         key=lambda i: selectivity(patterns[i]))
    else:
        best_index = 0  # textual order (the ablation baseline)
    pattern = patterns[best_index]
    rest = patterns[:best_index] + patterns[best_index + 1:]
    s = _substitute(pattern.subject, solution)
    p = _substitute(pattern.predicate, solution)
    o = _substitute(pattern.obj, solution)
    for triple in graph.triples(None if isinstance(s, Variable) else s,
                                None if isinstance(p, Variable) else p,
                                None if isinstance(o, Variable) else o):
        extended = dict(solution)
        consistent = True
        for pattern_term, value in zip((pattern.subject, pattern.predicate,
                                        pattern.obj), triple):
            if isinstance(pattern_term, Variable):
                bound = extended.get(pattern_term.name)
                if bound is None:
                    extended[pattern_term.name] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield from _match_bgp(graph, rest, extended, reorder)


def _truth(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        python = value.to_python()
        if isinstance(python, bool):
            return python
        if isinstance(python, (int, float)):
            return python != 0
        return bool(python)
    if value is None:
        raise SparqlEvaluationError("unbound value in boolean context")
    return True


def _numeric(value) -> float:
    if isinstance(value, Literal):
        python = value.to_python()
        if isinstance(python, (int, float)) and not isinstance(python, bool):
            return float(python)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise SparqlEvaluationError(f"not a number: {value!r}")


def _eval_filter(expr: Expr, solution: Solution) -> object:
    if isinstance(expr, VarExpr):
        return solution.get(expr.name)
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, NotOp):
        return not _truth(_eval_filter(expr.operand, solution))
    if isinstance(expr, BinOp):
        if expr.op == "&&":
            return (_truth(_eval_filter(expr.left, solution))
                    and _truth(_eval_filter(expr.right, solution)))
        if expr.op == "||":
            return (_truth(_eval_filter(expr.left, solution))
                    or _truth(_eval_filter(expr.right, solution)))
        left = _eval_filter(expr.left, solution)
        right = _eval_filter(expr.right, solution)
        if expr.op in ("+", "-", "*", "/"):
            a, b = _numeric(left), _numeric(right)
            if expr.op == "+":
                return Literal(repr(a + b), datatype=XSD.double)
            if expr.op == "-":
                return Literal(repr(a - b), datatype=XSD.double)
            if expr.op == "*":
                return Literal(repr(a * b), datatype=XSD.double)
            if b == 0:
                raise SparqlEvaluationError("division by zero")
            return Literal(repr(a / b), datatype=XSD.double)
        return _compare(expr.op, left, right)
    if isinstance(expr, Call):
        return _eval_call(expr, solution)
    raise SparqlEvaluationError(f"cannot evaluate {expr!r}")


def _compare(op: str, left, right) -> bool:
    if left is None or right is None:
        raise SparqlEvaluationError("comparison with unbound variable")
    both_literal = isinstance(left, Literal) and isinstance(right, Literal)
    if both_literal:
        left_py, right_py = left.to_python(), right.to_python()
        numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool)
                      for v in (left_py, right_py))
        if numeric:
            left_cmp, right_cmp = float(left_py), float(right_py)
        else:
            left_cmp, right_cmp = str(left_py), str(right_py)
    else:
        left_cmp, right_cmp = str(left), str(right)
        if op not in ("=", "!="):
            raise SparqlEvaluationError(
                "ordering comparison requires literals")
    if op == "=":
        if both_literal:
            return left_cmp == right_cmp
        return left == right
    if op == "!=":
        if both_literal:
            return left_cmp != right_cmp
        return left != right
    if op == "<":
        return left_cmp < right_cmp
    if op == "<=":
        return left_cmp <= right_cmp
    if op == ">":
        return left_cmp > right_cmp
    return left_cmp >= right_cmp


def _eval_call(call: Call, solution: Solution) -> object:
    if call.name == "BOUND":
        arg = call.arguments[0]
        if not isinstance(arg, VarExpr):
            raise SparqlEvaluationError("BOUND expects a variable")
        return arg.name in solution and solution[arg.name] is not None
    values = [_eval_filter(arg, solution) for arg in call.arguments]
    if call.name == "STR":
        value = values[0]
        if isinstance(value, Literal):
            return Literal(value.lexical)
        if value is None:
            raise SparqlEvaluationError("STR of unbound variable")
        return Literal(str(value))
    if call.name == "REGEX":
        text = values[0]
        pattern = values[1]
        flags = re.IGNORECASE if (len(values) > 2 and isinstance(
            values[2], Literal) and "i" in values[2].lexical) else 0
        text_str = text.lexical if isinstance(text, Literal) else str(text)
        pattern_str = (pattern.lexical if isinstance(pattern, Literal)
                       else str(pattern))
        return re.search(pattern_str, text_str, flags) is not None
    if call.name == "LANG":
        value = values[0]
        if isinstance(value, Literal):
            return Literal(value.language or "")
        raise SparqlEvaluationError("LANG expects a literal")
    if call.name == "DATATYPE":
        value = values[0]
        if isinstance(value, Literal):
            return value.datatype or URIRef(str(XSD) + "string")
        raise SparqlEvaluationError("DATATYPE expects a literal")
    if call.name == "ISURI" or call.name == "ISIRI":
        return isinstance(values[0], URIRef)
    if call.name == "ISLITERAL":
        return isinstance(values[0], Literal)
    raise SparqlEvaluationError(f"unknown function {call.name}")


def _evaluate_group(graph: Graph, group: GroupPattern,
                    base: Solution, reorder: bool = True) -> Iterator[Solution]:
    for solution in _match_bgp(graph, list(group.patterns), base, reorder):
        # UNION joins each solution against every branch; duplicates
        # produced by different branches are preserved (multiset union),
        # and a solution no branch extends is dropped (inner join).
        extended = [solution]
        for union in group.unions:
            next_round: list[Solution] = []
            for current in extended:
                for branch in union.branches:
                    next_round.extend(_evaluate_group(graph, branch,
                                                      current, reorder))
            extended = next_round
        # OPTIONAL is a left outer join: keep the solution unextended when
        # the optional group finds no match.
        for optional in group.optionals:
            next_round = []
            for current in extended:
                matches = list(_evaluate_group(graph, optional.group,
                                               current, reorder))
                next_round.extend(matches if matches else [current])
            extended = next_round
        for current in extended:
            yield from _apply_filters(group, current)


def _apply_filters(group: GroupPattern,
                   solution: Solution) -> Iterator[Solution]:
    for filter_expr in group.filters:
        try:
            if not _truth(_eval_filter(filter_expr.expression, solution)):
                return
        except SparqlEvaluationError:
            return  # errors in filters eliminate the solution (SPARQL spec)
    yield solution


def select(graph: Graph, query: str | SparqlQuery,
           reorder: bool = True) -> list[Solution]:
    """Run a SELECT query and return solutions as dicts (var → term).

    ``reorder=False`` disables selectivity-based pattern ordering and
    evaluates patterns in textual order (the ablation baseline).
    """
    parsed = parse_sparql(query) if isinstance(query, str) else query
    if parsed.form != "SELECT":
        raise SparqlEvaluationError("select() requires a SELECT query")
    solutions = list(_evaluate_group(graph, parsed.where, {}, reorder))
    return finalize_select(parsed, solutions)


def finalize_select(parsed: SparqlQuery,
                    solutions: list[Solution]) -> list[Solution]:
    """Apply the solution-sequence modifiers (projection, DISTINCT,
    ORDER BY, LIMIT) to raw group solutions.  Shared by this evaluator
    and the :mod:`repro.sparql` planned executor so the two paths are
    modifier-for-modifier identical."""
    if parsed.variables:
        solutions = [{name: solution[name] for name in parsed.variables
                      if name in solution}
                     for solution in solutions]
    if parsed.distinct:
        unique: list[Solution] = []
        seen = set()
        for solution in solutions:
            key = tuple(sorted(solution.items()))
            if key not in seen:
                seen.add(key)
                unique.append(solution)
        solutions = unique
    if parsed.order_by:
        solutions.sort(key=lambda s: _sort_key(s.get(parsed.order_by)),
                       reverse=parsed.descending)
    if parsed.limit is not None:
        solutions = solutions[:parsed.limit]
    return solutions


def _sort_key(term: Term | None):
    if term is None:
        return (0, "")
    if isinstance(term, Literal):
        python = term.to_python()
        if isinstance(python, (int, float)) and not isinstance(python, bool):
            return (1, float(python))
        return (2, str(python))
    return (3, str(term))


def ask(graph: Graph, query: str | SparqlQuery) -> bool:
    """Run an ASK query."""
    parsed = parse_sparql(query) if isinstance(query, str) else query
    if parsed.form != "ASK":
        raise SparqlEvaluationError("ask() requires an ASK query")
    for _ in _evaluate_group(graph, parsed.where, {}):
        return True
    return False
