"""An RDF/XML subset: embedding RDF graphs in XML messages.

Section 3 of the paper allows variables to be bound to "XML or RDF
fragments".  XML fragments travel natively in ``log:`` markup; RDF
fragments are serialized in this RDF/XML subset (the normalized
``rdf:Description`` form) so that a graph — or a slice of one — can be a
binding value, cross a service boundary, and be reassembled.

Supported constructs: ``rdf:RDF`` with ``rdf:Description`` children,
``rdf:about`` / ``rdf:nodeID`` subjects, property elements with
``rdf:resource`` / ``rdf:nodeID`` object attributes or literal content
with optional ``rdf:datatype`` / ``xml:lang``.
"""

from __future__ import annotations

from ..xmlmodel import Element, QName, Text, XML_NS
from .graph import Graph
from .terms import BNode, Literal, RDF, Term, URIRef

__all__ = ["RDF_SYNTAX_NS", "graph_to_rdfxml", "rdfxml_to_graph",
           "describe_subject", "RdfXmlError"]

RDF_SYNTAX_NS = str(RDF)

_RDF_ROOT = QName(RDF_SYNTAX_NS, "RDF")
_DESCRIPTION = QName(RDF_SYNTAX_NS, "Description")
_ABOUT = QName(RDF_SYNTAX_NS, "about")
_NODE_ID = QName(RDF_SYNTAX_NS, "nodeID")
_RESOURCE = QName(RDF_SYNTAX_NS, "resource")
_DATATYPE = QName(RDF_SYNTAX_NS, "datatype")
_LANG = QName(XML_NS, "lang")


class RdfXmlError(ValueError):
    """Raised on unsupported or malformed RDF/XML input."""


def _split_predicate(predicate: URIRef) -> QName:
    text = str(predicate)
    for separator in ("#", "/", ":"):
        index = text.rfind(separator)
        if 0 <= index < len(text) - 1:
            local = text[index + 1:]
            if local and (local[0].isalpha() or local[0] == "_"):
                return QName(text[:index + 1], local)
    raise RdfXmlError(f"cannot derive a QName from predicate {predicate!r}")


def graph_to_rdfxml(graph: Graph, subjects: list[Term] | None = None) \
        -> Element:
    """Serialize a graph (or the descriptions of ``subjects``) to RDF/XML."""
    root = Element(_RDF_ROOT, nsdecls={"rdf": RDF_SYNTAX_NS})
    chosen = subjects if subjects is not None else sorted(
        {s for s, _, _ in graph}, key=str)
    for subject in chosen:
        description = Element(_DESCRIPTION)
        if isinstance(subject, BNode):
            description.set(_NODE_ID, str(subject))
        else:
            description.set(_ABOUT, str(subject))
        triples = sorted(graph.triples(subject, None, None),
                         key=lambda t: (str(t[1]), str(t[2])))
        for _, predicate, obj in triples:
            property_element = Element(_split_predicate(predicate))
            if isinstance(obj, URIRef):
                property_element.set(_RESOURCE, str(obj))
            elif isinstance(obj, BNode):
                property_element.set(_NODE_ID, str(obj))
            else:
                assert isinstance(obj, Literal)
                if obj.datatype:
                    property_element.set(_DATATYPE, str(obj.datatype))
                if obj.language:
                    property_element.set(_LANG, obj.language)
                property_element.append(Text(obj.lexical))
            description.append(property_element)
        root.append(description)
    return root


def describe_subject(graph: Graph, subject: Term) -> Element:
    """The RDF/XML description of one subject (an embeddable fragment)."""
    return graph_to_rdfxml(graph, subjects=[subject])


def rdfxml_to_graph(element: Element, graph: Graph | None = None) -> Graph:
    """Parse an RDF/XML (subset) element back into a graph."""
    if element.name != _RDF_ROOT:
        raise RdfXmlError(f"expected rdf:RDF, got {element.name.clark}")
    graph = graph if graph is not None else Graph()
    for description in element.elements():
        if description.name != _DESCRIPTION:
            raise RdfXmlError(
                f"only rdf:Description children are supported, got "
                f"{description.name.clark}")
        about = description.get(_ABOUT)
        node_id = description.get(_NODE_ID)
        if about is not None:
            subject: Term = URIRef(about)
        elif node_id is not None:
            subject = BNode(node_id)
        else:
            subject = BNode()
        for property_element in description.elements():
            name = property_element.name
            if name.uri is None:
                raise RdfXmlError(
                    f"property element {name.local!r} has no namespace")
            predicate = URIRef(name.uri + name.local)
            resource = property_element.get(_RESOURCE)
            object_node = property_element.get(_NODE_ID)
            if resource is not None:
                obj: Term = URIRef(resource)
            elif object_node is not None:
                obj = BNode(object_node)
            else:
                datatype = property_element.get(_DATATYPE)
                language = property_element.get(_LANG)
                obj = Literal(property_element.text(),
                              datatype=URIRef(datatype) if datatype else None,
                              language=language)
            graph.add(subject, predicate, obj)
    return graph
