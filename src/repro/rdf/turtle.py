"""A Turtle-subset parser and N-Triples writer.

Supported Turtle features: ``@prefix`` / ``@base``, prefixed names,
``<uri>`` references, plain/typed/language literals, numeric and boolean
shorthand, ``a``, predicate lists (``;``), object lists (``,``), blank
node labels (``_:x``) and anonymous blank nodes (``[ ... ]``).
"""

from __future__ import annotations

from .graph import Graph
from .terms import BNode, Literal, Term, URIRef, XSD

__all__ = ["TurtleSyntaxError", "parse_turtle", "to_ntriples"]

_ESCAPES = {"t": "\t", "n": "\n", "r": "\r", '"': '"', "\\": "\\", "'": "'"}


class TurtleSyntaxError(ValueError):
    """Raised on malformed Turtle input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


class _TurtleParser:
    def __init__(self, text: str, graph: Graph) -> None:
        self.text = text
        self.pos = 0
        self.graph = graph
        self.prefixes: dict[str, str] = dict(graph.namespaces)
        self.base = ""
        self.labelled_bnodes: dict[str, BNode] = {}

    def error(self, message: str) -> TurtleSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        return TurtleSyntaxError(message, line)

    # -- scanning ------------------------------------------------------------

    def _skip(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch == "#":
                end = text.find("\n", self.pos)
                self.pos = len(text) if end < 0 else end + 1
            else:
                return

    @property
    def _eof(self) -> bool:
        self._skip()
        return self.pos >= len(self.text)

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expect(self, literal: str) -> None:
        self._skip()
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def _match_word(self, word: str) -> bool:
        self._skip()
        end = self.pos + len(word)
        if self.text.startswith(word, self.pos) and (
                end >= len(self.text) or not self.text[end].isalnum()):
            self.pos = end
            return True
        return False

    # -- entry ---------------------------------------------------------------

    def parse(self) -> None:
        while not self._eof:
            if self._match_word("@prefix") or self._match_word("PREFIX"):
                self._directive_prefix()
            elif self._match_word("@base") or self._match_word("BASE"):
                self.base = self._iriref()
                if self._peek() == ".":
                    self.pos += 1
            else:
                self._triples_block()

    def _directive_prefix(self) -> None:
        self._skip()
        prefix = self._pname_prefix()
        self._expect(":")
        uri = self._iriref()
        self.prefixes[prefix] = uri
        self.graph.bind(prefix, uri)
        if self._peek() == ".":
            self.pos += 1

    def _pname_prefix(self) -> str:
        self._skip()
        start = self.pos
        while self.pos < len(self.text) and (
                self.text[self.pos].isalnum()
                or self.text[self.pos] in "_-."):
            self.pos += 1
        return self.text[start:self.pos]

    # -- triples ---------------------------------------------------------------

    def _triples_block(self) -> None:
        subject = self._subject()
        self._predicate_object_list(subject)
        self._expect(".")

    def _predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                self.graph.add(subject, predicate, obj)
                if self._peek() == ",":
                    self.pos += 1
                else:
                    break
            if self._peek() == ";":
                self.pos += 1
                # tolerate trailing ';' before '.' or ']'
                if self._peek() in (".", "]", ""):
                    return
            else:
                return

    def _subject(self) -> Term:
        ch = self._peek()
        if ch == "<":
            return URIRef(self._iriref())
        if ch == "[":
            return self._anon_bnode()
        if self.text.startswith("_:", self.pos):
            return self._bnode_label()
        return self._prefixed_name()

    def _predicate(self) -> URIRef:
        if self._match_word("a"):
            from .terms import RDF
            return RDF.type
        ch = self._peek()
        if ch == "<":
            return URIRef(self._iriref())
        name = self._prefixed_name()
        if not isinstance(name, URIRef):
            raise self.error("predicate must be an IRI")
        return name

    def _object(self) -> Term:
        ch = self._peek()
        if ch == "<":
            return URIRef(self._iriref())
        if ch == "[":
            return self._anon_bnode()
        if ch in "\"'":
            return self._literal(ch)
        if ch.isdigit() or ch in "+-":
            return self._number()
        if self.text.startswith("_:", self.pos):
            return self._bnode_label()
        if self._match_word("true"):
            return Literal("true", datatype=XSD.boolean)
        if self._match_word("false"):
            return Literal("false", datatype=XSD.boolean)
        return self._prefixed_name()

    # -- terms ---------------------------------------------------------------------

    def _iriref(self) -> str:
        self._expect("<")
        end = self.text.find(">", self.pos)
        if end < 0:
            raise self.error("unterminated IRI")
        iri = self.text[self.pos:end]
        self.pos = end + 1
        if self.base and not _is_absolute(iri):
            return self.base + iri
        return iri

    def _prefixed_name(self) -> URIRef:
        self._skip()
        prefix = self._pname_prefix()
        if self._peek() != ":":
            raise self.error(f"expected a term, found {self._peek()!r}")
        self.pos += 1
        start = self.pos
        while self.pos < len(self.text) and (
                self.text[self.pos].isalnum()
                or self.text[self.pos] in "_-."):
            self.pos += 1
        local = self.text[start:self.pos]
        if local.endswith("."):
            # a trailing '.' terminates the statement, not the name
            local = local[:-1]
            self.pos -= 1
        if prefix not in self.prefixes:
            raise self.error(f"undeclared prefix {prefix!r}")
        return URIRef(self.prefixes[prefix] + local)

    def _bnode_label(self) -> BNode:
        self._skip()
        self._expect("_:")
        start = self.pos
        while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "_"):
            self.pos += 1
        label = self.text[start:self.pos]
        if not label:
            raise self.error("empty blank node label")
        if label not in self.labelled_bnodes:
            self.labelled_bnodes[label] = BNode(label)
        return self.labelled_bnodes[label]

    def _anon_bnode(self) -> BNode:
        self._expect("[")
        node = BNode()
        if self._peek() != "]":
            self._predicate_object_list(node)
        self._expect("]")
        return node

    def _literal(self, quote: str) -> Literal:
        self._expect(quote)
        out: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated literal")
            ch = self.text[self.pos]
            if ch == "\\":
                escape = self.text[self.pos + 1:self.pos + 2]
                if escape in _ESCAPES:
                    out.append(_ESCAPES[escape])
                    self.pos += 2
                    continue
                if escape == "u":
                    out.append(chr(int(self.text[self.pos + 2:self.pos + 6],
                                       16)))
                    self.pos += 6
                    continue
                raise self.error(f"unknown escape \\{escape}")
            if ch == quote:
                self.pos += 1
                break
            out.append(ch)
            self.pos += 1
        lexical = "".join(out)
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            datatype = self._predicate() if self._peek() != "<" else URIRef(
                self._iriref())
            return Literal(lexical, datatype=datatype)
        if self.text.startswith("@", self.pos):
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                    self.text[self.pos].isalnum() or self.text[self.pos] == "-"):
                self.pos += 1
            return Literal(lexical, language=self.text[start:self.pos])
        return Literal(lexical)

    def _number(self) -> Literal:
        self._skip()
        start = self.pos
        if self.text[self.pos] in "+-":
            self.pos += 1
        seen_dot = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and self.pos + 1 < len(self.text) \
                    and self.text[self.pos + 1].isdigit():
                seen_dot = True
                self.pos += 1
            else:
                break
        lexical = self.text[start:self.pos]
        datatype = XSD.decimal if seen_dot else XSD.integer
        if seen_dot:
            return Literal(lexical, datatype=XSD.double)
        return Literal(lexical, datatype=datatype)


def _is_absolute(iri: str) -> bool:
    scheme, sep, _ = iri.partition(":")
    return bool(sep) and scheme.isalnum()


def parse_turtle(text: str, graph: Graph | None = None) -> Graph:
    """Parse Turtle text into a (possibly fresh) graph."""
    graph = graph if graph is not None else Graph()
    _TurtleParser(text, graph).parse()
    return graph


def _nt_term(term: Term) -> str:
    if isinstance(term, URIRef):
        return f"<{term}>"
    if isinstance(term, BNode):
        return f"_:{term}"
    assert isinstance(term, Literal)
    escaped = (term.lexical.replace("\\", "\\\\").replace('"', '\\"')
               .replace("\n", "\\n"))
    if term.datatype:
        return f'"{escaped}"^^<{term.datatype}>'
    if term.language:
        return f'"{escaped}"@{term.language}'
    return f'"{escaped}"'


def to_ntriples(graph: Graph) -> str:
    """Serialize a graph as sorted N-Triples (deterministic output)."""
    lines = sorted(f"{_nt_term(s)} {_nt_term(p)} {_nt_term(o)} ."
                   for s, p, o in graph)
    return "\n".join(lines) + ("\n" if lines else "")
