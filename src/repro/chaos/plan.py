"""Seeded, deterministic fault plans (PROTOCOL.md §12).

A :class:`FaultPlan` is a pure function from ``(seed, replica, request
index)`` to an injected fault: the decision for request *n* against
replica *r* is derived by hashing, not drawn from mutable RNG state, so
the same plan replays *exactly* — across runs, processes and Python
versions — regardless of request interleaving.  That is the property
the chaos tests assert and the availability bench relies on: a failure
found under ``FaultPlan(seed=7)`` is reproduced by constructing
``FaultPlan(seed=7)`` again, nothing else.

Fault taxonomy (applied by :class:`~repro.chaos.ChaosTransport` on the
client side or :class:`~repro.chaos.ChaosService` on the server side):

* ``latency``   — a delay spike before the request is forwarded;
* ``reset``     — the connection dies without a response;
* ``blackhole`` — the request hangs (bounded by ``blackhole_hold``),
  then the socket dies — the slow-failure mode that stacks timeouts;
* ``error``     — an injected HTTP error status: 502/503/504 replay the
  §11 *transient* path, anything else the *service-reported* path;
* ``slow_body`` — the response arrives, but drips in slowly.

Replica kill/restart is modeled separately as :class:`KillWindow`
intervals on the plan's logical clock (seconds since the run's epoch),
because killing a replica is a state the *harness* enacts — by stopping
a real :class:`~repro.services.HttpServiceServer` or by having the
transport black-hole every request in the window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

__all__ = ["FAULT_KINDS", "FaultDecision", "KillWindow", "FaultPlan"]

FAULT_KINDS = ("latency", "reset", "blackhole", "error", "slow_body")


@dataclass(frozen=True)
class FaultDecision:
    """One injected fault: what to do to one request."""

    kind: str
    #: seconds — the spike for ``latency``, the drip for ``slow_body``
    delay: float = 0.0
    #: HTTP status for ``error`` faults
    status: int = 0


@dataclass(frozen=True)
class KillWindow:
    """Replica *replica* is dead from ``start`` for ``duration`` seconds
    (plan-relative logical time)."""

    replica: str
    start: float
    duration: float

    def covers(self, replica: str, elapsed: float) -> bool:
        return (replica == self.replica
                and self.start <= elapsed < self.start + self.duration)


class FaultPlan:
    """A deterministic schedule of injected faults.

    Rates are per-request probabilities (summing to at most 1); the
    fault kind and its parameters for request ``index`` against
    ``replica`` are fixed by ``seed`` alone.  ``decision()`` is pure —
    calling it twice, in any order, from any thread, yields the same
    answer, which is what makes a chaos run replayable.
    """

    def __init__(self, seed: int, *,
                 latency_rate: float = 0.0,
                 latency_range: tuple[float, float] = (0.02, 0.2),
                 reset_rate: float = 0.0,
                 blackhole_rate: float = 0.0,
                 blackhole_hold: float = 0.5,
                 error_rate: float = 0.0,
                 error_statuses: Sequence[int] = (500, 503),
                 slow_body_rate: float = 0.0,
                 slow_body_range: tuple[float, float] = (0.02, 0.1),
                 kills: Sequence[KillWindow] = ()) -> None:
        total = (latency_rate + reset_rate + blackhole_rate + error_rate
                 + slow_body_rate)
        if not 0.0 <= total <= 1.0:
            raise ValueError("fault rates must be in [0, 1] and sum to <= 1")
        self.seed = seed
        self.latency_range = latency_range
        self.blackhole_hold = blackhole_hold
        self.error_statuses = tuple(error_statuses)
        self.slow_body_range = slow_body_range
        self.kills = tuple(kills)
        #: cumulative (threshold, kind) ladder walked by decision()
        self._ladder: list[tuple[float, str]] = []
        edge = 0.0
        for rate, kind in ((latency_rate, "latency"),
                           (reset_rate, "reset"),
                           (blackhole_rate, "blackhole"),
                           (error_rate, "error"),
                           (slow_body_rate, "slow_body")):
            edge += rate
            self._ladder.append((edge, kind))

    def _unit(self, *parts) -> float:
        """Uniform [0, 1) from a stable hash of ``(seed, *parts)``."""
        key = repr((self.seed,) + parts).encode()
        digest = hashlib.sha256(key).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def decision(self, replica: str, index: int) -> FaultDecision | None:
        """The fault injected into request ``index`` against ``replica``
        (``None`` = the request passes untouched)."""
        roll = self._unit(replica, index, "kind")
        kind = None
        for edge, candidate in self._ladder:
            if roll < edge:
                kind = candidate
                break
        if kind is None:
            return None
        scale = self._unit(replica, index, "param")
        if kind == "latency":
            low, high = self.latency_range
            return FaultDecision("latency", delay=low + scale * (high - low))
        if kind == "slow_body":
            low, high = self.slow_body_range
            return FaultDecision("slow_body",
                                 delay=low + scale * (high - low))
        if kind == "error":
            status = self.error_statuses[
                int(scale * len(self.error_statuses))
                % len(self.error_statuses)]
            return FaultDecision("error", status=status)
        if kind == "blackhole":
            return FaultDecision("blackhole", delay=self.blackhole_hold)
        return FaultDecision("reset")

    def schedule(self, replica: str, count: int) -> list[FaultDecision | None]:
        """The first ``count`` decisions for ``replica`` — the replay
        tests compare two plans' schedules element-wise."""
        return [self.decision(replica, index) for index in range(count)]

    def fingerprint(self, replicas: Sequence[str], count: int = 256) -> str:
        """Stable digest of the whole schedule across ``replicas`` —
        two runs injected the same faults iff fingerprints match."""
        digest = hashlib.sha256()
        for replica in replicas:
            digest.update(repr(self.schedule(replica, count)).encode())
        return digest.hexdigest()

    def killed(self, replica: str, elapsed: float) -> bool:
        """Is ``replica`` inside a kill window at plan time ``elapsed``?"""
        return any(window.covers(replica, elapsed) for window in self.kills)
