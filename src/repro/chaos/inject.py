"""Fault injection: enacting a :class:`~repro.chaos.FaultPlan`.

Three layers, composable but independent (PROTOCOL.md §12):

* :class:`ChaosTransport` wraps any transport on the *client* side and
  perturbs requests before/after they reach the real transport.  This
  is the cheap harness: no sockets are harmed, yet the GRH sees the
  exact §11 failure taxonomy (``TransportError`` for connection-level
  faults, ``ServiceStatusError`` for injected error statuses).
* :class:`ChaosService` wraps an aware handler on the *server* side,
  inside a real :class:`~repro.services.HttpServiceServer` — injected
  resets genuinely kill TCP connections mid-request, which is how the
  failover × durability test provokes "the action ran but the ack
  died" (§12.4).
* :class:`ReplicaCluster` runs N real HTTP replicas of one service
  with kill/restart on *stable* ports, so a restarted replica comes
  back on its registered address.

Determinism: every injection point keeps a per-replica request
counter; fault ``index`` is that counter, so a run that issues the same
request sequence replays the same faults.  The ``injected`` log records
``(replica, index, kind)`` tuples for the replay assertions.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..services.transports import (AwareHandler, HttpServiceServer,
                                   OpaqueHandler, ServiceStatusError,
                                   TransportError)
from ..xmlmodel import Element
from .plan import FaultDecision, FaultPlan

__all__ = ["ChaosTransport", "ChaosService", "ReplicaCluster"]


class _FaultCounter:
    """Thread-safe per-key monotonic request counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def next(self, key: str) -> int:
        with self._lock:
            index = self._counts.get(key, 0)
            self._counts[key] = index + 1
            return index

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class ChaosTransport:
    """A transport decorator that injects the plan's faults client-side.

    ``alias`` maps concrete addresses (ephemeral localhost ports) onto
    the stable replica names the plan was authored against ("r0",
    "r1", ...) so the same plan applies across runs whose ports differ.
    Unaliased addresses fall through under their own name.

    Faults are injected *before* the wrapped transport is invoked
    (except ``slow_body``, which delays after a successful response),
    so a reset consumes no real network work.  Kill windows — measured
    from :meth:`start` on the injected clock — black-hole every request
    to the dead replica, which is how a cluster-less test simulates a
    crashed endpoint.
    """

    def __init__(self, inner, plan: FaultPlan, *,
                 alias: dict[str, str] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.inner = inner
        self.plan = plan
        self.alias = dict(alias or {})
        self.clock = clock
        self.sleep = sleep
        self._counter = _FaultCounter()
        self._epoch: float | None = None
        #: replay log — (replica, index, kind) per injected fault
        self.injected: list[tuple[str, int, str]] = []
        self._log_lock = threading.Lock()

    # -- harness controls ----------------------------------------------------

    def start(self) -> None:
        """Start the kill-window clock (idempotent)."""
        if self._epoch is None:
            self._epoch = self.clock()

    def elapsed(self) -> float:
        return 0.0 if self._epoch is None else self.clock() - self._epoch

    def request_counts(self) -> dict[str, int]:
        return self._counter.snapshot()

    # -- injection -----------------------------------------------------------

    def _key(self, address: str) -> str:
        return self.alias.get(address, address)

    def _record(self, replica: str, index: int, kind: str) -> None:
        with self._log_lock:
            self.injected.append((replica, index, kind))

    def _perturb(self, address: str) -> FaultDecision | None:
        """Apply the pre-dispatch fault for this request; returns the
        decision when post-dispatch work (slow_body) remains."""
        replica = self._key(address)
        index = self._counter.next(replica)
        if self._epoch is not None and self.plan.killed(replica,
                                                        self.elapsed()):
            self._record(replica, index, "killed")
            raise TransportError(
                f"cannot reach {address!r}: replica killed by fault plan")
        decision = self.plan.decision(replica, index)
        if decision is None:
            return None
        self._record(replica, index, decision.kind)
        if decision.kind == "latency":
            self.sleep(decision.delay)
            return None
        if decision.kind == "reset":
            raise TransportError(
                f"cannot reach {address!r}: injected connection reset")
        if decision.kind == "blackhole":
            self.sleep(decision.delay)
            raise TransportError(
                f"cannot reach {address!r}: injected blackhole timed out")
        if decision.kind == "error":
            # mirror transports._raise_for_status: gateway statuses stay
            # transient, anything else is the service's own report
            if decision.status in (502, 503, 504):
                raise TransportError(
                    f"cannot reach {address!r}: HTTP {decision.status} "
                    f"injected")
            raise ServiceStatusError(
                decision.status,
                f"HTTP {decision.status} injected from {address!r}")
        return decision  # slow_body: delay after the real call

    def _after(self, decision: FaultDecision | None) -> None:
        if decision is not None and decision.kind == "slow_body":
            self.sleep(decision.delay)

    # -- the transport contract ----------------------------------------------

    def dispatches_inline(self, address: str) -> bool:
        return self.inner.dispatches_inline(address)

    def bind(self, address: str, handler: AwareHandler) -> str:
        return self.inner.bind(address, handler)

    def bind_opaque(self, address: str, handler: OpaqueHandler) -> str:
        return self.inner.bind_opaque(address, handler)

    def send(self, address: str, message: Element,
             timeout: float | None = None) -> Element:
        decision = self._perturb(address)
        result = self.inner.send(address, message, timeout=timeout)
        self._after(decision)
        return result

    def fetch(self, address: str, query: str,
              timeout: float | None = None) -> str:
        decision = self._perturb(address)
        result = self.inner.fetch(address, query, timeout=timeout)
        self._after(decision)
        return result

    def supports_batch(self, address: str) -> bool:
        return self.inner.supports_batch(address)

    def send_batch(self, address: str, envelope: Element,
                   timeout: float | None = None) -> Element:
        decision = self._perturb(address)
        result = self.inner.send_batch(address, envelope, timeout=timeout)
        self._after(decision)
        return result

    def pool_stats(self) -> dict[str, dict]:
        stats = getattr(self.inner, "pool_stats", None)
        return stats() if stats is not None else {}

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()


class ChaosService:
    """An aware-handler decorator that injects faults server-side.

    Lives inside a real :class:`HttpServiceServer`, so an injected
    ``reset`` raises :class:`ConnectionResetError` — which the HTTP
    handler re-raises to abort the socket without answering.  Crucially
    the wrapped handler *may already have run* when the reset fires
    (``reset_after_work=True``): the client saw a connection-level
    failure, the service saw a completed action.  That is the ambiguity
    the §12.4 failover × durability test exercises — only service-side
    dedup makes re-dispatch after such a failure exactly-once.
    """

    def __init__(self, handler: AwareHandler, plan: FaultPlan, replica: str,
                 *, reset_after_work: bool = False,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.handler = handler
        self.plan = plan
        self.replica = replica
        self.reset_after_work = reset_after_work
        self.sleep = sleep
        self._counter = _FaultCounter()
        self.injected: list[tuple[str, int, str]] = []
        self._log_lock = threading.Lock()

    def __call__(self, message: Element) -> Element:
        index = self._counter.next(self.replica)
        decision = self.plan.decision(self.replica, index)
        if decision is None:
            return self.handler(message)
        with self._log_lock:
            self.injected.append((self.replica, index, decision.kind))
        if decision.kind == "latency":
            self.sleep(decision.delay)
            return self.handler(message)
        if decision.kind == "slow_body":
            result = self.handler(message)
            self.sleep(decision.delay)
            return result
        if decision.kind == "reset":
            if self.reset_after_work:
                # the work happens, the ack does not: the client cannot
                # distinguish this from a pre-dispatch failure
                self.handler(message)
            raise ConnectionResetError("chaos: injected connection reset")
        if decision.kind == "blackhole":
            self.sleep(decision.delay)
            raise ConnectionResetError("chaos: injected blackhole")
        # error: a plain exception becomes HTTP 500 + log:error, i.e.
        # the service-reported path; gateway-status injection is a
        # client-side (ChaosTransport) concern
        raise RuntimeError(
            f"chaos: injected HTTP {decision.status or 500} failure")


class ReplicaCluster:
    """N real HTTP replicas of one service, with kill/restart.

    All replicas share the *same* handler callables — the §12
    requirement for safe action failover (shared dedup memory); give
    per-replica wrappers via ``wrap`` to make them distinguishable
    (e.g. a :class:`ChaosService` per replica).

    Ports are pinned after the first start, so :meth:`restart` brings a
    killed replica back on exactly the address the registry knows.
    """

    def __init__(self, aware_handler: AwareHandler | None = None,
                 opaque_handler: OpaqueHandler | None = None,
                 count: int = 3,
                 wrap: Callable[[int, AwareHandler], AwareHandler]
                 | None = None) -> None:
        if count < 1:
            raise ValueError("a cluster needs at least one replica")
        self._handlers: list[AwareHandler | None] = [
            (wrap(index, aware_handler) if wrap and aware_handler
             else aware_handler)
            for index in range(count)]
        self._opaque = opaque_handler
        self._servers: list[HttpServiceServer | None] = [None] * count
        self._ports: list[int] = [0] * count
        self._addresses: list[str | None] = [None] * count
        self.count = count

    def start(self) -> tuple[str, ...]:
        """Start every replica; returns their addresses in order."""
        for index in range(self.count):
            if self._servers[index] is None:
                self.restart(index)
        return self.addresses

    @property
    def addresses(self) -> tuple[str, ...]:
        return tuple(address for address in self._addresses
                     if address is not None)

    def address(self, index: int) -> str:
        address = self._addresses[index]
        if address is None:
            raise RuntimeError(f"replica {index} was never started")
        return address

    def alive(self, index: int) -> bool:
        return self._servers[index] is not None

    def kill(self, index: int) -> None:
        """Stop replica ``index``; its port stays reserved for restart."""
        server = self._servers[index]
        if server is not None:
            self._servers[index] = None
            server.stop()

    def restart(self, index: int) -> str:
        """(Re)start replica ``index`` on its pinned port."""
        if self._servers[index] is not None:
            return self.address(index)
        server = HttpServiceServer(aware_handler=self._handlers[index],
                                   opaque_handler=self._opaque,
                                   port=self._ports[index])
        address = server.start()
        self._servers[index] = server
        if self._ports[index] == 0:
            self._ports[index] = int(address.rsplit(":", 1)[1].strip("/"))
            self._addresses[index] = address
        return self.address(index)

    def stop(self) -> None:
        for index in range(self.count):
            self.kill(index)

    def __enter__(self) -> "ReplicaCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
