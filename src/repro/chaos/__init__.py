"""Deterministic chaos injection for the replica/failover layer
(PROTOCOL.md §12): seeded fault plans, client- and server-side
injectors, and a kill/restart replica cluster harness."""

from .inject import ChaosService, ChaosTransport, ReplicaCluster
from .plan import FAULT_KINDS, FaultDecision, FaultPlan, KillWindow

__all__ = [
    "FAULT_KINDS", "FaultDecision", "KillWindow", "FaultPlan",
    "ChaosTransport", "ChaosService", "ReplicaCluster",
]
