"""repro — an ECA engine for heterogeneous component languages.

Reproduction of Behrends, Fritzen, May, Schubert: *"An ECA Engine for
Deploying Heterogeneous Component Languages in the Semantic Web"*
(EDBT 2006 Workshops, REWERSE project).

Subpackages
-----------
``xmlmodel``    XML node model, parser, serializer
``xpath``       XPath 1.0 subset
``xq``          XQ-lite functional query language (FLWOR subset)
``rdf``         RDF triple store, Turtle subset, SPARQL-BGP subset
``datalog``     bottom-up Datalog with stratified negation
``bindings``    variable-binding tuples / relations, log: answer markup
``events``      event model, atomic matching, SNOOP algebra, XChange-style
``conditions``  the test (condition) language
``actions``     atomic actions and a CCS-lite process algebra
``core``        rule model, ECA-ML markup, the ECA engine
``grh``         the Generic Request Handler
``services``    component-language services and transports
``domain``      the travel / car-rental application domain
``baseline``    monolithic single-language engine (benchmark baseline)
``obs``         observability: tracing, metrics, context propagation
"""

__version__ = "1.0.0"

from .bindings import Binding, Relation, Uri
from .core import (ECAEngine, ECARule, RuleInstance, RuleRepository,
                   RuleValidationError, parse_rule, rule_to_xml,
                   validate_rule)
from .grh import (ComponentSpec, GenericRequestHandler, LanguageDescriptor,
                  LanguageRegistry)
from .obs import MetricsRegistry, Observability
from .services import Deployment, standard_deployment

__all__ = [
    "__version__",
    "ECAEngine", "ECARule", "RuleInstance", "RuleRepository",
    "parse_rule", "rule_to_xml", "validate_rule", "RuleValidationError",
    "GenericRequestHandler", "LanguageRegistry", "LanguageDescriptor",
    "ComponentSpec",
    "Binding", "Relation", "Uri",
    "Deployment", "standard_deployment",
    "Observability", "MetricsRegistry",
]
