"""A monolithic ECA engine: the ablation baseline for the modular design.

This engine hard-wires everything the paper's architecture factors out:
one fixed event language (atomic patterns), one fixed query interface
(Python callables over in-memory data), a fixed test language and direct
action execution.  No Generic Request Handler, no language registry, no
XML messages on any boundary — components are plain Python objects called
directly.

It exists to *measure* what the modular architecture costs (BENCH-T4 in
DESIGN.md): the same rules run on both engines, and the throughput gap is
the price of namespace dispatch + message serialization + service
autonomy.  It is intentionally *not* extensible: adding a new component
language means editing this engine — which is exactly the paper's
argument for the modular design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..bindings import Binding, Relation
from ..events import AtomicPattern, Event, EventStream

__all__ = ["MonolithicRule", "MonolithicEngine", "QueryFunction"]

#: A hard-wired query: bindings-tuple in, contribution relation out.
QueryFunction = Callable[[Binding], Iterable[dict]]


@dataclass(frozen=True)
class MonolithicRule:
    """A rule whose components are Python callables, not languages."""

    rule_id: str
    pattern: AtomicPattern
    queries: tuple[QueryFunction, ...] = ()
    test: Callable[[Binding], bool] | None = None
    action: Callable[[Binding], None] = lambda binding: None


@dataclass
class MonolithicEngine:
    """Evaluates hard-wired rules directly over an event stream."""

    rules: dict[str, MonolithicRule] = field(default_factory=dict)
    stats: dict = field(default_factory=lambda: {
        "detections": 0, "completed": 0, "dead": 0, "actions": 0})

    def register_rule(self, rule: MonolithicRule) -> str:
        if rule.rule_id in self.rules:
            raise ValueError(f"rule {rule.rule_id!r} already registered")
        self.rules[rule.rule_id] = rule
        return rule.rule_id

    def attach(self, stream: EventStream) -> None:
        stream.subscribe(self.feed)

    def feed(self, event: Event) -> None:
        for rule in self.rules.values():
            occurrence = rule.pattern.match(event)
            if occurrence is None:
                continue
            self.stats["detections"] += 1
            self._evaluate(rule, occurrence.bindings)

    def _evaluate(self, rule: MonolithicRule, relation: Relation) -> None:
        for query in rule.queries:
            relation = relation.extend_many(query)
            if not relation:
                self.stats["dead"] += 1
                return
        if rule.test is not None:
            relation = relation.select(rule.test)
            if not relation:
                self.stats["dead"] += 1
                return
        for binding in relation:
            rule.action(binding)
            self.stats["actions"] += 1
        self.stats["completed"] += 1
