"""Baseline: a monolithic, hard-wired ECA engine (benchmark comparator)."""

from .monolithic import MonolithicEngine, MonolithicRule, QueryFunction

__all__ = ["MonolithicEngine", "MonolithicRule", "QueryFunction"]
