"""Parser for Datalog programs and queries.

Syntax::

    % facts
    owns("John Doe", golf).
    class(golf, "B").

    % rules (body: atoms, negated atoms, comparisons)
    offer(P, C) :- books(P, Dest), owns(P, Car), class(Car, K),
                   available(C, Dest), class(C, K), not blacklisted(P).

Variables start with an uppercase letter or ``_``; constants are
lowercase identifiers, quoted strings or numbers.  ``%`` starts a
line comment.
"""

from __future__ import annotations

from .ast import (Atom, BodyLiteral, Comparison, Const, DatalogError, Program,
                  Rule, Term, Var)

__all__ = ["DatalogSyntaxError", "parse_program", "parse_atom"]

_COMPARATORS = ("!=", "<=", ">=", "=", "<", ">")


class DatalogSyntaxError(DatalogError):
    """Raised on malformed Datalog input."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"{message} (line {line})")
        self.line = line


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> DatalogSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        return DatalogSyntaxError(message, line)

    def _skip(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif ch == "%":
                end = text.find("\n", self.pos)
                self.pos = len(text) if end < 0 else end + 1
            else:
                return

    @property
    def eof(self) -> bool:
        self._skip()
        return self.pos >= len(self.text)

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expect(self, literal: str) -> None:
        self._skip()
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def _match(self, literal: str) -> bool:
        self._skip()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def _identifier(self) -> str:
        self._skip()
        start = self.pos
        text = self.text
        if self.pos < len(text) and (text[self.pos].isalpha()
                                     or text[self.pos] == "_"):
            self.pos += 1
            while self.pos < len(text) and (text[self.pos].isalnum()
                                            or text[self.pos] == "_"):
                self.pos += 1
        if start == self.pos:
            raise self.error("expected an identifier")
        return text[start:self.pos]

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while not self.eof:
            program.add(self._rule())
        return program

    def _rule(self) -> Rule:
        head = self._atom()
        body: list[BodyLiteral | Comparison] = []
        if self._match(":-"):
            body.append(self._body_item())
            while self._match(","):
                body.append(self._body_item())
        self._expect(".")
        return Rule(head, tuple(body))

    def _body_item(self) -> BodyLiteral | Comparison:
        self._skip()
        if self.text.startswith("not", self.pos) and not (
                self.pos + 3 < len(self.text)
                and (self.text[self.pos + 3].isalnum()
                     or self.text[self.pos + 3] == "_")):
            self.pos += 3
            return BodyLiteral(self._atom(), negated=True)
        # lookahead: a term followed by a comparator is a comparison
        saved = self.pos
        left = self._term()
        self._skip()
        for op in _COMPARATORS:
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                right = self._term()
                return Comparison(op, left, right)
        self.pos = saved
        return BodyLiteral(self._atom())

    def _atom(self) -> Atom:
        predicate = self._identifier()
        if predicate[0].isupper():
            raise self.error(
                f"predicate names must be lowercase: {predicate!r}")
        arguments: list[Term] = []
        self._expect("(")
        if self._peek() != ")":
            arguments.append(self._term())
            while self._match(","):
                arguments.append(self._term())
        self._expect(")")
        return Atom(predicate, tuple(arguments))

    def _term(self) -> Term:
        ch = self._peek()
        if ch == '"' or ch == "'":
            return Const(self._string(ch))
        if ch.isdigit() or ch == "-":
            return self._number()
        name = self._identifier()
        if name[0].isupper() or name[0] == "_":
            return Var(name)
        return Const(name)

    def _string(self, quote: str) -> str:
        self._expect(quote)
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated string")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return value

    def _number(self) -> Const:
        self._skip()
        start = self.pos
        if self.text[self.pos] == "-":
            self.pos += 1
        seen_dot = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch.isdigit():
                self.pos += 1
            elif ch == "." and not seen_dot and self.pos + 1 < len(self.text) \
                    and self.text[self.pos + 1].isdigit():
                seen_dot = True
                self.pos += 1
            else:
                break
        lexical = self.text[start:self.pos]
        if lexical in ("", "-"):
            raise self.error("expected a number")
        return Const(float(lexical) if seen_dot else int(lexical))


def parse_program(text: str) -> Program:
    """Parse a Datalog program (facts and rules)."""
    return _Parser(text).parse_program()


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. a query goal ``owns("John Doe", Car)``."""
    parser = _Parser(text)
    atom = parser._atom()
    parser._match(".")
    if not parser.eof:
        raise parser.error("trailing input after atom")
    return atom
