"""Bottom-up Datalog evaluation: semi-naive iteration, stratified negation.

This realizes the "classical deductive rules" semantics that Section 3 of
the paper takes as the model for ECA rules: the body produces a set of
tuples of variable bindings; the head is instantiated once per tuple.
"""

from __future__ import annotations

from typing import Iterable

from .ast import (Atom, BodyLiteral, Comparison, Const, DatalogError, Program,
                  Rule, Term, Var)
from .parser import parse_atom, parse_program

__all__ = ["DatalogEngine", "StratificationError", "SafetyError", "evaluate",
           "query"]

Fact = tuple[str, tuple]
Substitution = dict[str, object]


class StratificationError(DatalogError):
    """The program has negation inside a recursive cycle."""


class SafetyError(DatalogError):
    """A rule uses a variable that is not bound by a positive body atom."""


def _check_safety(rule: Rule) -> None:
    positive: set[str] = set()
    for item in rule.body:
        if isinstance(item, BodyLiteral) and not item.negated:
            positive |= item.variables()
    needed = set(rule.head.variables())
    for item in rule.body:
        if isinstance(item, (Comparison,)):
            needed |= item.variables()
        elif item.negated:
            needed |= item.variables()
    unsafe = needed - positive
    if unsafe:
        raise SafetyError(
            f"unsafe variables {sorted(unsafe)} in rule {rule!r}: every "
            "variable in the head, a negated literal or a comparison must "
            "occur in a positive body literal")


def _stratify(program: Program) -> list[set[tuple[str, int]]]:
    """Partition predicates into strata; negation must not be recursive."""
    signatures = program.all_signatures()
    # edges: head depends on body predicates (weight 1 through negation)
    positive_deps: dict[tuple, set[tuple]] = {s: set() for s in signatures}
    negative_deps: dict[tuple, set[tuple]] = {s: set() for s in signatures}
    for rule in program.rules:
        for item in rule.body:
            if not isinstance(item, BodyLiteral):
                continue
            target = negative_deps if item.negated else positive_deps
            target[rule.head.signature].add(item.atom.signature)

    stratum: dict[tuple, int] = {s: 0 for s in signatures}
    max_stratum = max(1, len(signatures))
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > max_stratum * len(signatures) + 1:
            raise StratificationError(
                "program is not stratifiable (negation through recursion)")
        for head in signatures:
            for dep in positive_deps[head]:
                if stratum[dep] > stratum[head]:
                    stratum[head] = stratum[dep]
                    changed = True
            for dep in negative_deps[head]:
                if stratum[dep] + 1 > stratum[head]:
                    stratum[head] = stratum[dep] + 1
                    if stratum[head] >= max_stratum:
                        raise StratificationError(
                            "program is not stratifiable "
                            "(negation through recursion)")
                    changed = True
    levels = max(stratum.values(), default=0) + 1
    out: list[set[tuple[str, int]]] = [set() for _ in range(levels)]
    for signature, level in stratum.items():
        out[level].add(signature)
    return out


class DatalogEngine:
    """Evaluates a program to a fixpoint and answers queries.

    ``strategy`` selects the iteration scheme: ``"semi-naive"`` (default)
    re-derives only from the previous round's delta; ``"naive"``
    re-applies every rule to the full fact set each round.  Both reach
    the same fixpoint; the naive mode exists as the ablation baseline
    for the benchmark suite.
    """

    def __init__(self, program: Program | str,
                 strategy: str = "semi-naive") -> None:
        if isinstance(program, str):
            program = parse_program(program)
        if strategy not in ("semi-naive", "naive"):
            raise DatalogError(f"unknown evaluation strategy {strategy!r}")
        self.program = program
        self.strategy = strategy
        self.rounds = 0
        for rule in program.rules:
            _check_safety(rule)
        self._facts: dict[tuple[str, int], set[tuple]] = {}
        self._evaluated = False

    # -- fact access ------------------------------------------------------------

    def facts(self, predicate: str, arity: int) -> set[tuple]:
        self._ensure_evaluated()
        return set(self._facts.get((predicate, arity), set()))

    def _ensure_evaluated(self) -> None:
        if not self._evaluated:
            self._evaluate()
            self._evaluated = True

    # -- evaluation ----------------------------------------------------------------

    def _evaluate(self) -> None:
        strata = _stratify(self.program)
        for rule in self.program.rules:
            if rule.is_fact:
                values = tuple(_const_value(argument, rule)
                               for argument in rule.head.arguments)
                self._store(rule.head.signature, values)
        for level in strata:
            rules = [rule for rule in self.program.rules
                     if not rule.is_fact and rule.head.signature in level]
            if rules:
                self._fixpoint(rules)

    def _store(self, signature: tuple[str, int], values: tuple) -> bool:
        bucket = self._facts.setdefault(signature, set())
        if values in bucket:
            return False
        bucket.add(values)
        return True

    def _fixpoint(self, rules: list[Rule]) -> None:
        if self.strategy == "naive":
            self._naive_fixpoint(rules)
            return
        # semi-naive: track per-signature deltas between rounds
        delta: dict[tuple, set[tuple]] = {
            signature: set(facts) for signature, facts in self._facts.items()}
        first_round = True
        while True:
            self.rounds += 1
            new_delta: dict[tuple, set[tuple]] = {}
            for rule in rules:
                positive = [item for item in rule.body
                            if isinstance(item, BodyLiteral)
                            and not item.negated]
                # on later rounds, require at least one body atom to come
                # from the delta (classic semi-naive split)
                variants = range(len(positive)) if not first_round else (None,)
                produced: set[tuple] = set()
                for delta_index in variants:
                    produced |= self._apply_rule(rule, positive, delta,
                                                 delta_index)
                for values in produced:
                    if self._store(rule.head.signature, values):
                        new_delta.setdefault(rule.head.signature,
                                             set()).add(values)
            if not new_delta:
                return
            delta = new_delta
            first_round = False

    def _naive_fixpoint(self, rules: list[Rule]) -> None:
        """Re-derive everything from the full fact set each round."""
        while True:
            self.rounds += 1
            changed = False
            for rule in rules:
                positive = [item for item in rule.body
                            if isinstance(item, BodyLiteral)
                            and not item.negated]
                for values in self._apply_rule(rule, positive, {}, None):
                    if self._store(rule.head.signature, values):
                        changed = True
            if not changed:
                return

    def _apply_rule(self, rule: Rule, positive: list[BodyLiteral],
                    delta: dict[tuple, set[tuple]],
                    delta_index: int | None) -> set[tuple]:
        solutions: list[Substitution] = [{}]
        position = -1
        for item in rule.body:
            if isinstance(item, BodyLiteral) and not item.negated:
                position += 1
                use_delta = (delta_index is not None
                             and position == delta_index)
                source = (delta.get(item.atom.signature, set()) if use_delta
                          else self._facts.get(item.atom.signature, set()))
                solutions = self._join_atom(item.atom, source, solutions)
            elif isinstance(item, BodyLiteral):
                solutions = [s for s in solutions
                             if not self._matches_any(item.atom, s)]
            else:
                solutions = [s for s in solutions
                             if _compare(item, s)]
            if not solutions:
                return set()
        out: set[tuple] = set()
        for solution in solutions:
            out.add(tuple(_resolve(argument, solution)
                          for argument in rule.head.arguments))
        return out

    @staticmethod
    def _join_atom(atom: Atom, facts: Iterable[tuple],
                   solutions: list[Substitution]) -> list[Substitution]:
        next_solutions: list[Substitution] = []
        for solution in solutions:
            for values in facts:
                extended = _unify(atom, values, solution)
                if extended is not None:
                    next_solutions.append(extended)
        return next_solutions

    def _matches_any(self, atom: Atom, solution: Substitution) -> bool:
        facts = self._facts.get(atom.signature, set())
        return any(_unify(atom, values, solution) is not None
                   for values in facts)

    # -- querying -----------------------------------------------------------------------

    def query(self, goal: Atom | str) -> list[Substitution]:
        """All substitutions for the goal's variables, as dicts."""
        if isinstance(goal, str):
            goal = parse_atom(goal)
        self._ensure_evaluated()
        facts = self._facts.get(goal.signature, set())
        out: list[Substitution] = []
        seen: set[tuple] = set()
        for values in sorted(facts, key=_sort_key):
            solution = _unify(goal, values, {})
            if solution is None:
                continue
            key = tuple(sorted(solution.items()))
            if key not in seen:
                seen.add(key)
                out.append(solution)
        return out

    def holds(self, goal: Atom | str) -> bool:
        """True when the (possibly ground) goal has at least one answer."""
        return bool(self.query(goal))


def _sort_key(values: tuple):
    return tuple((type(v).__name__, str(v)) for v in values)


def _const_value(term: Term, rule: Rule):
    if isinstance(term, Var):
        raise SafetyError(f"fact with variable: {rule!r}")
    return term.value


def _resolve(term: Term, solution: Substitution):
    if isinstance(term, Var):
        return solution[term.name]
    return term.value


def _unify(atom: Atom, values: tuple,
           solution: Substitution) -> Substitution | None:
    extended: Substitution | None = None
    current = solution
    for term, value in zip(atom.arguments, values):
        if isinstance(term, Const):
            if not _values_equal(term.value, value):
                return None
        else:
            bound = current.get(term.name, _MISSING)
            if bound is _MISSING:
                if extended is None:
                    extended = dict(solution)
                    current = extended
                extended[term.name] = value
            elif not _values_equal(bound, value):
                return None
    return current if extended is not None else dict(solution)


_MISSING = object()


def _values_equal(left, right) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num and right_num:
        return float(left) == float(right)
    if left_num != right_num:
        return False
    return left == right


def _compare(comparison: Comparison, solution: Substitution) -> bool:
    left = _resolve(comparison.left, solution)
    right = _resolve(comparison.right, solution)
    op = comparison.op
    if op == "=":
        return _values_equal(left, right)
    if op == "!=":
        return not _values_equal(left, right)
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num != right_num:
        raise DatalogError(
            f"cannot order {left!r} and {right!r} (mixed types)")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def evaluate(program: Program | str) -> DatalogEngine:
    """Build an engine and force evaluation to the fixpoint."""
    engine = DatalogEngine(program)
    engine._ensure_evaluated()
    return engine


def query(program: Program | str, goal: Atom | str) -> list[Substitution]:
    """One-shot: evaluate ``program`` and answer ``goal``."""
    return DatalogEngine(program).query(goal)
