"""Datalog: bottom-up deductive rules with stratified negation.

The Logic-Programming query-language family of the paper's Section 3
("languages match free variables, e.g. Datalog, F-Logic, XPathLog,
Xcerpt"); its bottom-up bindings-set semantics is the model for the
global ECA rule semantics.
"""

from .ast import (Atom, BodyLiteral, Comparison, Const, DatalogError, Program,
                  Rule, Term, Var)
from .engine import (DatalogEngine, SafetyError, StratificationError,
                     evaluate, query)
from .parser import DatalogSyntaxError, parse_atom, parse_program

__all__ = [
    "Var", "Const", "Term", "Atom", "BodyLiteral", "Comparison", "Rule",
    "Program", "DatalogError",
    "parse_program", "parse_atom", "DatalogSyntaxError",
    "DatalogEngine", "evaluate", "query", "StratificationError",
    "SafetyError",
]
