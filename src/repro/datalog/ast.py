"""Datalog abstract syntax: terms, atoms, literals, rules, programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Var", "Const", "Term", "Atom", "BodyLiteral", "Comparison",
           "Rule", "Program", "DatalogError"]


class DatalogError(ValueError):
    """Base class for Datalog parsing/validation/evaluation errors."""


@dataclass(frozen=True, slots=True)
class Var:
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    value: str | int | float

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"' if not self.value.isidentifier() \
                else self.value
        return str(self.value)


Term = Var | Const


@dataclass(frozen=True, slots=True)
class Atom:
    predicate: str
    arguments: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.arguments)

    @property
    def signature(self) -> tuple[str, int]:
        return (self.predicate, self.arity)

    def variables(self) -> set[str]:
        return {t.name for t in self.arguments if isinstance(t, Var)}

    def __repr__(self) -> str:
        inner = ", ".join(repr(argument) for argument in self.arguments)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True, slots=True)
class BodyLiteral:
    """A possibly negated atom in a rule body."""

    atom: Atom
    negated: bool = False

    def variables(self) -> set[str]:
        return self.atom.variables()

    def __repr__(self) -> str:
        return f"not {self.atom!r}" if self.negated else repr(self.atom)


_COMPARATORS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class Comparison:
    """A builtin comparison between two terms, e.g. ``X < 3``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise DatalogError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> set[str]:
        return {t.name for t in (self.left, self.right) if isinstance(t, Var)}

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True, slots=True)
class Rule:
    head: Atom
    body: tuple[BodyLiteral | Comparison, ...]

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        body = ", ".join(repr(item) for item in self.body)
        return f"{self.head!r} :- {body}."


class Program:
    """An ordered collection of rules and facts."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self.rules: list[Rule] = list(rules)

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)

    def idb_signatures(self) -> set[tuple[str, int]]:
        """Signatures defined by at least one rule with a body."""
        return {rule.head.signature for rule in self.rules if not rule.is_fact}

    def all_signatures(self) -> set[tuple[str, int]]:
        signatures = {rule.head.signature for rule in self.rules}
        for rule in self.rules:
            for item in rule.body:
                if isinstance(item, BodyLiteral):
                    signatures.add(item.atom.signature)
        return signatures

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return "\n".join(repr(rule) for rule in self.rules)
