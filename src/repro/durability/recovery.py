"""Rebuilding engine state from checkpoint + journal.

:func:`read_state` folds the last checkpoint (if any) and every intact
journal record of the current epoch into a :class:`RecoveredState`.
The heavy lifting — re-registering rules through the GRH, restoring the
dead-letter queue, re-driving in-flight detections — is done by
:meth:`repro.core.ECAEngine.recover`, which starts from this state.

Replay semantics (PROTOCOL.md §7):

* a detection with a ``done`` record is finished — redelivery of its id
  is dropped, it is never re-driven;
* a detection with a ``det`` record but no ``done`` record is
  *in flight* — it is re-driven on recovery under its journaled
  instance id; every idempotency key its ``exec`` intent records
  journaled is re-dispatched under the same wire ``dedup`` key, which
  the service-side memory suppresses when the original dispatch landed;
* an in-flight detection linked to a parked dead letter (the crash hit
  the narrow window between the park and the ``done`` record) is marked
  failed instead of re-driven — its remediation already lives in the
  dead-letter queue, and re-driving it would park a duplicate letter.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from ..grh.resilience import DeadLetter
from ..xmlmodel import parse
from .checkpoint import CHECKPOINT_NAME, Checkpointer
from .journal import JOURNAL_NAME, JournalReader

__all__ = ["RecoveredState", "InFlightRecord", "read_state"]


@dataclass
class InFlightRecord:
    """One journaled-but-unfinished detection."""

    #: the codec's JSON encoding of the detection (``codec.py``)
    data: dict
    instance_id: int | None = None
    #: a dead letter for this detection/instance was parked before the
    #: crash; recovery must not re-drive it (duplicate letter otherwise)
    parked: bool = False


@dataclass
class RecoveredState:
    """Everything recovery needs, folded from checkpoint + journal."""

    rules: dict[str, str] = field(default_factory=dict)
    next_detection: int = 1
    max_instance: int = 0
    done: "OrderedDict[str, str]" = field(default_factory=OrderedDict)
    in_flight: "OrderedDict[str, InFlightRecord]" = \
        field(default_factory=OrderedDict)
    executed: dict[int, set[tuple[int, str]]] = field(default_factory=dict)
    dead_letters: list[DeadLetter] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    epoch: int = 0
    #: every ``(instance, action, tuple_key)`` whose dispatch outcome
    #: the journal cannot vouch for — all journaled keys of instances
    #: without a ``done`` record (the ``done`` record is what proves an
    #: instance's dispatches all resolved)
    uncertain: set[tuple[int, int, str]] = field(default_factory=set)
    #: a torn/corrupt journal tail was discarded while reading
    journal_truncated: bool = False
    #: the journal's epoch predates the checkpoint (crash between
    #: checkpoint rename and journal truncation); it was ignored
    stale_journal: bool = False


def read_state(directory: str) -> RecoveredState:
    """Fold ``checkpoint.json`` + ``wal.log`` into a recovered state."""
    state = RecoveredState()
    checkpoint = Checkpointer(os.path.join(directory, CHECKPOINT_NAME)).load()
    if checkpoint is not None:
        _apply_checkpoint(state, checkpoint)
    reader = JournalReader(os.path.join(directory, JOURNAL_NAME))
    records = list(reader.records())
    state.journal_truncated = reader.truncated
    if reader.epoch is not None and reader.epoch < state.epoch:
        state.stale_journal = True
        return state
    for record in records:
        _apply_record(state, record)
    # keys still in the executed map belong to instances whose done
    # record never made it: each is re-dispatched under dedup on replay
    state.uncertain = {(inst, action, key)
                       for inst, keys in state.executed.items()
                       for action, key in keys}
    return state


def _apply_checkpoint(state: RecoveredState, checkpoint: dict) -> None:
    state.epoch = int(checkpoint.get("epoch", 0))
    state.rules = dict(checkpoint.get("rules", {}))
    state.next_detection = int(checkpoint.get("next_detection", 1))
    state.max_instance = int(checkpoint.get("max_instance", 0))
    state.done = OrderedDict(
        (det_id, status) for det_id, status in checkpoint.get("done", []))
    for entry in checkpoint.get("in_flight", []):
        state.in_flight[entry["id"]] = InFlightRecord(
            entry["d"], entry.get("inst"), bool(entry.get("parked")))
    for inst, action, key in checkpoint.get("executed", []):
        state.executed.setdefault(int(inst), set()).add((int(action), key))
        state.max_instance = max(state.max_instance, int(inst))
    for letter_xml in checkpoint.get("dlq", []):
        state.dead_letters.append(DeadLetter.from_xml(parse(letter_xml)))
    state.stats = dict(checkpoint.get("stats", {}))


def _apply_record(state: RecoveredState, record: dict) -> None:
    kind = record.get("t")
    if kind == "rule-add":
        state.rules[record["rule"]] = record["src"]
    elif kind == "rule-del":
        state.rules.pop(record["rule"], None)
    elif kind == "det":
        det_id = record["id"]
        if det_id not in state.done:
            state.in_flight[det_id] = InFlightRecord(record["d"])
        _advance_detection_counter(state, det_id)
    elif kind == "exec":
        # instance ids are journaled through exec/done records only —
        # an instance without either left no durable footprint and its
        # id is safe to re-mint (see DurabilityManager.instance_for)
        instance_id = int(record["inst"])
        action_index = int(record["a"])
        keys = state.executed.setdefault(instance_id, set())
        for key in record["k"]:
            keys.add((action_index, key))
            _count_stat(state, "actions")
        state.max_instance = max(state.max_instance, instance_id)
        entry = state.in_flight.get(record.get("id"))
        if entry is not None:
            entry.instance_id = instance_id
    elif kind == "done":
        det_id, status = record["id"], record["s"]
        entry = state.in_flight.pop(det_id, None)
        instance_id = record.get("inst")
        if instance_id is None and entry is not None:
            instance_id = entry.instance_id
        if instance_id is not None:
            state.executed.pop(int(instance_id), None)
            state.max_instance = max(state.max_instance, int(instance_id))
        state.done[det_id] = status
        if status != "dropped":
            _count_stat(state, "detections")
            _count_stat(state, "instances")
            _count_stat(state, status)
    elif kind == "park":
        state.dead_letters.append(
            DeadLetter.from_xml(parse(record["xml"])))
        linked = record.get("det")
        if linked is not None and linked in state.in_flight:
            state.in_flight[linked].parked = True
        instance_id = record.get("inst")
        if instance_id is not None:
            for entry in state.in_flight.values():
                if entry.instance_id == instance_id:
                    entry.parked = True
    elif kind == "forget":
        state.done.pop(record["id"], None)
    elif kind == "drain":
        del state.dead_letters[:int(record["n"])]
    # unknown kinds are skipped: newer writers stay readable by being
    # additive, and a reader never hard-fails on a single odd record


def _advance_detection_counter(state: RecoveredState, det_id: str) -> None:
    if det_id.startswith("engine:"):
        try:
            state.next_detection = max(state.next_detection,
                                       int(det_id[len("engine:"):]) + 1)
        except ValueError:
            pass


def _count_stat(state: RecoveredState, name: str) -> None:
    state.stats[name] = state.stats.get(name, 0) + 1
