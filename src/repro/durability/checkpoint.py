"""Compacting checkpoints: snapshot state atomically, truncate the WAL.

A checkpoint is a JSON document holding everything recovery needs
without the journal: registered rule sources, counters, completed and
in-flight detections, executed idempotency keys for in-flight work,
dead letters and engine stats.  The write is crash-safe::

    1. write  checkpoint.json.tmp,  fsync
    2. rename checkpoint.json.tmp → checkpoint.json   (atomic)
    3. restart the journal with epoch = checkpoint epoch

A crash between 2 and 3 leaves a journal whose epoch record is *older*
than the checkpoint's epoch; recovery detects the mismatch and ignores
the whole (already-folded-in) journal, so no record is ever applied
twice.
"""

from __future__ import annotations

import json
import os

__all__ = ["Checkpointer", "CHECKPOINT_NAME"]

CHECKPOINT_NAME = "checkpoint.json"
CHECKPOINT_VERSION = 1


class Checkpointer:
    """Atomic writer/loader for one engine's checkpoint file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.taken = 0

    def write(self, state: dict) -> None:
        """Persist ``state`` atomically (tmp + fsync + rename)."""
        state = dict(state, version=CHECKPOINT_VERSION)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(state, handle, separators=(",", ":"),
                      ensure_ascii=False)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._fsync_directory()
        self.taken += 1

    def load(self) -> dict | None:
        """The last checkpoint, or ``None`` if none was ever taken."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                state = json.load(handle)
        except FileNotFoundError:
            return None
        if state.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {state.get('version')!r}")
        return state

    def _fsync_directory(self) -> None:
        # make the rename itself durable; best-effort (not all
        # filesystems allow opening a directory)
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)
