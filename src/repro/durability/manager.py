"""The durability manager: the engine's façade over journal + checkpoint.

One manager owns one durability directory (``wal.log`` +
``checkpoint.json``) and tracks, mirroring what recovery would compute
from those files:

* the sources of currently registered rules,
* completed detection ids (bounded; deduplicates at-least-once
  redelivery — "exactly-once detection replay"),
* in-flight detections (journaled on arrival, not yet completed) with
  their assigned instance ids,
* journaled idempotency keys ``(instance_id, action_index, tuple_key)``
  of in-flight instances — written *before* dispatch (one ``exec``
  intent record per action, carrying all tuple keys), carried into
  checkpoints so a re-driven instance re-dispatches under the same wire
  keys and the service-side dedup memory keeps effects exactly-once.

The engine calls in at well-defined points (see ``core/engine.py``);
everything here is synchronous and ordered, so the journal is a total
order of state transitions.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import replace
from json.encoder import encode_basestring_ascii as _esc
from time import perf_counter as _perf_counter

from ..grh.messages import Detection
from ..xmlmodel import serialize
from .checkpoint import CHECKPOINT_NAME, Checkpointer
from .codec import encode_detection, tuple_key
from .journal import JOURNAL_NAME, Journal

__all__ = ["DurabilityManager", "tuple_key"]


class _InFlight:
    """One journaled-but-not-completed detection.

    ``data`` is the codec's detection encoding — the raw JSON text when
    the entry was journaled live (``admit`` keeps the string it framed),
    the parsed object when it was folded back from disk; the codec's
    ``decode_detection`` accepts either.
    """

    __slots__ = ("data", "instance_id", "parked")

    def __init__(self, data: dict | str, instance_id: int | None = None,
                 parked: bool = False) -> None:
        self.data = data
        self.instance_id = instance_id
        self.parked = parked


class _ActionGuard:
    """Per-(instance, action) exactly-once guard for the GRH's tuple loop.

    :meth:`begin` journals *one* ``exec`` intent record carrying every
    distinct tuple key of the relation, before the first dispatch, and
    hands back the wire ``dedup`` key for each tuple.  Recovery treats
    every journaled key of an instance without a ``done`` record as
    *uncertain*: the re-driven instance re-dispatches them under the
    same wire keys (journaled instance id + positional action index +
    canonical tuple digest) and the service-side dedup memory suppresses
    the ones whose original dispatch did land.  The ``done`` record is
    what retires an instance's keys — only then is redelivery dropped
    outright.
    """

    __slots__ = ("_manager", "_instance_id", "_action_index")

    def __init__(self, manager: "DurabilityManager", instance_id: int,
                 action_index: int) -> None:
        self._manager = manager
        self._instance_id = instance_id
        self._action_index = action_index

    def begin(self, tuples) -> list:
        """Journal the intent record; returns one ``dedup`` key per
        tuple, ``None`` for a duplicate tuple (one effect per distinct
        tuple — the caller skips it)."""
        instance_id = self._instance_id
        action_index = self._action_index
        prefix = f"{instance_id}:{action_index}:"
        ordered: list[str] = []
        seen = set()
        dedups: list = []
        for binding in tuples:
            key = tuple_key(binding)
            if key in seen:
                dedups.append(None)
                continue
            seen.add(key)
            ordered.append(key)
            dedups.append(prefix + key)
        if ordered:
            manager = self._manager
            det_id = manager.current_detection
            # one lock span for the intent record and the in-memory key
            # set: a checkpoint racing between the two would snapshot an
            # instance whose journaled keys it does not know about
            with manager._lock:
                manager._journal_text(
                    f'{{"t":"exec","inst":{instance_id},"a":{action_index}'
                    ',"id":' + ("null" if det_id is None else _esc(det_id))
                    + ',"k":["' + '","'.join(ordered) + '"]}')
                manager.executed.setdefault(
                    instance_id, set()).update(
                        [(action_index, key) for key in ordered])
        return dedups


class DurabilityManager:
    """Journals engine state transitions and answers replay questions."""

    def __init__(self, directory: str, *, sync: str = "always",
                 checkpoint_interval: int = 1000,
                 max_remembered_detections: int = 100_000,
                 journal: Journal | None = None,
                 resume: "object | None" = None) -> None:
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.checkpoint_interval = checkpoint_interval
        self.max_remembered_detections = max_remembered_detections
        self.checkpointer = Checkpointer(
            os.path.join(directory, CHECKPOINT_NAME))

        if resume is None:
            from .recovery import read_state
            resume = read_state(directory)
        self.rule_sources: dict[str, str] = dict(resume.rules)
        self.done: OrderedDict[str, str] = OrderedDict(resume.done)
        self.in_flight: dict[str, _InFlight] = {
            det_id: _InFlight(entry.data, entry.instance_id, entry.parked)
            for det_id, entry in resume.in_flight.items()}
        self.executed: dict[int, set[tuple[int, str]]] = {
            inst: set(keys) for inst, keys in resume.executed.items()}
        self.next_detection = resume.next_detection
        self.max_instance = resume.max_instance
        self.epoch = resume.epoch
        self.recovered_stats = dict(resume.stats)
        self.restored_letters = list(resume.dead_letters)

        if journal is None:
            journal = Journal(os.path.join(directory, JOURNAL_NAME),
                              sync=sync, epoch=self.epoch)
        self.journal = journal
        if self.journal.epoch != self.epoch:
            # stale pre-checkpoint journal (crash between checkpoint
            # rename and truncation): its records are already folded in
            self.journal.restart(self.epoch)
        self.records_since_checkpoint = 0
        self.engine = None
        #: serializes every journal append and all bookkeeping mutation:
        #: with a concurrent runtime, detections are admitted on producer
        #: threads while worker shards journal intents and completions —
        #: the journal must stay a total order of state transitions.
        #: Reentrant because a checkpoint taken inside a journaling call
        #: path re-enters (e.g. ``maybe_checkpoint`` from ``_drain``).
        self._lock = threading.RLock()
        #: per-thread evaluation context: each worker tracks which
        #: detection/instance *it* is evaluating, so dead letters parked
        #: concurrently attribute to the right journal entries
        self._local = threading.local()
        #: observability hook: called with each checkpoint's duration
        #: in seconds; ``None`` (default) costs nothing
        self.checkpoint_observer = None

    # -- per-thread evaluation context --------------------------------------

    @property
    def current_detection(self) -> str | None:
        return getattr(self._local, "detection", None)

    @current_detection.setter
    def current_detection(self, value: str | None) -> None:
        self._local.detection = value

    @property
    def current_instance(self) -> int | None:
        return getattr(self._local, "instance", None)

    @current_instance.setter
    def current_instance(self, value: int | None) -> None:
        self._local.instance = value

    # -- wiring --------------------------------------------------------------

    def attach(self, engine) -> None:
        """Bind to the engine and make its dead-letter queue durable."""
        self.engine = engine
        queue = engine.grh.resilience.dead_letters
        queue.on_append = self._on_dead_letter_append
        queue.on_drain = self._on_dead_letter_drain

    def first_instance_id(self) -> int:
        return self.max_instance + 1

    def _journal(self, record: dict) -> None:
        with self._lock:
            self.journal.append(record)
            self.records_since_checkpoint += 1

    def _journal_text(self, payload: str) -> None:
        """Hot-path variant: the caller hand-assembled the JSON text."""
        with self._lock:
            self.journal.append_encoded(payload)
            self.records_since_checkpoint += 1

    # -- rule lifecycle ------------------------------------------------------

    def record_rule_registered(self, rule_id: str, source: str) -> None:
        with self._lock:
            self._journal({"t": "rule-add", "rule": rule_id, "src": source})
            self.rule_sources[rule_id] = source

    def record_rule_deregistered(self, rule_id: str) -> None:
        with self._lock:
            self._journal({"t": "rule-del", "rule": rule_id})
            self.rule_sources.pop(rule_id, None)

    # -- detection lifecycle -------------------------------------------------

    def admit(self, detection: Detection) -> Detection | None:
        """Journal an arriving detection; ``None`` for duplicates.

        Event services deliver at-least-once; a detection id already
        completed (or currently in flight) is redelivery and is dropped
        — this is the exactly-once half the journal cannot give alone.
        """
        with self._lock:
            if detection.detection_id is None:
                detection = replace(
                    detection, detection_id=f"engine:{self.next_detection}")
                self.next_detection += 1
            det_id = detection.detection_id
            if det_id in self.done or det_id in self.in_flight:
                return None
            data = encode_detection(detection)
            self._journal_text('{"t":"det","id":' + _esc(det_id)
                               + ',"d":' + data + "}")
            self.in_flight[det_id] = _InFlight(data)
            return detection

    def instance_for(self, detection: Detection, counter) -> int:
        """The instance id for this detection — the journaled one when
        re-driving recovered work (so idempotency keys stay stable),
        otherwise a fresh id from the engine's counter.

        Assignment itself is not journaled: an instance only matters to
        recovery once it has journaled effects, and the ``exec`` and
        ``done`` records carry the instance id themselves.  An instance
        that crashed before either record has no durable footprint — no
        idempotency key, no dispatched ``dedup`` key (dispatch happens
        only after the ``exec`` intent is journaled) — so its id can be
        re-minted safely."""
        with self._lock:
            entry = self.in_flight.get(detection.detection_id)
            if entry is not None and entry.instance_id is not None:
                return entry.instance_id
            instance_id = next(counter)
            if entry is not None:
                entry.instance_id = instance_id
            self.max_instance = max(self.max_instance, instance_id)
            return instance_id

    def action_guard(self, instance_id: int,
                     action_index: int) -> _ActionGuard:
        return _ActionGuard(self, instance_id, action_index)

    def forget(self, detection_id: str) -> None:
        """Erase a completed detection id so it can be replayed on purpose.

        Used by ``replay_dead_letters``: a parked detection was marked
        done when its letter was journaled, so an intentional re-drive
        must first clear the duplicate filter.
        """
        with self._lock:
            if self.done.pop(detection_id, None) is not None:
                self._journal({"t": "forget", "id": detection_id})

    def detection_done(self, detection_id: str, status: str) -> None:
        with self._lock:
            entry = self.in_flight.pop(detection_id, None)
            inst = "null"
            if entry is not None and entry.instance_id is not None:
                inst = str(entry.instance_id)
                # keys are only consulted while a detection can still be
                # re-driven; dropping them keeps memory flat
                self.executed.pop(entry.instance_id, None)
            self._journal_text('{"t":"done","id":' + _esc(detection_id)
                               + ',"s":"' + status + '","inst":' + inst
                               + "}")
            self.done[detection_id] = status
            while len(self.done) > self.max_remembered_detections:
                self.done.popitem(last=False)
            self.journal.commit()

    # -- dead letter durability ----------------------------------------------

    def _on_dead_letter_append(self, letter) -> None:
        record = {"t": "park", "xml": serialize(letter.to_xml())}
        with self._lock:
            if letter.kind == "detection" and \
                    self.current_detection is not None:
                record["det"] = self.current_detection
                entry = self.in_flight.get(self.current_detection)
                if entry is not None:
                    entry.parked = True
            elif letter.kind == "action" and \
                    self.current_instance is not None:
                record["inst"] = self.current_instance
                for entry in self.in_flight.values():
                    if entry.instance_id == self.current_instance:
                        entry.parked = True
            self._journal(record)

    def _on_dead_letter_drain(self, count: int) -> None:
        self._journal({"t": "drain", "n": count})

    # -- checkpointing -------------------------------------------------------

    def commit_barrier(self) -> None:
        """Flush the journal to disk and compact if due.

        The concurrent runtime calls this once per :meth:`drain` after
        the last worker goes idle: every record journaled by any shard
        is committed before drain returns, so a crash after a completed
        drain can never lose acknowledged work.
        """
        with self._lock:
            self.journal.commit()
            self.maybe_checkpoint()

    def maybe_checkpoint(self) -> bool:
        with self._lock:
            if self.records_since_checkpoint < self.checkpoint_interval:
                return False
            self.checkpoint()
            return True

    def checkpoint(self) -> None:
        """Snapshot everything, bump the epoch, truncate the journal."""
        observer = self.checkpoint_observer
        started = _perf_counter() if observer is not None else 0.0
        with self._lock:
            self.epoch += 1
            self.checkpointer.write(self.snapshot())
            self.journal.restart(self.epoch)
            self.records_since_checkpoint = 0
        if observer is not None:
            observer(_perf_counter() - started)

    def snapshot(self) -> dict:
        in_flight = [{"id": det_id, "d": entry.data,
                      "inst": entry.instance_id, "parked": entry.parked}
                     for det_id, entry in self.in_flight.items()]
        executed = [[inst, action, key]
                    for inst, keys in self.executed.items()
                    for action, key in sorted(keys)]
        letters = []
        stats: dict = dict(self.recovered_stats)
        if self.engine is not None:
            letters = [serialize(letter.to_xml()) for letter in
                       self.engine.grh.resilience.dead_letters]
            stats = dict(self.engine.stats)
        return {
            "epoch": self.epoch,
            "rules": dict(self.rule_sources),
            "next_detection": self.next_detection,
            "max_instance": self.max_instance,
            "done": list(self.done.items()),
            "in_flight": in_flight,
            "executed": executed,
            "dlq": letters,
            "stats": stats,
        }

    # -- introspection -------------------------------------------------------

    def journal_status(self) -> dict:
        """Operational snapshot of the journal, for ``/introspect/journal``
        and the ``/readyz`` writability check."""
        journal = self.journal
        return {
            "directory": self.directory,
            "sync": journal.sync,
            "epoch": self.epoch,
            "appended": journal.appended,
            "records_since_checkpoint": self.records_since_checkpoint,
            "checkpoint_interval": self.checkpoint_interval,
            "in_flight": len(self.in_flight),
            "completed": len(self.done),
            "writable": journal._file is not None
            and not journal._file.closed,
        }

    def close(self) -> None:
        self.journal.close()
