"""Crash-safe durability for the ECA engine (PROTOCOL.md §7).

The paper treats rules as persistent Semantic-Web resources (Sec. 2)
and makes the engine the keeper of "state information during the
evaluation" (Sec. 4); transactional update logics for reactive rules
(ECA-RuleML, the Reaction RuleML processing-space survey) argue that
such state must survive failures.  This package gives the reproduction
that property:

* :mod:`~repro.durability.journal` — an append-only, CRC-checked,
  optionally fsync'd write-ahead journal of every state transition:
  rule (de)registrations, detection arrivals, instance creations,
  per-tuple action executions, instance outcomes and dead-letter
  park/drain events;
* :mod:`~repro.durability.checkpoint` — a compacting checkpointer that
  atomically snapshots engine + dead-letter state and truncates the
  journal (epoch-numbered so a crash between snapshot and truncation is
  harmless);
* :mod:`~repro.durability.manager` — the engine-facing façade: assigns
  monotonic detection ids, deduplicates at-least-once redelivery, and
  enforces exactly-once action effects via
  ``(instance_id, action_index, tuple_key)`` idempotency keys journaled
  before dispatch;
* :mod:`~repro.durability.recovery` — rebuilds engine state from
  checkpoint + journal; surfaced as :meth:`repro.core.ECAEngine.recover`.

Durability is opt-in: the engine's default constructor journals
nothing, so existing callers are unaffected.
"""

from .checkpoint import CHECKPOINT_NAME, Checkpointer
from .journal import (JOURNAL_NAME, Journal, JournalCorruption, JournalReader,
                      SimulatedCrash)
from .manager import DurabilityManager, tuple_key
from .recovery import RecoveredState, read_state

__all__ = [
    "Journal", "JournalReader", "JournalCorruption", "SimulatedCrash",
    "JOURNAL_NAME", "CHECKPOINT_NAME", "Checkpointer",
    "DurabilityManager", "tuple_key",
    "RecoveredState", "read_state",
]
