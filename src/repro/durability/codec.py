"""Compact journal encodings for detections, bindings and tuple keys.

The journal sits on the engine's hot path (several records per
detection), so the hot record kinds are encoded straight to JSON *text*
instead of round-tripping through ``log:detection`` markup or generic
``json.dumps`` over nested dicts — profiling puts the XML build+
serialize at ~30us per detection and generic dumps at several more,
against a total journaling budget of ~15us.  String escaping uses the
C ``encode_basestring_ascii`` from the stdlib ``json`` package; only
*values* that really are XML (``Element`` bindings, triggering-event
payloads) pay for serialization.

The value encoding mirrors the ``log:variable`` type tags
(``bindings/markup.py``) so a journaled value decodes to the same
Python type it had in the engine — which is what keeps idempotency
keys stable across crash-replay.
"""

from __future__ import annotations

import hashlib
import json
from json.encoder import encode_basestring_ascii as _esc

from ..bindings import Binding, Relation
from ..bindings.values import Uri
from ..grh.messages import Detection
from ..xmlmodel import Element, parse, serialize

__all__ = ["encode_detection", "decode_detection", "tuple_key"]


def _encode_value(value) -> tuple[str, str]:
    """(type tag, text) for one binding value; inverse of _decode_value."""
    if isinstance(value, Element):
        return "x", serialize(value)
    if isinstance(value, bool):
        return "b", "true" if value else "false"
    if isinstance(value, Uri):
        return "u", str(value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value.is_integer():
            return "n", str(int(value))
        return "n", str(value)
    return "s", str(value)


def _decode_value(tag: str, text: str):
    if tag == "s":
        return text
    if tag == "x":
        return parse(text)
    if tag == "n":
        try:
            return int(text)
        except ValueError:
            return float(text)
    if tag == "b":
        return text == "true"
    if tag == "u":
        return Uri(text)
    raise ValueError(f"unknown value tag {tag!r}")


def encode_detection(detection: Detection) -> str:
    """The JSON text of one detection, for embedding in a ``det`` record.

    Hand-assembled (C-escaped strings, direct concatenation): this runs
    once per detection on the happy path.
    """
    parts = ['{"c":', _esc(detection.component_id),
             ',"s":', repr(float(detection.start)),
             ',"e":', repr(float(detection.end)),
             ',"id":',
             "null" if detection.detection_id is None
             else _esc(detection.detection_id),
             ',"b":[']
    first_row = True
    for binding in detection.bindings:
        # Binding inherits the generic Mapping.items() (one Python
        # __getitem__ per entry); its backing dict iterates at C speed
        row = binding._data if isinstance(binding, Binding) else binding
        parts.append("[" if first_row else ",[")
        first_row = False
        first = True
        for name, value in row.items():
            tag, text = ("s", value) if type(value) is str \
                else _encode_value(value)
            parts.append("[" if first else ",[")
            first = False
            parts.append(_esc(name))
            parts.append(',"')
            parts.append(tag)
            parts.append('",')
            parts.append(_esc(text))
            parts.append("]")
        parts.append("]")
    parts.append('],"ev":[')
    parts.append(",".join(_esc(serialize(payload))
                          for payload in detection.events))
    parts.append("]}")
    return "".join(parts)


def decode_detection(data: dict | str) -> Detection:
    """Inverse of :func:`encode_detection`.

    Accepts the parsed object (a journal record read by ``json.loads``)
    or the raw JSON text (a live in-flight entry, or one restored from
    a checkpoint, where the encoded form is kept as-is).
    """
    if isinstance(data, str):
        data = json.loads(data)
    bindings = Relation([
        Binding({name: _decode_value(tag, text)
                 for name, tag, text in row})
        for row in data["b"]])
    events = tuple(parse(payload) for payload in data["ev"])
    return Detection(data["c"], data["s"], data["e"], bindings, events,
                     detection_id=data["id"])


def tuple_key(binding: Binding) -> str:
    """A canonical digest of one binding tuple.

    Variables are sorted and values type-tagged exactly as in the
    journal encoding, so a binding decoded from a ``det`` record on
    replay maps to the same key as the live binding did before the
    crash.
    """
    data = binding._data if isinstance(binding, Binding) else binding
    parts = []
    for name, value in sorted(data.items()):
        if type(value) is str:
            parts.append(name + "\x00s\x00" + value)
        else:
            tag, text = _encode_value(value)
            parts.append(name + "\x00" + tag + "\x00" + text)
    return hashlib.sha1(
        "\x01".join(parts).encode("utf-8")).hexdigest()[:20]
