"""The write-ahead journal: append-only, CRC-framed, optionally fsync'd.

One journal file per engine, holding a sequence of records.  Each
record is framed as::

    4 bytes  big-endian payload length
    4 bytes  big-endian CRC-32 of the payload
    N bytes  payload (UTF-8 JSON object with a ``"t"`` type tag)

The first record of every (re)created journal is an ``epoch`` record;
the epoch is bumped on each checkpoint, so a journal whose epoch is
older than the checkpoint's is *stale* — its records are already folded
into the checkpoint and the whole file is ignored on recovery (this
closes the crash window between checkpoint rename and journal
truncation, see checkpoint.py).

Reading is crash-tolerant: a torn tail (partial frame from a crash
mid-append) or a CRC mismatch ends the replay cleanly at the last good
record; the writer truncates the torn bytes away before appending
again.

``sync`` policies:

* ``"always"`` — fsync after every append (default; survives OS crash);
* ``"commit"`` — fsync only when :meth:`Journal.commit` is called (the
  manager calls it at detection completion — group commit);
* ``"none"`` — never fsync and never flush eagerly: appends sit in the
  stdio buffer until it fills or the journal closes (a clean shutdown —
  or the crash-injection harness, whose simulated kill closes the
  surviving file object — lands everything; a real ``kill -9`` may lose
  the buffered tail, which the recovery protocol tolerates the same way
  it tolerates a torn tail).
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Iterator

__all__ = ["Journal", "JournalReader", "JournalCorruption",
           "SimulatedCrash", "JOURNAL_NAME", "SYNC_POLICIES"]

JOURNAL_NAME = "wal.log"
SYNC_POLICIES = ("always", "commit", "none")

_HEADER = struct.Struct(">II")

# json.dumps(obj, separators=...) constructs a fresh JSONEncoder on
# every call; the journal appends several records per detection, so it
# keeps one compact C encoder for the life of the process
_encode_json = json.JSONEncoder(separators=(",", ":"),
                                ensure_ascii=False).encode


class JournalCorruption(RuntimeError):
    """Raised only for structurally impossible journals (not torn tails,
    which are an expected crash artifact and handled silently)."""


class SimulatedCrash(BaseException):
    """Raised by crash-injecting test journals to model a hard process
    kill mid-append.

    Derives from ``BaseException`` so no ``except Exception`` recovery
    path in the engine or services can accidentally swallow it — just
    like a real ``kill -9`` cannot be caught.
    """


class Journal:
    """Append-only journal writer for one engine.

    ``path`` is the journal *file* path.  Appends are atomic at the
    record level from the reader's point of view: a crash mid-append
    leaves a torn tail that the reader discards.
    """

    def __init__(self, path: str, sync: str = "always",
                 epoch: int = 0) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(f"unknown sync policy {sync!r}")
        self.path = path
        self.sync = sync
        self.epoch = epoch
        self.appended = 0
        #: observability hook: called with the duration (seconds) of
        #: every flush+fsync; ``None`` (default) costs nothing
        self.on_fsync = None
        self._file = None
        self._open_for_append()

    # -- lifecycle -----------------------------------------------------------

    def _open_for_append(self) -> None:
        # discard a torn tail left by a previous crash: appending after
        # garbage would hide every later record from the reader
        valid_end, last_epoch = _scan_valid(self.path)
        if last_epoch is not None:
            self.epoch = last_epoch
        fresh = valid_end == 0
        self._file = open(self.path, "ab")
        if self._file.tell() != valid_end:
            self._file.truncate(valid_end)
            self._file.seek(valid_end)
        if fresh:
            self.append({"t": "epoch", "n": self.epoch})

    def restart(self, epoch: int) -> None:
        """Truncate to empty and begin a new epoch (post-checkpoint)."""
        self.epoch = epoch
        self._file.seek(0)
        self._file.truncate(0)
        self.append({"t": "epoch", "n": epoch})
        self.commit()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- writing -------------------------------------------------------------

    def append(self, record: dict) -> None:
        self.append_encoded(_encode_json(record))

    def append_encoded(self, payload_text: str) -> None:
        """Append one record whose JSON text the caller already built.

        The manager's hot-path records (``det``/``exec``/``done``) are
        hand-assembled strings; framing them here skips a generic
        ``json.dumps`` per record.
        """
        payload = payload_text.encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._write(frame)
        self.appended += 1
        if self.sync == "always":
            self._fsync()

    def _write(self, data: bytes) -> None:
        """Single low-level write; crash-injecting tests override this."""
        self._file.write(data)

    def commit(self) -> None:
        """Group-commit point (detection completion).

        ``"commit"`` flushes and fsyncs; ``"always"`` already fsync'd
        every append; ``"none"`` does nothing — its buffered appends
        reach the OS when the stdio buffer fills or the journal closes,
        which is the whole point of the policy.
        """
        if self.sync == "none":
            return
        if self.sync == "commit":
            self._fsync()
        else:
            self._file.flush()

    def _fsync(self) -> None:
        if self.on_fsync is None:
            self._file.flush()
            os.fsync(self._file.fileno())
            return
        started = time.perf_counter()
        self._file.flush()
        os.fsync(self._file.fileno())
        self.on_fsync(time.perf_counter() - started)


class JournalReader:
    """Crash-tolerant reader over one journal file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.truncated = False   # a torn/corrupt tail was discarded
        self.valid_end = 0
        self.epoch: int | None = None

    def records(self) -> Iterator[dict]:
        """Yield every intact record; stop cleanly at a torn tail."""
        try:
            data = open(self.path, "rb").read()
        except FileNotFoundError:
            return
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                self.truncated = True
                break
            length, crc = _HEADER.unpack_from(data, offset)
            end = offset + _HEADER.size + length
            if end > len(data):
                self.truncated = True
                break
            payload = data[offset + _HEADER.size:end]
            if zlib.crc32(payload) != crc:
                self.truncated = True
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except ValueError:
                self.truncated = True
                break
            offset = end
            self.valid_end = offset
            if record.get("t") == "epoch":
                self.epoch = int(record.get("n", 0))
                continue
            yield record


def _scan_valid(path: str) -> tuple[int, int | None]:
    """Byte length of the intact record prefix, and the journal epoch."""
    reader = JournalReader(path)
    for _ in reader.records():
        pass
    return reader.valid_end, reader.epoch
