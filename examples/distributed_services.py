#!/usr/bin/env python3
"""Distributed deployment: component services behind real HTTP endpoints.

The paper's architecture (Fig. 3) has the ECA engine talk to *autonomous,
remote* language processors.  This script actually deploys them that way:

* the XQ-lite node (framework-aware) and the eXist-like node
  (framework-UNaware) run as real HTTP servers on localhost,
* the engine's GRH reaches them through a :class:`HybridTransport` —
  POSTed ``log:request`` messages for the aware node, plain GETs with the
  substituted query string for the unaware node (exactly Fig. 9),
* event detection and action execution stay co-located with the engine.

The same car-rental rule from the paper then runs unchanged over the
distributed deployment.

Run: ``python examples/distributed_services.py``
"""

from repro import ECAEngine
from repro.actions import ACTION_NS, ActionRuntime
from repro.conditions import TEST_NS
from repro.domain import (CAR_RENTAL_RULE, booking_event, classes_document,
                          fleet_document, persons_document)
from repro.events import ATOMIC_NS, EventStream
from repro.grh import (GenericRequestHandler, LanguageDescriptor,
                       LanguageRegistry)
from repro.services import (ActionExecutionService, AtomicEventService,
                            EXIST_LANG, ExistLikeService, HttpServiceServer,
                            HybridTransport, TestLanguageService, XQ_LANG,
                            XQService)


def main() -> None:
    registry = LanguageRegistry()
    grh = GenericRequestHandler(registry, HybridTransport())
    stream = EventStream()
    runtime = ActionRuntime(event_stream=stream)

    # local (co-located) services: events, tests, actions
    atomic = AtomicEventService(grh.notify)
    atomic.attach(stream)
    grh.add_service(LanguageDescriptor(ATOMIC_NS, "event", "atomic-events"),
                    atomic)
    grh.add_service(LanguageDescriptor(TEST_NS, "test", "test"),
                    TestLanguageService())
    grh.add_service(LanguageDescriptor(ACTION_NS, "action", "actions"),
                    ActionExecutionService(runtime))

    # remote services: two query nodes behind real HTTP endpoints
    xq_node = XQService({"persons.xml": persons_document(),
                         "fleet.xml": fleet_document()})
    exist_node = ExistLikeService({"classes.xml": classes_document(),
                                   "fleet.xml": fleet_document()})
    xq_server = HttpServiceServer(aware_handler=xq_node.handle)
    exist_server = HttpServiceServer(opaque_handler=exist_node.execute)
    xq_url = xq_server.start()
    exist_url = exist_server.start()
    print(f"framework-aware XQ-lite node    : POST {xq_url}")
    print(f"framework-unaware eXist-like node: GET  {exist_url}?query=...")

    grh.add_remote_language(
        LanguageDescriptor(XQ_LANG, "query", "xquery-lite"), xq_url)
    grh.add_remote_language(
        LanguageDescriptor(EXIST_LANG, "query", "exist-like",
                           framework_aware=False), exist_url)

    try:
        engine = ECAEngine(grh)
        rule_id = engine.register_rule(CAR_RENTAL_RULE)
        print(f"\nrule {rule_id!r} registered; "
              ">>> booking John Doe, Munich → Paris\n")
        stream.emit(booking_event())

        (instance,) = engine.instances_of(rule_id)
        print(f"instance status: {instance.status}; GRH mediated "
              f"{grh.request_count} requests "
              f"({len(exist_node.request_log)} of them plain GETs "
              "to the unaware node)")
        for message in runtime.messages("customer-notifications"):
            offer = message.content
            print(f"offer over the wire: {offer.get('car')} "
                  f"(class {offer.get('class')}) for {offer.get('person')}")
    finally:
        xq_server.stop()
        exist_server.stop()
        print("\nHTTP services stopped.")


if __name__ == "__main__":
    main()
