#!/usr/bin/env python3
"""Semantic-Web fleet management: RDF data, SPARQL queries, RDF actions.

Demonstrates the Semantic-Web side of the framework:

* the rental fleet lives in an **RDF graph** (Turtle-parsed),
* the rule's query component is **SPARQL-lite** (an LP-style language:
  its solutions are joined with the rule's bindings),
* the action **asserts new triples** (domain-ontology-level action,
  Sec. 4.5) recording each reservation,
* the rule itself is exported **as RDF** (Fig. 1: rules are objects of
  the Semantic Web).

Run: ``python examples/semantic_fleet.py``
"""

from repro import ECAEngine, parse_rule, standard_deployment
from repro.actions import ACTION_NS
from repro.domain import FLEET_NS, TRAVEL_NS, booking_event, fleet_graph
from repro.rdf import to_ntriples
from repro.services import SPARQL_LANG

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'

RESERVATION_RULE = f"""
<eca:rule {ECA} id="reserve-on-booking">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" to="{{To}}"/>
  </eca:event>

  <!-- LP-style query: available class-B cars at the destination -->
  <eca:query>
    <sp:select xmlns:sp="{SPARQL_LANG}">
      SELECT ?Car ?Model WHERE {{
        ?Car fleet:location '{{To}}' ;
             fleet:carClass 'B' ;
             fleet:model ?Model .
      }}
    </sp:select>
  </eca:query>

  <!-- ontology-level action: record the reservation as triples -->
  <eca:action>
    <act:sequence xmlns:act="{ACTION_NS}">
      <act:assert graph="fleet" s="{{Car}}"
                  p="{FLEET_NS}reservedFor" o="{{Person}}"/>
      <act:retract graph="fleet" s="{{Car}}"
                   p="{FLEET_NS}location" o="{{To}}"/>
      <act:send to="reservations">
        <reserved model="{{Model}}" for="{{Person}}"/>
      </act:send>
    </act:sequence>
  </eca:action>
</eca:rule>
"""


def main() -> None:
    graph = fleet_graph()
    deployment = standard_deployment(graph=graph)
    deployment.sparql.prefixes["fleet"] = FLEET_NS
    deployment.runtime.register_graph("fleet", graph)

    engine = ECAEngine(deployment.grh)
    rule = parse_rule(RESERVATION_RULE)
    engine.register_rule(rule)

    print("the rule as a Semantic-Web resource (Fig. 1 ontology):\n")
    print(to_ntriples(rule.to_rdf()))

    print(">>> John Doe books a flight to Paris")
    deployment.stream.emit(booking_event())

    print("\nreservations mailbox:")
    for message in deployment.runtime.messages("reservations"):
        print(f"   {message.content.get('model')} reserved for "
              f"{message.content.get('for')}")

    print("\nfleet graph after the rule fired (reservation triples "
          "asserted, location retracted):\n")
    lines = [line for line in to_ntriples(graph).splitlines()
             if "f1" in line]
    print("\n".join(lines))

    # firing again finds no class-B car left in Paris → instance dies
    deployment.stream.advance(1)
    deployment.stream.emit(booking_event(person="Jane Roe"))
    second = engine.instances[-1]
    print(f"\nsecond booking: instance status = {second.status} "
          "(no class-B car left in Paris)")


if __name__ == "__main__":
    main()
