#!/usr/bin/env python3
"""Composite-event travel monitoring: heterogeneous EVENT languages.

Three monitoring rules over one event stream, each using a *different*
event language behind the same Generic Request Handler:

* **SNOOP** (chronicle context): booking followed by a cancellation of
  the same person → churn alert.
* **XChange-style** windowed conjunction: booking and a delayed flight
  of the same person within 5 time units → apology + voucher.
* **SNOOP aperiodic**: every delay report inside a trip window
  (booking .. cancellation) → operations dashboard entry.

The engine runs with production observability wired up: a tail sampler
that keeps every slow rule instance while dropping the healthy bulk,
and a live admin endpoint that is scraped *mid-run* the way a
dashboard or load balancer would (``/readyz``,
``/introspect/instances``).

Run: ``python examples/travel_monitoring.py``
"""

import json
import urllib.request

from repro import ECAEngine, Observability, standard_deployment
from repro.actions import ACTION_NS
from repro.domain import (TRAVEL_NS, booking_event, cancellation_event,
                          delayed_flight_event)
from repro.events import SNOOP_NS, XCHANGE_NS
from repro.obs.ops import ObsAdminServer, TailSampler

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'
ACT = f'xmlns:act="{ACTION_NS}"'
TRAVEL = f'xmlns:travel="{TRAVEL_NS}"'

CHURN_RULE = f"""
<eca:rule {ECA} id="churn-alert">
  <eca:event>
    <snoop:seq xmlns:snoop="{SNOOP_NS}" context="chronicle">
      <travel:booking {TRAVEL} person="{{Person}}" to="{{To}}"/>
      <travel:cancellation {TRAVEL} person="{{Person}}"/>
    </snoop:seq>
  </eca:event>
  <eca:action>
    <act:send {ACT} to="sales">
      <churn person="{{Person}}" lost-trip="{{To}}"/>
    </act:send>
  </eca:action>
</eca:rule>
"""

APOLOGY_RULE = f"""
<eca:rule {ECA} id="delay-apology">
  <eca:event>
    <xc:and xmlns:xc="{XCHANGE_NS}" within="5">
      <travel:booking {TRAVEL} person="{{Person}}"/>
      <travel:delayed {TRAVEL} person="{{Person}}" flight="{{Flight}}"/>
    </xc:and>
  </eca:event>
  <eca:test>$Flight != ''</eca:test>
  <eca:action>
    <act:sequence {ACT}>
      <act:send to="customer-care">
        <apology person="{{Person}}" flight="{{Flight}}"/>
      </act:send>
      <act:raise><voucher person="{{Person}}" amount="50"/></act:raise>
    </act:sequence>
  </eca:action>
</eca:rule>
"""

DASHBOARD_RULE = f"""
<eca:rule {ECA} id="ops-dashboard">
  <eca:event>
    <snoop:aperiodic xmlns:snoop="{SNOOP_NS}">
      <travel:booking {TRAVEL} person="{{Person}}"/>
      <travel:delayed {TRAVEL} person="{{Person}}" flight="{{Flight}}"
                      minutes="{{Minutes}}"/>
      <travel:cancellation {TRAVEL} person="{{Person}}"/>
    </snoop:aperiodic>
  </eca:event>
  <eca:action>
    <act:send {ACT} to="dashboard">
      <delay flight="{{Flight}}" minutes="{{Minutes}}"/>
    </act:send>
  </eca:action>
</eca:rule>
"""


def scrape(base: str, route: str) -> dict:
    with urllib.request.urlopen(base.rstrip("/") + route) as response:
        return json.loads(response.read())


def main() -> None:
    deployment = standard_deployment()
    # tail sampling: every rule instance slower than 1ms (and every
    # erroring/retried one) keeps its full trace; healthy fast ones are
    # kept at 20% — the economics of tracing at volume
    tail = TailSampler(probability=0.2, latency_threshold=0.001, seed=7)
    obs = Observability(tail=tail)
    engine = ECAEngine(deployment.grh, observability=obs)
    for rule in (CHURN_RULE, APOLOGY_RULE, DASHBOARD_RULE):
        print("registered:", engine.register_rule(rule))

    stream = deployment.stream
    with ObsAdminServer(engine) as admin:
        print("admin surface:", admin)
        print("readyz:", scrape(admin, "/readyz")["status"])

        print("\n--- scenario ---")
        stream.emit(booking_event("John Doe", "Munich", "Paris"))
        stream.advance(1)
        stream.emit(delayed_flight_event("LH123", "John Doe", minutes=45))
        stream.advance(1)
        stream.emit(delayed_flight_event("LH123", "John Doe", minutes=90))

        # a mid-run introspection scrape, exactly as a dashboard would
        snapshot = scrape(admin, "/introspect/instances?limit=5")
        print(f"\nmid-run instances "
              f"(retained {snapshot['total_retained']}):")
        for entry in snapshot["instances"]:
            print(f"   {entry['rule']:15s} {entry['status']:9s} "
                  f"stages={entry['stages']}")

        stream.advance(1)
        stream.emit(cancellation_event("John Doe", "Paris"))
        stream.advance(10)
        stream.emit(booking_event("Jane Roe", "Berlin", "Rome"))
        stream.advance(10)  # too late for the 5-unit apology window:
        stream.emit(delayed_flight_event("AZ99", "Jane Roe", minutes=30))

    for mailbox in ("sales", "customer-care", "dashboard"):
        print(f"\n{mailbox}:")
        for message in deployment.runtime.messages(mailbox):
            attrs = {name.local: value
                     for name, value in message.content.attributes.items()}
            print(f"   {message.content.name.local} {attrs}")

    vouchers = [event for event in stream
                if event.payload.name.local == "voucher"]
    print(f"\nvouchers raised back onto the stream: {len(vouchers)}")
    print("engine statistics:", engine.stats)
    print(f"tail sampler: kept {tail.kept} trace(s), "
          f"dropped {tail.dropped} healthy one(s)")


if __name__ == "__main__":
    main()
