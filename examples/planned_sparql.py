#!/usr/bin/env python3
"""The planned SPARQL backend: indexed store, join planner, pushdown.

The same travel-domain rule as ``semantic_fleet.py``, but the query
component uses the **rdf-sparql** language (PROTOCOL.md §15): the
fleet graph is served by an indexed ``TripleStore``, the query is
compiled once by the selectivity-driven join planner, and the rule's
input bindings are **pushed down** — the whole binding set seeds the
join and the query runs once, not once per tuple.

The script then prints what the observability surface shows for the
run: the executed plan with per-stage estimates and actuals, which
indexes answered the scans, and the plan-cache behaviour on a second
firing.

Run: ``python examples/planned_sparql.py``
"""

from repro import ECAEngine, parse_rule, standard_deployment
from repro.domain import FLEET_NS, TRAVEL_NS, booking_event, fleet_graph
from repro.sparql import RDF_SPARQL_LANG

ECA = 'xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"'

OFFER_RULE = f"""
<eca:rule {ECA} id="offer-on-booking">
  <eca:event>
    <travel:booking xmlns:travel="{TRAVEL_NS}"
                    person="{{Person}}" to="{{To}}"/>
  </eca:event>

  <!-- planned SPARQL: ?To is bound by the event, so the engine seeds
       the join with it instead of substituting text per tuple -->
  <eca:query>
    <q:select xmlns:q="{RDF_SPARQL_LANG}">
      SELECT ?Car ?Model WHERE {{
        ?Car fleet:location ?To ;
             fleet:carClass 'B' ;
             fleet:model ?Model .
      }}
    </q:select>
  </eca:query>

  <eca:action>
    <offer model="{{Model}}" car="{{Car}}" for="{{Person}}"/>
  </eca:action>
</eca:rule>
"""


def main() -> None:
    graph = fleet_graph()
    deployment = standard_deployment(graph=graph)
    service = deployment.rdf_sparql
    service.prefixes["fleet"] = FLEET_NS

    engine = ECAEngine(deployment.grh)
    engine.register_rule(parse_rule(OFFER_RULE))

    print(">>> John Doe books a flight to Paris")
    deployment.stream.emit(booking_event())

    print("\ndefault mailbox:")
    for message in deployment.runtime.messages("default"):
        print(f"   {message.content.get('model')} "
              f"({message.content.get('car')}) offered to "
              f"{message.content.get('for')}")

    executed = service.recent_plans[-1]
    print(f"\nexecuted plan (seed rows: {executed['seed_rows']}, "
          f"cache hit: {executed['cache_hit']}):")
    print(executed["plan"])
    print("per-stage estimates vs actuals:")
    for stage in executed["stages"]:
        print(f"   {stage['op']:>8}: estimated {stage['estimated']:>8.1f}, "
              f"actual {stage['rows']}")

    # a second booking re-uses the compiled plan: the cache is keyed on
    # query text + seed signature and survives while the store version
    # is unchanged
    deployment.stream.advance(1)
    deployment.stream.emit(booking_event(person="Jane Roe"))
    again = service.recent_plans[-1]
    print(f"\nsecond firing: cache hit = {again['cache_hit']}")

    snapshot = service.store.snapshot()
    print(f"\nstore: {snapshot['triples']} triples, "
          f"{snapshot['predicates']} predicates; "
          f"index probes so far: {snapshot['probes']}")
    print(f"service stats: {service.stats}")


if __name__ == "__main__":
    main()
