#!/usr/bin/env python3
"""Quickstart: register an ECA rule, fire an event, observe the action.

The minimum useful tour of the public API:

1. wire the standard deployment (all built-in language services behind
   one Generic Request Handler),
2. write a rule in ECA-ML,
3. register it with the engine,
4. emit a domain event,
5. inspect the action's effect and the engine's evaluation trace.

Run: ``python examples/quickstart.py``
"""

from repro import ECAEngine, standard_deployment
from repro.xmlmodel import E

RULE = """
<eca:rule xmlns:eca="http://www.semwebtech.org/languages/2006/eca-ml"
          id="greeter">

  <!-- ON: a visitor arrives (an atomic domain event; {Name} binds) -->
  <eca:event>
    <visitor name="{Name}" vip="{Vip}"/>
  </eca:event>

  <!-- IF: only VIPs get the treatment -->
  <eca:test>$Vip = 'yes'</eca:test>

  <!-- DO: send a greeting, once per binding tuple -->
  <eca:action>
    <act:send xmlns:act="http://www.semwebtech.org/languages/2006/actions"
              to="front-desk">
      <greeting for="{Name}">Welcome back, {Name}!</greeting>
    </act:send>
  </eca:action>
</eca:rule>
"""


def main() -> None:
    # 1. all built-in services, wired behind one GRH
    deployment = standard_deployment()

    # 2./3. the engine validates the rule statically (binding order,
    # Sec. 3 of the paper) and registers its event component with the
    # Atomic Event Matcher
    engine = ECAEngine(deployment.grh)
    rule_id = engine.register_rule(RULE)
    print(f"registered rule {rule_id!r}; "
          f"languages used: {len(deployment.registry.languages())}")

    # 4. events on the stream flow through the detection service
    deployment.stream.emit(E("visitor", {"name": "Ada", "vip": "yes"}))
    deployment.stream.emit(E("visitor", {"name": "Bob", "vip": "no"}))
    deployment.stream.emit(E("visitor", {"name": "Grace", "vip": "yes"}))

    # 5. the action delivered messages to the 'front-desk' mailbox
    print("\nfront-desk mailbox:")
    for message in deployment.runtime.messages("front-desk"):
        print("  ", message.content.text())

    print("\nengine statistics:", engine.stats)

    print("\nevaluation trace of the first instance:")
    print(engine.instances[0].trace_table())


if __name__ == "__main__":
    main()
