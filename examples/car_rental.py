#!/usr/bin/env python3
"""The paper's running example (Figs. 4-11), reproduced end to end.

A car-rental company's rule: *when a customer books a flight, cars
similar in size to his own cars are offered at the given destination.*

This script registers the exact Fig. 4 rule, emits the Fig. 6 booking
event, and prints every intermediate binding table the paper shows:

* Fig. 6(2)  — the rule instance's initial bindings,
* Fig. 8(3)  — two tuples after the own-cars query (Golf, Passat),
* Fig. 9(4)  — classes joined in per tuple (B, C),
* Fig. 11    — the natural join with the available cars keeps class B.

Run: ``python examples/car_rental.py``
"""

from repro import ECAEngine, standard_deployment
from repro.domain import (CAR_RENTAL_RULE, booking_event, classes_document,
                          fleet_document, persons_document)


def main() -> None:
    deployment = standard_deployment()
    # three autonomous data sources, as in the paper:
    deployment.add_document("persons.xml", persons_document())   # Fig. 8
    deployment.add_document("classes.xml", classes_document())   # Fig. 9
    deployment.add_document("fleet.xml", fleet_document())       # Fig. 10

    engine = ECAEngine(deployment.grh)
    rule_id = engine.register_rule(CAR_RENTAL_RULE)
    print(f"rule {rule_id!r} registered "
          f"(event component at the Atomic Event Matcher, Fig. 5)\n")

    print(">>> <travel:booking person='John Doe' from='Munich' to='Paris'/>")
    deployment.stream.emit(booking_event())

    (instance,) = engine.instances_of(rule_id)
    print(f"\nrule instance #{instance.instance_id}: {instance.status}")
    print("\nevaluation trace (the binding tables of Figs. 6-11):\n")
    print(instance.trace_table())

    print("\nGRH mediation: "
          f"{deployment.grh.request_count} requests to component services")
    print("queries received by the framework-UNaware eXist-like node "
          "(values substituted per tuple, Fig. 9):")
    for query in deployment.exist.request_log:
        print("  ", " ".join(query.split())[:100])

    print("\ncustomer notifications (one action execution per tuple):")
    for message in deployment.runtime.messages("customer-notifications"):
        offer = message.content
        print(f"   offer: {offer.get('car')} (class {offer.get('class')}) "
              f"for {offer.get('person')} in {offer.get('destination')}")

    # a second booking to Rome: both of John's classes are available there
    print("\n>>> <travel:booking person='John Doe' to='Rome'/>")
    deployment.stream.advance(1.0)
    deployment.stream.emit(booking_event(destination="Rome"))
    for message in deployment.runtime.messages("customer-notifications")[1:]:
        offer = message.content
        print(f"   offer: {offer.get('car')} (class {offer.get('class')}) "
              f"in {offer.get('destination')}")


if __name__ == "__main__":
    main()
