"""Replica routing: health-scored selection, failover, eviction."""

import socket
import threading
import time

import pytest

from repro.grh import (DOWN, GenericRequestHandler, GRHError, HEALTHY,
                       HealthProber, LanguageDescriptor, LanguageRegistry,
                       ReplicaHealthBoard, ResilienceManager, SUSPECT)
from repro.grh.resilience import TransientServiceFailure
from repro.services import InProcessTransport

DESCRIPTOR = LanguageDescriptor("urn:test:routed", "query", "routed")


def manager_with_board():
    manager = ResilienceManager(sleep=lambda s: None, hedge=None)
    manager.health = ReplicaHealthBoard()
    return manager


class TestHealthBoard:
    def test_failures_walk_healthy_suspect_down(self):
        board = ReplicaHealthBoard(suspect_after=1, down_after=3)
        board.track("a")
        assert board.state_of("a") == HEALTHY
        board.record_failure("a")
        assert board.state_of("a") == SUSPECT
        board.record_failure("a")
        board.record_failure("a")
        assert board.state_of("a") == DOWN

    def test_success_restores_health(self):
        board = ReplicaHealthBoard()
        board.record_failure("a")
        board.record_success("a", 0.01)
        assert board.state_of("a") == HEALTHY

    def test_service_error_only_suspects(self):
        board = ReplicaHealthBoard()
        for _ in range(10):
            board.record_error("a")
        assert board.state_of("a") == SUSPECT  # alive, just unwell

    def test_probe_revives_a_down_replica(self):
        board = ReplicaHealthBoard()
        board.mark_down("a")
        board.record_probe("a", alive=True)
        assert board.state_of("a") == HEALTHY

    def test_probe_does_not_clear_suspect(self):
        board = ReplicaHealthBoard()
        board.record_error("a")
        assert board.state_of("a") == SUSPECT
        # liveness is all a probe proves: a replica serving /healthz
        # while erroring on real traffic keeps its routing penalty
        board.record_probe("a", alive=True)
        assert board.state_of("a") == SUSPECT
        board.record_success("a", 0.01)
        assert board.state_of("a") == HEALTHY

    def test_live_falls_back_to_all_when_everything_is_down(self):
        board = ReplicaHealthBoard()
        board.mark_down("a")
        board.mark_down("b")
        # a fully-dark set still takes traffic: the request is the probe
        assert board.live(["a", "b"]) == ["a", "b"]

    def test_suspect_replica_scores_worse(self):
        board = ReplicaHealthBoard()
        board.record_success("a", 0.01)
        board.record_success("b", 0.01)
        board.record_failure("b")
        assert board.score("b") > board.score("a")


class TestFailover:
    def test_connection_failure_fails_over_to_live_replica(self):
        manager = manager_with_board()
        calls = []

        def attempt(address):
            calls.append(address)
            if address == "a":
                raise TransientServiceFailure("connection reset")
            return "ok:" + address

        result = manager.call_routed(("a", "b"), DESCRIPTOR, attempt,
                                     kind="query")
        assert result == "ok:b"
        assert calls == ["a", "b"]
        assert manager.failovers == 1
        assert manager.retries == 0  # failover consumed no retry pass

    def test_down_replica_is_skipped_without_failover(self):
        manager = manager_with_board()
        manager.health.mark_down("a")
        calls = []
        manager.call_routed(("a", "b"), DESCRIPTOR,
                            lambda address: calls.append(address) or "ok",
                            kind="query")
        assert calls == ["b"]
        assert manager.failovers == 0

    def test_all_replicas_failing_raises_transient(self):
        manager = manager_with_board()

        def attempt(address):
            raise TransientServiceFailure("dead")

        with pytest.raises(TransientServiceFailure):
            manager.call_routed(("a", "b"), DESCRIPTOR, attempt,
                                kind="query")
        assert manager.failovers == 1  # a → b, then nothing left

    def test_failover_reports_to_observer(self):
        manager = manager_with_board()
        events = []
        manager.observer = lambda event, address: events.append(
            (event, address))

        def attempt(address):
            if address == "a":
                raise TransientServiceFailure("reset")
            return "ok"

        manager.call_routed(("a", "b"), DESCRIPTOR, attempt, kind="query")
        assert ("failover", "a") in events

    def test_router_prefers_the_less_loaded_replica(self):
        manager = manager_with_board()
        board = manager.health
        board.record_success("a", 0.5)   # slow replica
        board.record_success("b", 0.001)
        picks = {manager.route(("a", "b"), DESCRIPTOR) for _ in range(8)}
        assert picks == {"b"}

    def test_single_address_keeps_legacy_semantics(self):
        manager = manager_with_board()

        def attempt():
            raise TransientServiceFailure("dead")

        with pytest.raises(TransientServiceFailure):
            manager.call(("a"), DESCRIPTOR, attempt)
        assert manager.failovers == 0


class TestEviction:
    """Satellite: breakers/stats for unregistered addresses are evicted
    — replica churn must not grow the maps without bound."""

    def make_grh(self):
        registry = LanguageRegistry()
        grh = GenericRequestHandler(registry, InProcessTransport())
        grh.add_remote_language(
            LanguageDescriptor("urn:test:churn", "query", "churn",
                               replicas=("svc:a0", "svc:a1")))
        return grh

    def test_churn_stays_bounded(self):
        grh = self.make_grh()
        resilience = grh.resilience
        for generation in range(50):
            replicas = (f"svc:g{generation}a", f"svc:g{generation}b")
            grh.set_replicas("urn:test:churn", replicas)
            for address in replicas:
                resilience.breaker_for(address,
                                       grh.registry.lookup("urn:test:churn"))
        assert set(resilience._breakers) <= grh.active_addresses()
        assert set(resilience.health.addresses()) <= grh.active_addresses()

    def test_prune_reports_eviction_count(self):
        grh = self.make_grh()
        descriptor = grh.registry.lookup("urn:test:churn")
        grh.resilience.breaker_for("svc:stale", descriptor)
        grh.resilience.health.track("svc:stale")
        evicted = grh.resilience.prune(grh.active_addresses())
        assert evicted == 1
        assert "svc:stale" not in grh.resilience._breakers

    def test_set_replicas_rejects_empty_and_unknown(self):
        grh = self.make_grh()
        with pytest.raises(GRHError):
            grh.set_replicas("urn:test:churn", ())
        with pytest.raises(Exception):
            grh.set_replicas("urn:test:unknown", ("svc:x",))

    def test_descriptor_addresses_back_compat(self):
        single = LanguageDescriptor("urn:test:one", "query", "one",
                                    endpoint="svc:one")
        assert single.addresses == ("svc:one",)
        replicated = LanguageDescriptor(
            "urn:test:many", "query", "many",
            replicas=["svc:r0", "svc:r1"])  # any iterable normalizes
        assert replicated.addresses == ("svc:r0", "svc:r1")


class TestProberRobustness:
    """The prober thread must survive bad probes: a dead prober leaves
    DOWN replicas out of rotation forever."""

    def test_probe_loop_survives_a_raising_probe(self):
        board = ReplicaHealthBoard()
        calls = []

        def flaky_probe(address):
            calls.append(address)
            if len(calls) == 1:
                raise ValueError("garbage response")
            return True

        prober = HealthProber(board, lambda: ["http://replica:1/"],
                              interval=0.01, probe=flaky_probe)
        prober.start()
        try:
            deadline = time.monotonic() + 2.0
            while len(calls) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(calls) >= 3  # kept sweeping past the bad one
            assert prober.running
        finally:
            prober.stop()

    def test_garbage_http_response_is_not_alive(self):
        # a replica speaking something other than HTTP raises
        # BadStatusLine (an HTTPException, not an OSError) — the probe
        # must report it dead, not blow up the sweep
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def serve_garbage():
            connection, _ = server.accept()
            connection.recv(1024)
            connection.sendall(b"this is not http\r\n\r\n")
            connection.close()

        thread = threading.Thread(target=serve_garbage, daemon=True)
        thread.start()
        board = ReplicaHealthBoard()
        prober = HealthProber(board, lambda: [], timeout=2.0)
        try:
            assert prober._http_probe(f"http://127.0.0.1:{port}") is False
        finally:
            server.close()
            thread.join(2.0)
