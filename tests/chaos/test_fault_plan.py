"""FaultPlan: seeded, stateless, exactly replayable."""

import pytest

from repro.chaos import FAULT_KINDS, FaultPlan, KillWindow


def storm(seed):
    return FaultPlan(seed, latency_rate=0.2, reset_rate=0.1,
                     blackhole_rate=0.05, error_rate=0.1,
                     slow_body_rate=0.05)


class TestDeterminism:
    def test_same_seed_same_schedule(self, chaos_seed):
        one = storm(chaos_seed).schedule("r0", 500)
        two = storm(chaos_seed).schedule("r0", 500)
        assert one == two

    def test_decision_is_pure(self, chaos_seed):
        plan = storm(chaos_seed)
        # order and repetition do not matter: no hidden RNG state
        backwards = [plan.decision("r1", index)
                     for index in reversed(range(100))]
        forwards = [plan.decision("r1", index) for index in range(100)]
        assert backwards == list(reversed(forwards))

    def test_fingerprint_matches_across_instances(self, chaos_seed):
        replicas = ("r0", "r1", "r2")
        assert storm(chaos_seed).fingerprint(replicas) \
            == storm(chaos_seed).fingerprint(replicas)

    def test_different_seeds_differ(self):
        assert storm(1).fingerprint(("r0",)) != storm(2).fingerprint(("r0",))

    def test_replicas_get_independent_schedules(self, chaos_seed):
        plan = storm(chaos_seed)
        assert plan.schedule("r0", 200) != plan.schedule("r1", 200)


class TestDecisions:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            FaultPlan(0, latency_rate=0.7, reset_rate=0.4)

    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(3)
        assert plan.schedule("r0", 100) == [None] * 100

    def test_full_latency_rate_hits_every_request(self):
        plan = FaultPlan(5, latency_rate=1.0, latency_range=(0.01, 0.05))
        for decision in plan.schedule("r0", 50):
            assert decision is not None and decision.kind == "latency"
            assert 0.01 <= decision.delay <= 0.05

    def test_all_kinds_eventually_appear(self):
        plan = FaultPlan(7, latency_rate=0.2, reset_rate=0.2,
                         blackhole_rate=0.2, error_rate=0.2,
                         slow_body_rate=0.2)
        kinds = {decision.kind for decision in plan.schedule("r0", 400)
                 if decision is not None}
        assert kinds == set(FAULT_KINDS)

    def test_error_statuses_come_from_the_configured_set(self):
        plan = FaultPlan(9, error_rate=1.0, error_statuses=(500, 503))
        statuses = {decision.status for decision in plan.schedule("r0", 60)}
        assert statuses == {500, 503}


class TestKillWindows:
    def test_kill_window_covers_its_interval(self):
        plan = FaultPlan(0, kills=[KillWindow("r1", start=2.0, duration=3.0)])
        assert not plan.killed("r1", 1.9)
        assert plan.killed("r1", 2.0)
        assert plan.killed("r1", 4.9)
        assert not plan.killed("r1", 5.0)

    def test_kill_window_is_per_replica(self):
        plan = FaultPlan(0, kills=[KillWindow("r1", start=0.0, duration=9.0)])
        assert plan.killed("r1", 1.0)
        assert not plan.killed("r0", 1.0)
