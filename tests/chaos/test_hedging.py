"""Hedged reads: race a second replica after the hedge delay; first
response wins, the loser is discarded and counted."""

import time

import pytest

from repro.grh import (HedgePolicy, LanguageDescriptor, ReplicaHealthBoard,
                       ResilienceManager)

DESCRIPTOR = LanguageDescriptor("urn:test:hedged", "query", "hedged")


def make_manager(delay=0.05):
    manager = ResilienceManager(hedge=HedgePolicy(delay=delay))
    manager.health = ReplicaHealthBoard()
    return manager


def wait_for(predicate, timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestHedgedReads:
    def test_hedge_wins_when_primary_stalls(self):
        manager = make_manager(delay=0.05)
        try:
            def attempt(address):
                if address == "slow":
                    time.sleep(0.6)
                    return "slow"
                return "fast"

            # turn 0 routes to "slow" first (equal scores, stable order)
            result = manager.call_routed(("slow", "fast"), DESCRIPTOR,
                                         attempt, kind="query",
                                         hedge_ok=True)
            assert result == "fast"
            assert manager.hedges_launched == 1
            assert manager.hedge_outcomes["hedge_won"] == 1
            # the stalled primary finishes later and is discarded
            assert wait_for(
                lambda: manager.hedge_outcomes["discarded"] == 1)
        finally:
            manager.close()

    def test_primary_wins_the_race_it_started_first(self):
        manager = make_manager(delay=0.05)
        try:
            def attempt(address):
                time.sleep(0.3)
                return address

            result = manager.call_routed(("a", "b"), DESCRIPTOR, attempt,
                                         kind="query", hedge_ok=True)
            assert result == "a"  # head start beats the hedge
            assert manager.hedge_outcomes["primary_won"] == 1
            assert wait_for(
                lambda: manager.hedge_outcomes["discarded"] == 1)
        finally:
            manager.close()

    def test_fast_primary_never_hedges(self):
        manager = make_manager(delay=0.2)
        try:
            result = manager.call_routed(("a", "b"), DESCRIPTOR,
                                         lambda address: "ok", kind="query",
                                         hedge_ok=True)
            assert result == "ok"
            assert manager.hedges_launched == 0
        finally:
            manager.close()

    def test_single_replica_never_hedges(self):
        manager = make_manager(delay=0.0)
        try:
            manager.call_routed(("only",), DESCRIPTOR, lambda address: "ok",
                                kind="query", hedge_ok=True)
            assert manager.hedges_launched == 0
        finally:
            manager.close()

    def test_hedge_survives_primary_failure(self):
        from repro.grh.resilience import TransientServiceFailure
        manager = make_manager(delay=0.05)
        try:
            def attempt(address):
                if address == "a":
                    time.sleep(0.2)
                    raise TransientServiceFailure("late death")
                return "ok:b"

            # primary (a) stalls past the hedge delay, then dies; with
            # failover disabled the race is decided by the hedge branch
            result = manager.call_routed(("a", "b"), DESCRIPTOR, attempt,
                                         kind="query", failover_ok=False,
                                         hedge_ok=True)
            assert result == "ok:b"
        finally:
            manager.close()

    def test_saturated_pool_skips_the_hedge(self):
        import threading

        from repro.grh import ReplicaHealthBoard, ResilienceManager
        policy = HedgePolicy(delay=0.05, max_threads=2)
        manager = ResilienceManager(hedge=policy)
        manager.health = ReplicaHealthBoard()
        try:
            release = threading.Event()
            pool = manager._executor(policy)
            blockers = [pool.submit(release.wait, 5.0) for _ in range(2)]
            calls = []

            def attempt(address):
                calls.append(address)
                return "ok:" + address

            results = []
            caller = threading.Thread(
                target=lambda: results.append(manager.call_routed(
                    ("a", "b"), DESCRIPTOR, attempt, kind="query",
                    hedge_ok=True)))
            caller.start()
            # the hedge delay expires while the primary is still queued
            # behind the blocker — it has not routed yet, so a hedge
            # could land on the primary's own replica; it must be skipped
            time.sleep(0.2)
            release.set()
            caller.join(2.0)
            for blocker in blockers:
                blocker.result(2.0)
            assert results and results[0].startswith("ok:")
            assert len(calls) == 1  # no second dispatch raced the first
            assert manager.hedges_launched == 0
        finally:
            manager.close()

    def test_closed_manager_stops_hedging_but_keeps_dispatching(self):
        manager = make_manager(delay=0.0)
        manager.close()
        result = manager.call_routed(("a", "b"), DESCRIPTOR,
                                     lambda address: "ok", kind="query",
                                     hedge_ok=True)
        assert result == "ok"
        assert manager.hedges_launched == 0


class TestHedgeDelay:
    def test_pinned_delay_wins(self):
        manager = make_manager(delay=0.123)
        try:
            assert manager.hedge_delay(("a", "b"),
                                       HedgePolicy(delay=0.123)) == 0.123
        finally:
            manager.close()

    def test_without_samples_falls_back_to_initial_delay(self):
        manager = make_manager()
        try:
            policy = HedgePolicy(initial_delay=0.07)
            assert manager.hedge_delay(("a", "b"), policy) == 0.07
        finally:
            manager.close()

    def test_adapts_to_p95_with_enough_samples(self):
        manager = make_manager()
        try:
            for _ in range(10):
                manager.health.record_success("a", 0.2)
            policy = HedgePolicy()
            assert manager.hedge_delay(("a", "b"), policy) \
                == pytest.approx(0.2)
        finally:
            manager.close()

    def test_p95_clamps_to_max_delay(self):
        manager = make_manager()
        try:
            for _ in range(10):
                manager.health.record_success("a", 9.0)
            policy = HedgePolicy(max_delay=1.5)
            assert manager.hedge_delay(("a", "b"), policy) == 1.5
        finally:
            manager.close()
